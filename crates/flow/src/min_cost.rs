//! Minimum-cost maximum flow (successive shortest augmenting paths).
//!
//! Used by [`crate::leveling::LevelingInstance::solve_earliest_within`] to
//! realize an alternative secondary objective to the paper's lexicographic
//! refinement: among all placements that respect a given per-slot cap
//! profile (e.g. the optimal min-max peak), find the one that finishes
//! work *earliest* — each unit placed in slot `t` costs `t`, so the
//! min-cost flow front-loads every job as much as the caps allow.
//!
//! Implementation: SPFA-based successive shortest paths (Bellman–Ford
//! queue relaxation handles the negative reduced costs that residual arcs
//! introduce without needing potentials). Capacities and flow are `u64`,
//! costs `i64`; complexity is fine for the scheduler's bipartite networks
//! (thousands of arcs).

use crate::error::FlowError;

/// Handle to an edge of a [`CostFlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostEdgeId(usize);

#[derive(Debug, Clone)]
struct CostArc {
    to: usize,
    cap: u64,
    cost: i64,
    rev: usize,
    orig_cap: u64,
}

/// A directed flow network with per-unit arc costs.
///
/// # Example
///
/// ```
/// use flowtime_flow::min_cost::CostFlowNetwork;
/// # fn main() -> Result<(), flowtime_flow::FlowError> {
/// let mut net = CostFlowNetwork::new(4);
/// let cheap = net.add_edge(0, 1, 5, 1)?;
/// let pricey = net.add_edge(0, 2, 5, 10)?;
/// net.add_edge(1, 3, 3, 0)?;
/// net.add_edge(2, 3, 5, 0)?;
/// let (flow, cost) = net.min_cost_max_flow(0, 3);
/// assert_eq!(flow, 8);
/// assert_eq!(cost, 3 * 1 + 5 * 10);
/// assert_eq!(net.flow(cheap), 3);
/// assert_eq!(net.flow(pricey), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostFlowNetwork {
    adj: Vec<Vec<CostArc>>,
    edges: Vec<(usize, usize)>,
}

impl CostFlowNetwork {
    /// Creates a network with `n` nodes.
    pub fn new(n: usize) -> Self {
        CostFlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a directed edge with capacity `cap` and per-unit `cost`.
    ///
    /// # Errors
    ///
    /// [`FlowError::NodeOutOfRange`] on bad endpoints.
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        cap: u64,
        cost: i64,
    ) -> Result<CostEdgeId, FlowError> {
        let n = self.adj.len();
        for node in [from, to] {
            if node >= n {
                return Err(FlowError::NodeOutOfRange { node, len: n });
            }
        }
        let fwd = self.adj[from].len();
        let rev = self.adj[to].len() + usize::from(from == to);
        self.adj[from].push(CostArc {
            to,
            cap,
            cost,
            rev,
            orig_cap: cap,
        });
        self.adj[to].push(CostArc {
            to: from,
            cap: 0,
            cost: -cost,
            rev: fwd,
            orig_cap: 0,
        });
        self.edges.push((from, fwd));
        Ok(CostEdgeId(self.edges.len() - 1))
    }

    /// Flow carried by `edge` after a solve.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is not from this network.
    pub fn flow(&self, edge: CostEdgeId) -> u64 {
        let (node, idx) = self.edges[edge.0];
        let arc = &self.adj[node][idx];
        arc.orig_cap - arc.cap
    }

    /// Computes the maximum `source → sink` flow of minimum total cost.
    /// Returns `(flow, cost)`.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `sink` is out of range.
    pub fn min_cost_max_flow(&mut self, source: usize, sink: usize) -> (u64, i64) {
        assert!(source < self.len() && sink < self.len());
        let mut total_flow = 0u64;
        let mut total_cost = 0i64;
        if source == sink {
            return (0, 0);
        }
        loop {
            // SPFA shortest path by cost in the residual graph.
            let n = self.len();
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[source] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            in_queue[source] = true;
            while let Some(v) = queue.pop_front() {
                in_queue[v] = false;
                let dv = dist[v];
                for (i, arc) in self.adj[v].iter().enumerate() {
                    if arc.cap > 0 && dv.saturating_add(arc.cost) < dist[arc.to] {
                        dist[arc.to] = dv + arc.cost;
                        prev[arc.to] = Some((v, i));
                        if !in_queue[arc.to] {
                            queue.push_back(arc.to);
                            in_queue[arc.to] = true;
                        }
                    }
                }
            }
            if prev[sink].is_none() {
                return (total_flow, total_cost);
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                bottleneck = bottleneck.min(self.adj[u][i].cap);
                v = u;
            }
            // Augment.
            let mut v = sink;
            while let Some((u, i)) = prev[v] {
                let rev = self.adj[u][i].rev;
                self.adj[u][i].cap -= bottleneck;
                let to = self.adj[u][i].to;
                self.adj[to][rev].cap += bottleneck;
                v = u;
            }
            total_flow += bottleneck;
            total_cost += bottleneck as i64 * dist[sink];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_cheap_paths() {
        let mut net = CostFlowNetwork::new(4);
        let cheap = net.add_edge(0, 1, 10, 1).unwrap();
        let pricey = net.add_edge(0, 2, 10, 5).unwrap();
        net.add_edge(1, 3, 4, 0).unwrap();
        net.add_edge(2, 3, 10, 0).unwrap();
        let (flow, cost) = net.min_cost_max_flow(0, 3);
        assert_eq!(flow, 14);
        assert_eq!(cost, 4 + 10 * 5);
        assert_eq!(net.flow(cheap), 4);
        assert_eq!(net.flow(pricey), 10);
    }

    #[test]
    fn reroutes_through_residual_arcs() {
        // Classic case where the optimal solution requires undoing part of
        // an earlier augmenting path.
        let mut net = CostFlowNetwork::new(4);
        net.add_edge(0, 1, 1, 1).unwrap();
        net.add_edge(0, 2, 1, 10).unwrap();
        net.add_edge(1, 2, 1, -5).unwrap();
        net.add_edge(1, 3, 1, 10).unwrap();
        net.add_edge(2, 3, 2, 1).unwrap();
        let (flow, cost) = net.min_cost_max_flow(0, 3);
        assert_eq!(flow, 2);
        // 0-1-2-3 (1 - 5 + 1 = -3) and 0-2-3 (11): total 8.
        assert_eq!(cost, 8);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut net = CostFlowNetwork::new(3);
        net.add_edge(0, 1, 5, 1).unwrap();
        assert_eq!(net.min_cost_max_flow(0, 2), (0, 0));
        assert_eq!(net.min_cost_max_flow(0, 0), (0, 0));
    }

    #[test]
    fn rejects_bad_nodes() {
        let mut net = CostFlowNetwork::new(1);
        assert!(net.add_edge(0, 9, 1, 1).is_err());
    }

    #[test]
    fn matches_dinic_on_flow_value() {
        // Min-cost max-flow must still find the *maximum* flow.
        let mut cost_net = CostFlowNetwork::new(5);
        let mut plain = crate::graph::FlowNetwork::new(5);
        let edges = [
            (0usize, 1usize, 7u64, 3i64),
            (0, 2, 9, 1),
            (1, 3, 5, 2),
            (2, 3, 3, 4),
            (1, 4, 4, 1),
            (2, 4, 6, 2),
            (3, 4, 9, 1),
        ];
        for &(u, v, c, w) in &edges {
            cost_net.add_edge(u, v, c, w).unwrap();
            plain.add_edge(u, v, c).unwrap();
        }
        let (flow, _) = cost_net.min_cost_max_flow(0, 4);
        let dinic = crate::dinic::Dinic::new(&mut plain).max_flow(0, 4);
        assert_eq!(flow, dinic);
    }
}
