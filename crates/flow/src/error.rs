//! Error types for flow-based solvers.

use std::error::Error;
use std::fmt;

/// Errors produced by flow network construction and the leveling solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlowError {
    /// An edge endpoint referred to a node that does not exist.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of nodes in the network.
        len: usize,
    },
    /// A scheduling instance cannot place all demand within its windows and
    /// capacities, even at 100% utilization.
    Infeasible,
    /// A job's window is empty or extends beyond the horizon.
    InvalidWindow {
        /// Index of the offending job.
        job: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for network of {len} nodes")
            }
            FlowError::Infeasible => {
                f.write_str("demand cannot be placed within windows and capacities")
            }
            FlowError::InvalidWindow { job } => {
                write!(f, "job {job} has an empty or out-of-horizon window")
            }
        }
    }
}

impl Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            FlowError::NodeOutOfRange { node: 1, len: 0 },
            FlowError::Infeasible,
            FlowError::InvalidWindow { job: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
