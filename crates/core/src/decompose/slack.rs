//! Deadline slack (paper Section VII-B.2).
//!
//! Scheduling exactly against decomposed deadlines can allocate resources
//! "at the very last minute", so any runtime under-estimate turns directly
//! into a deadline miss. FlowTime therefore plans against deadlines pulled
//! *earlier* by a fixed slack (60 s in the paper), while the reported
//! metrics still use the true milestones. The `FlowTime_no_ds` ablation of
//! Fig. 5 corresponds to a slack of zero.

use super::{Decomposition, JobWindow};

/// Returns the scheduling windows of `decomposition` with each deadline
/// pulled `slack_slots` earlier, floored so every window keeps at least its
/// set's capacity-aware minimum runtime (a window slacked below its minimum
/// runtime would be trivially infeasible). Window starts are unchanged.
///
/// # Example
///
/// ```
/// use flowtime::decompose::{slack::slacked_windows, Decomposition, Decomposer, JobWindow};
/// let d = Decomposition {
///     windows: vec![JobWindow { start: 0, deadline: 10 }],
///     sets: vec![vec![0]],
///     set_windows: vec![JobWindow { start: 0, deadline: 10 }],
///     set_min_runtimes: vec![2],
///     method_used: Decomposer::ResourceDemand,
/// };
/// assert_eq!(slacked_windows(&d, 6)[0], JobWindow { start: 0, deadline: 4 });
/// assert_eq!(slacked_windows(&d, 100)[0], JobWindow { start: 0, deadline: 2 });
/// ```
pub fn slacked_windows(decomposition: &Decomposition, slack_slots: u64) -> Vec<JobWindow> {
    // Map each job to its set's minimum runtime floor.
    let mut floor = vec![1u64; decomposition.windows.len()];
    for (set, &min_rt) in decomposition
        .sets
        .iter()
        .zip(&decomposition.set_min_runtimes)
    {
        for &j in set {
            floor[j] = min_rt.max(1);
        }
    }
    decomposition
        .windows
        .iter()
        .zip(&floor)
        .map(|(w, &fl)| JobWindow {
            start: w.start,
            // Pull the deadline earlier by the slack, but no earlier than
            // the minimum-runtime floor — and never *later* than the
            // original deadline (compressed fallback windows can be
            // shorter than their minimum runtime).
            deadline: w
                .deadline
                .saturating_sub(slack_slots)
                .max(w.start + fl)
                .min(w.deadline)
                .max(w.start + 1),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposer;

    fn decomposition(windows: Vec<JobWindow>) -> Decomposition {
        Decomposition {
            sets: vec![(0..windows.len()).collect()],
            set_windows: windows.clone(),
            set_min_runtimes: vec![1],
            windows,
            method_used: Decomposer::ResourceDemand,
        }
    }

    #[test]
    fn zero_slack_is_identity() {
        let d = decomposition(vec![JobWindow {
            start: 5,
            deadline: 20,
        }]);
        assert_eq!(slacked_windows(&d, 0), d.windows);
    }

    #[test]
    fn slack_shrinks_deadline_not_start() {
        let d = decomposition(vec![JobWindow {
            start: 5,
            deadline: 20,
        }]);
        let w = slacked_windows(&d, 6);
        assert_eq!(
            w[0],
            JobWindow {
                start: 5,
                deadline: 14
            }
        );
    }

    #[test]
    fn slack_never_empties_a_window() {
        let d = decomposition(vec![JobWindow {
            start: 5,
            deadline: 8,
        }]);
        let w = slacked_windows(&d, 50);
        assert_eq!(
            w[0],
            JobWindow {
                start: 5,
                deadline: 6
            }
        );
        assert!(!w[0].is_empty());
    }
}
