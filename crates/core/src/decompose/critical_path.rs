//! Runtime-proportional (critical-path) window splitting.
//!
//! The traditional decomposition of Yu et al. [7]: each node set's share of
//! the workflow window is proportional to its runtime along the critical
//! path (with level-set grouping, the per-set runtime is the slowest member
//! job's minimum runtime — the segment of the critical path crossing that
//! level). The paper uses this both as the comparison baseline of Fig. 3
//! and as the fallback when the window is tighter than the summed minimum
//! runtimes (footnote 1).

use super::demand_split::proportional_integer_split;

/// Splits `window` slots across sets proportionally to per-set minimum
/// runtimes, guaranteeing every set at least one slot. The output sums to
/// exactly `window`; callers ensure `window >= sets.len()`.
pub(crate) fn split(sets: &[Vec<usize>], min_rt: &[u64], window: u64) -> Vec<u64> {
    debug_assert_eq!(sets.len(), min_rt.len());
    debug_assert!(window >= sets.len() as u64);
    let weights: Vec<f64> = min_rt.iter().map(|&m| m as f64).collect();
    let mut alloc = proportional_integer_split(&weights, window);
    // Guarantee non-empty windows: move slots from the richest sets to any
    // set that landed on zero.
    while let Some(zero) = alloc.iter().position(|&d| d == 0) {
        let richest = alloc
            .iter()
            .enumerate()
            .max_by_key(|&(_, &d)| d)
            .map(|(i, _)| i)
            .expect("non-empty");
        debug_assert!(
            alloc[richest] > 1,
            "window >= sets.len() guarantees a donor"
        );
        alloc[richest] -= 1;
        alloc[zero] += 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_runtime() {
        let sets = vec![vec![0], vec![1], vec![2]];
        let alloc = split(&sets, &[10, 20, 10], 120);
        assert_eq!(alloc, vec![30, 60, 30]);
    }

    #[test]
    fn compresses_tight_windows() {
        // Total min runtime 40, window only 20: proportional compression.
        let sets = vec![vec![0], vec![1]];
        let alloc = split(&sets, &[30, 10], 20);
        assert_eq!(alloc.iter().sum::<u64>(), 20);
        assert_eq!(alloc, vec![15, 5]);
    }

    #[test]
    fn zero_runtime_sets_still_get_a_slot() {
        let sets = vec![vec![0], vec![1], vec![2]];
        let alloc = split(&sets, &[0, 100, 0], 10);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        assert!(alloc.iter().all(|&d| d >= 1));
        assert_eq!(*alloc.iter().max().unwrap(), alloc[1]);
    }

    #[test]
    fn fig3_traditional_one_third() {
        // Fork-join with equal runtimes: the middle set gets 1/3 of the
        // window under the traditional scheme regardless of its width.
        let sets = vec![vec![0], (1..=9).collect(), vec![10]];
        let alloc = split(&sets, &[10, 10, 10], 300);
        assert_eq!(alloc, vec![100, 100, 100]);
    }

    #[test]
    fn exact_min_window() {
        let sets = vec![vec![0], vec![1], vec![2]];
        let alloc = split(&sets, &[0, 0, 0], 3);
        assert_eq!(alloc, vec![1, 1, 1]);
    }
}
