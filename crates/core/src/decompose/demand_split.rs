//! Demand-proportional window splitting (paper Section IV-B).
//!
//! After reserving each node set's minimum runtime, the remaining window is
//! distributed proportionally to the *total resource demand* of each set —
//! "the number of tasks, the task running time and the resource requirement
//! of each task". Multi-resource demands are collapsed to a scalar by the
//! same normalization as the paper's objective: the dominant share
//! `max_r demand_r / C_r`.

use flowtime_dag::{ResourceVec, Workflow, NUM_RESOURCES};

/// Normalized (dominant-resource) demand of one set of jobs.
pub(crate) fn set_demand(workflow: &Workflow, set: &[usize], capacity: &ResourceVec) -> f64 {
    let total = set.iter().fold(ResourceVec::zero(), |acc, &j| {
        acc + workflow.job(j).total_demand()
    });
    let mut share = 0.0f64;
    for r in 0..NUM_RESOURCES {
        let cap = capacity.dim(r);
        if cap > 0 {
            share = share.max(total.dim(r) as f64 / cap as f64);
        }
    }
    share
}

/// Splits `window` slots across sets: each gets its minimum runtime plus a
/// demand-proportional share of the remainder. Requires
/// `Σ min_rt <= window`; the output sums to exactly `window`.
pub(crate) fn split(
    workflow: &Workflow,
    sets: &[Vec<usize>],
    min_rt: &[u64],
    window: u64,
    capacity: &ResourceVec,
) -> Vec<u64> {
    let total_min: u64 = min_rt.iter().sum();
    debug_assert!(total_min <= window);
    let remaining = window - total_min;
    let demands: Vec<f64> = sets
        .iter()
        .map(|set| set_demand(workflow, set, capacity))
        .collect();
    let extra = proportional_integer_split(&demands, remaining);
    min_rt
        .iter()
        .zip(extra.iter())
        .map(|(&m, &e)| (m + e).max(1))
        .scan(0i64, |debt, d| {
            // The `.max(1)` floor can oversubscribe by one slot for
            // zero-min-runtime sets; repay from later sets (> 1 slot).
            let mut d = d as i64;
            if *debt > 0 && d > 1 {
                let pay = (*debt).min(d - 1);
                d -= pay;
                *debt -= pay;
            }
            Some(d as u64)
        })
        .collect::<Vec<u64>>()
}

/// Largest-remainder integer apportionment of `total` units across weights.
/// Zero or degenerate weights fall back to an even split.
pub(crate) fn proportional_integer_split(weights: &[f64], total: u64) -> Vec<u64> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    let effective: Vec<f64> = if sum > 0.0 && sum.is_finite() {
        weights.iter().map(|&w| w.max(0.0) / sum).collect()
    } else {
        vec![1.0 / n as f64; n]
    };
    let ideal: Vec<f64> = effective.iter().map(|f| f * total as f64).collect();
    let mut alloc: Vec<u64> = ideal.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = alloc.iter().sum();
    let mut leftovers: Vec<(usize, f64)> = ideal
        .iter()
        .enumerate()
        .map(|(i, &x)| (i, x - x.floor()))
        .collect();
    leftovers.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut shortfall = total - assigned;
    for (i, _) in leftovers {
        if shortfall == 0 {
            break;
        }
        alloc[i] += 1;
        shortfall -= 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, WorkflowBuilder, WorkflowId};

    #[test]
    fn proportional_split_is_exact_and_fair() {
        let alloc = proportional_integer_split(&[1.0, 1.0, 2.0], 8);
        assert_eq!(alloc.iter().sum::<u64>(), 8);
        assert_eq!(alloc, vec![2, 2, 4]);
    }

    #[test]
    fn proportional_split_handles_zero_weights() {
        let alloc = proportional_integer_split(&[0.0, 0.0], 5);
        assert_eq!(alloc.iter().sum::<u64>(), 5);
        let alloc = proportional_integer_split(&[], 5);
        assert!(alloc.is_empty());
    }

    #[test]
    fn proportional_split_largest_remainder() {
        // 10 split as 3.33 / 3.33 / 3.33 -> 4/3/3 (first index wins ties).
        let alloc = proportional_integer_split(&[1.0, 1.0, 1.0], 10);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        assert_eq!(alloc[0], 4);
    }

    #[test]
    fn set_demand_uses_dominant_resource() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        // 10 tasks x 2 slots x <1 cpu, 8192 mem> = <20, 163840>.
        b.add_job(JobSpec::new(
            "mem-heavy",
            10,
            2,
            ResourceVec::new([1, 8192]),
        ));
        let wf = b.window(0, 10).build().unwrap();
        // Capacity <100, 102400>: cpu share 0.2, mem share 1.6 -> 1.6.
        let d = set_demand(&wf, &[0], &ResourceVec::new([100, 102_400]));
        assert!((d - 1.6).abs() < 1e-12);
    }

    #[test]
    fn split_reserves_min_runtime_and_sums_to_window() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a =
            b.add_job(JobSpec::new("a", 4, 5, ResourceVec::new([1, 1024])).with_max_parallel(2));
        let c = b.add_job(JobSpec::new("c", 100, 1, ResourceVec::new([1, 1024])));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 50).build().unwrap();
        let sets = wf.level_sets();
        let min_rt = vec![10, 1];
        let out = split(&wf, &sets, &min_rt, 50, &ResourceVec::new([100, 102_400]));
        assert_eq!(out.iter().sum::<u64>(), 50);
        assert!(out[0] >= 10 && out[1] >= 1);
        // Set 1 has 5x the demand of set 0 (100 vs 20 task-slots) and
        // receives the lion's share of the 39 spare slots.
        assert!(out[1] > out[0]);
    }
}
