//! Deadline decomposition (paper Section IV).
//!
//! Transforms a workflow deadline into per-job deadlines in three steps:
//!
//! 1. Group the DAG into **node sets** — topological level sets, computed by
//!    the adapted Kahn's algorithm of
//!    [`flowtime_dag::level_sets`] (Section IV-A, Fig. 3).
//! 2. Reserve each set's **minimum runtime** (the largest member job's
//!    minimum runtime) and distribute the remaining window across sets
//!    **proportionally to their total resource demand**
//!    ([`demand_split`], Section IV-B). When the window cannot even cover
//!    the minimum runtimes, fall back to the critical-path proportional
//!    decomposition of Yu et al. [7] ([`critical_path`], footnote 1).
//! 3. Optionally subtract a **deadline slack** from each job's scheduling
//!    deadline ([`slack`], Section VII-B.2) so demand is met slightly early,
//!    absorbing runtime-estimation errors.

pub mod critical_path;
pub mod demand_split;
pub mod slack;

use crate::error::CoreError;
use flowtime_dag::{ResourceVec, Workflow};
use serde::{Deserialize, Serialize};

/// The absolute slot window `[start, deadline)` assigned to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobWindow {
    /// Earliest slot the job is expected to start.
    pub start: u64,
    /// Decomposed deadline (exclusive): the job should finish by the end of
    /// slot `deadline - 1`.
    pub deadline: u64,
}

impl JobWindow {
    /// Window length in slots.
    pub fn len(&self) -> u64 {
        self.deadline.saturating_sub(self.start)
    }

    /// True if the window contains no slots (never produced by a
    /// successful decomposition).
    pub fn is_empty(&self) -> bool {
        self.deadline <= self.start
    }
}

/// Which decomposition strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Decomposer {
    /// The paper's strategy: reserve minimum runtimes, split the remaining
    /// window by node-set resource demand. Falls back to
    /// [`Decomposer::CriticalPath`] when the window is tighter than the sum
    /// of minimum runtimes.
    #[default]
    ResourceDemand,
    /// The traditional strategy of Yu et al. [7]: split the window
    /// proportionally to per-set runtimes, ignoring resource demand. Used
    /// as the paper's comparison baseline (Fig. 3) and as the tight-window
    /// fallback.
    CriticalPath,
}

/// Decomposition parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecomposeConfig {
    /// Cluster capacity used to normalize multi-resource demands into a
    /// single comparable share (the same normalization as the paper's
    /// `z_t^r / C_t^r` objective).
    pub capacity: ResourceVec,
    /// Strategy selector.
    pub decomposer: Decomposer,
}

impl DecomposeConfig {
    /// Demand-proportional decomposition against the given cluster capacity.
    pub fn new(capacity: ResourceVec) -> Self {
        DecomposeConfig {
            capacity,
            decomposer: Decomposer::ResourceDemand,
        }
    }

    /// Switches strategy.
    #[must_use]
    pub fn with_decomposer(mut self, decomposer: Decomposer) -> Self {
        self.decomposer = decomposer;
        self
    }
}

/// The result of decomposing one workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Per-job windows, indexed by DAG node.
    pub windows: Vec<JobWindow>,
    /// The node sets used, in topological order.
    pub sets: Vec<Vec<usize>>,
    /// Per-set windows, parallel to `sets`.
    pub set_windows: Vec<JobWindow>,
    /// Capacity-aware minimum runtime of each set, parallel to `sets` —
    /// the floor below which deadline slack must not push a deadline.
    pub set_min_runtimes: Vec<u64>,
    /// Which strategy actually produced the result (demand-based requests
    /// may fall back to critical-path under tight windows).
    pub method_used: Decomposer,
}

impl Decomposition {
    /// Per-node deadlines (the `deadline` field of each window) — the
    /// milestone vector handed to the simulator's metrics.
    pub fn job_deadlines(&self) -> Vec<u64> {
        self.windows.iter().map(|w| w.deadline).collect()
    }
}

/// Decomposes `workflow`'s deadline into per-job windows.
///
/// # Errors
///
/// [`CoreError::WindowTooTight`] if the workflow window has fewer slots
/// than level sets (some job would get an empty window under any strategy).
///
/// # Example
///
/// The paper's fork-join example: the parallel middle set receives the
/// demand-weighted share of the window rather than the runtime-weighted
/// third.
///
/// ```
/// use flowtime::decompose::{decompose, DecomposeConfig};
/// use flowtime_dag::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 9; // parallel middle jobs
/// let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fork-join");
/// let spec = JobSpec::new("j", 10, 1, ResourceVec::new([1, 1024]));
/// let head = b.add_job(spec.clone());
/// let mids: Vec<_> = (0..n).map(|_| b.add_job(spec.clone())).collect();
/// let tail = b.add_job(spec.clone());
/// for &m in &mids {
///     b.add_dep(head, m)?;
///     b.add_dep(m, tail)?;
/// }
/// let wf = b.window(0, 1100).build()?;
/// let d = decompose(&wf, &DecomposeConfig::new(ResourceVec::new([100, 102400])))?;
/// // Middle set demand is 9/11 of the total; its window share approaches
/// // (n)/(n+2) of the deadline, far above the traditional 1/3.
/// let mid = d.set_windows[1];
/// assert!(mid.len() > 1100 * 2 / 3);
/// # Ok(())
/// # }
/// ```
pub fn decompose(
    workflow: &Workflow,
    config: &DecomposeConfig,
) -> Result<Decomposition, CoreError> {
    let sets = workflow.level_sets();
    let window = workflow.window_slots();
    if (sets.len() as u64) > window {
        return Err(CoreError::WindowTooTight {
            level_sets: sets.len(),
            window,
        });
    }
    // Per-set minimum runtime, *capacity-aware*: the largest member job's
    // minimum runtime with its wave width capped by what the cluster can
    // host, floored by the whole set's aggregate demand (parallel jobs
    // share the cluster, so a set of many wide jobs cannot finish faster
    // than its normalized demand in slot-equivalents).
    let min_rt: Vec<u64> = sets
        .iter()
        .map(|set| {
            let per_job = set
                .iter()
                .map(|&j| {
                    let job = workflow.job(j);
                    let cluster_width = job.per_task().times_fitting(&config.capacity).max(1);
                    let width = job.effective_parallel().min(cluster_width).max(1);
                    job.tasks().div_ceil(width) * job.task_slots()
                })
                .max()
                .unwrap_or(0);
            let demand_floor =
                demand_split::set_demand(workflow, set, &config.capacity).ceil() as u64;
            per_job.max(demand_floor)
        })
        .collect();
    let total_min: u64 = min_rt.iter().sum();

    let (durations, method_used) = match config.decomposer {
        Decomposer::ResourceDemand if total_min <= window => (
            demand_split::split(workflow, &sets, &min_rt, window, &config.capacity),
            Decomposer::ResourceDemand,
        ),
        // Tight window (paper footnote 1) or explicit request: critical
        // path / runtime-proportional split.
        _ => (
            critical_path::split(&sets, &min_rt, window),
            Decomposer::CriticalPath,
        ),
    };
    debug_assert_eq!(durations.iter().sum::<u64>(), window);

    let mut set_windows = Vec::with_capacity(sets.len());
    let mut cursor = workflow.submit_slot();
    for &d in &durations {
        set_windows.push(JobWindow {
            start: cursor,
            deadline: cursor + d,
        });
        cursor += d;
    }
    let mut windows = vec![
        JobWindow {
            start: 0,
            deadline: 0
        };
        workflow.len()
    ];
    for (set, w) in sets.iter().zip(set_windows.iter()) {
        for &j in set {
            windows[j] = *w;
        }
    }
    Ok(Decomposition {
        windows,
        sets,
        set_windows,
        set_min_runtimes: min_rt,
        method_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, WorkflowBuilder, WorkflowId};

    fn spec(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("j", tasks, dur, ResourceVec::new([1, 1024]))
    }

    fn config() -> DecomposeConfig {
        DecomposeConfig::new(ResourceVec::new([100, 102_400]))
    }

    fn fork_join(n_mid: usize, window: u64, mid_tasks: u64) -> Workflow {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fj");
        let head = b.add_job(spec(10, 1));
        let mids: Vec<_> = (0..n_mid).map(|_| b.add_job(spec(mid_tasks, 1))).collect();
        let tail = b.add_job(spec(10, 1));
        for &m in &mids {
            b.add_dep(head, m).unwrap();
            b.add_dep(m, tail).unwrap();
        }
        b.window(0, window).build().unwrap()
    }

    #[test]
    fn windows_partition_the_workflow_window() {
        let wf = fork_join(4, 300, 10);
        let d = decompose(&wf, &config()).unwrap();
        assert_eq!(d.set_windows.first().unwrap().start, 0);
        assert_eq!(d.set_windows.last().unwrap().deadline, 300);
        for pair in d.set_windows.windows(2) {
            assert_eq!(pair[0].deadline, pair[1].start);
        }
        for w in &d.windows {
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn paper_fig3_demand_share_beats_one_third() {
        // 9 equal parallel middles: demand share 9/11 of total, so the
        // middle window should dwarf the traditional 1/3.
        let wf = fork_join(9, 1100, 10);
        let d = decompose(&wf, &config()).unwrap();
        assert_eq!(d.method_used, Decomposer::ResourceDemand);
        let mid = d.set_windows[1];
        assert!(mid.len() > 1100 * 2 / 3, "mid window = {}", mid.len());
        // Traditional decomposition keeps it near 1/3.
        let cp = decompose(&wf, &config().with_decomposer(Decomposer::CriticalPath)).unwrap();
        let mid_cp = cp.set_windows[1];
        assert!(
            (mid_cp.len() as i64 - 1100 / 3).abs() <= 2,
            "cp mid = {}",
            mid_cp.len()
        );
    }

    #[test]
    fn tight_window_falls_back_to_critical_path() {
        // min runtimes: three sets of 10-task 1-slot jobs with max_parallel 1
        // -> 10 slots each, total 30 > window 20.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "tight");
        let a = b.add_job(spec(10, 1).with_max_parallel(1));
        let c = b.add_job(spec(10, 1).with_max_parallel(1));
        let e = b.add_job(spec(10, 1).with_max_parallel(1));
        b.add_dep(a, c).unwrap();
        b.add_dep(c, e).unwrap();
        let wf = b.window(0, 20).build().unwrap();
        let d = decompose(&wf, &config()).unwrap();
        assert_eq!(d.method_used, Decomposer::CriticalPath);
        assert_eq!(d.set_windows.iter().map(JobWindow::len).sum::<u64>(), 20);
    }

    #[test]
    fn window_smaller_than_levels_errors() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a = b.add_job(spec(1, 1));
        let c = b.add_job(spec(1, 1));
        let e = b.add_job(spec(1, 1));
        b.add_dep(a, c).unwrap();
        b.add_dep(c, e).unwrap();
        let wf = b.window(0, 2).build().unwrap();
        assert!(matches!(
            decompose(&wf, &config()),
            Err(CoreError::WindowTooTight {
                level_sets: 3,
                window: 2
            })
        ));
    }

    #[test]
    fn single_job_gets_whole_window() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "one");
        b.add_job(spec(5, 2));
        let wf = b.window(10, 60).build().unwrap();
        let d = decompose(&wf, &config()).unwrap();
        assert_eq!(
            d.windows,
            vec![JobWindow {
                start: 10,
                deadline: 60
            }]
        );
        assert_eq!(d.job_deadlines(), vec![60]);
    }

    #[test]
    fn parallel_jobs_share_a_window() {
        let wf = fork_join(5, 200, 10);
        let d = decompose(&wf, &config()).unwrap();
        for &j in &d.sets[1] {
            assert_eq!(d.windows[j], d.set_windows[1]);
        }
    }

    #[test]
    fn submit_offset_respected() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "off");
        let a = b.add_job(spec(4, 1));
        let c = b.add_job(spec(4, 1));
        b.add_dep(a, c).unwrap();
        let wf = b.window(100, 200).build().unwrap();
        let d = decompose(&wf, &config()).unwrap();
        assert_eq!(d.set_windows[0].start, 100);
        assert_eq!(d.set_windows[1].deadline, 200);
    }

    #[test]
    fn min_runtimes_always_covered_in_demand_mode() {
        // Big disparity: tiny head, huge middle; head still gets >= its
        // minimum runtime.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "m");
        let head = b.add_job(spec(2, 3).with_max_parallel(1)); // min rt 6
        let mid = b.add_job(spec(500, 1));
        b.add_dep(head, mid).unwrap();
        let wf = b.window(0, 100).build().unwrap();
        let d = decompose(&wf, &config()).unwrap();
        assert!(d.set_windows[0].len() >= 6);
    }
}
