//! FlowTime: dynamic scheduling of deadline-aware workflows and ad-hoc jobs.
//!
//! This crate is the primary contribution of the reproduction of
//! *FlowTime: Dynamic Scheduling of Deadline-Aware Workflows and Ad-hoc
//! Jobs* (Hu, Li, Chen, Ke — ICDCS 2018). It composes the workspace
//! substrates into the paper's two-stage system:
//!
//! 1. **Deadline decomposition** ([`decompose`]) — Section IV: a workflow's
//!    deadline is split into per-job deadlines by grouping the DAG into
//!    topological *node sets*, reserving each set's minimum runtime, and
//!    distributing the remaining window **proportionally to each set's
//!    resource demand** (with a critical-path fallback for tight windows and
//!    a configurable *deadline slack*).
//! 2. **LP co-scheduling** ([`lp_sched`]) — Section V: the decomposed jobs
//!    are placed over a slot horizon by lexicographically minimizing the
//!    maximum normalized cluster load (Eq. (1)), leaving the largest and
//!    flattest possible residual capacity for ad-hoc jobs. Two exact
//!    backends are provided: the paper's LP (our simplex solver,
//!    `flowtime-lp`) and an equivalent parametric max-flow formulation
//!    (`flowtime-flow`) justified by the same total-unimodularity argument
//!    as the paper's Lemma 2.
//!
//! The [`schedulers`] module packages the full FlowTime algorithm and the
//! five baselines evaluated in the paper (EDF, FIFO, Fair, CORA-like,
//! Morpheus-like) as [`flowtime_sim::Scheduler`] implementations.
//!
//! # Quickstart
//!
//! ```
//! use flowtime::prelude::*;
//! use flowtime_dag::prelude::*;
//! use flowtime_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One two-stage workflow with a loose deadline...
//! let mut b = WorkflowBuilder::new(WorkflowId::new(1), "nightly-etl");
//! let extract = b.add_job(JobSpec::new("extract", 20, 2, ResourceVec::new([1, 2048])));
//! let load = b.add_job(JobSpec::new("load", 10, 2, ResourceVec::new([1, 2048])));
//! b.add_dep(extract, load)?;
//! let wf = b.window(0, 120).build()?;
//!
//! // ...plus an ad-hoc job that arrives while it runs.
//! let mut workload = SimWorkload::default();
//! workload.workflows.push(WorkflowSubmission::new(wf));
//! workload.adhoc.push(AdhocSubmission::new(
//!     JobSpec::new("query", 12, 1, ResourceVec::new([1, 2048])),
//!     5,
//! ));
//!
//! let cluster = ClusterConfig::new(ResourceVec::new([10, 65536]), 10.0);
//! let mut scheduler = FlowTimeScheduler::new(cluster.clone(), FlowTimeConfig::default());
//! let outcome = Engine::new(cluster, workload, 10_000)?.run(&mut scheduler)?;
//! assert_eq!(outcome.metrics.workflow_deadline_misses(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod error;
pub mod estimate;
pub mod lp_sched;
pub mod schedulers;

pub use decompose::{DecomposeConfig, Decomposer, Decomposition, JobWindow};
pub use error::CoreError;
pub use estimate::RunHistory;
pub use lp_sched::{LevelingProblem, Plan, PlanJob, SolverBackend};
pub use schedulers::{
    CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler,
    MorpheusScheduler,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::decompose::{DecomposeConfig, Decomposer, Decomposition, JobWindow};
    pub use crate::lp_sched::{LevelingProblem, Plan, PlanJob, SolverBackend};
    pub use crate::schedulers::{
        CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig,
        FlowTimeScheduler, MorpheusScheduler,
    };
    pub use crate::CoreError;
}
