//! Building the paper's LP (Table I / Eq. (1)–(5)).
//!
//! Variables (all per relative slot `t` of the horizon):
//!
//! * `θ` — the peak normalized load being minimized, `θ ∈ [0, 1]`;
//! * `x_{i,t}` — concurrent tasks of job `i` in slot `t`, bounded by the
//!   job's per-slot cap (`x_{i,t}` exists only for `t` in the job window,
//!   which encodes `a_i`/`d_i` of constraint Eq. (2)).
//!
//! Constraints:
//!
//! * demand: `Σ_{t ∈ window_i} x_{i,t} = demand_i` (Eq. (2));
//! * load/capacity: `Σ_i x_{i,t}·req_i^r ≤ θ·C_t^r` for every slot and
//!   resource — Eq. (3) with `z_t^r` substituted out, plus Eq. (4) via the
//!   bound `θ ≤ 1`.
//!
//! A set of *frozen* `(t, r)` pairs can replace their `θ` rows with fixed
//! absolute caps — the mechanism [`super::lexmin`] uses to realize the
//! lexicographic objective.

use super::LevelingProblem;
use crate::error::CoreError;
use flowtime_dag::NUM_RESOURCES;
use flowtime_lp::{Problem, Relation, VarId};
use std::collections::HashMap;

/// A constructed LP plus the variable maps needed to read the solution.
#[derive(Debug)]
pub struct Formulation {
    /// The LP.
    pub problem: Problem,
    /// The peak variable `θ`.
    pub theta: VarId,
    /// `x[i]` maps window-relative offsets to variables:
    /// `x[i][t - window.0]` is job `i`'s allocation in horizon slot `t`.
    pub x: Vec<Vec<VarId>>,
}

/// Builds the LP for `leveling`, with `frozen[(t, r)]` giving absolute load
/// caps for already-fixed slot/resource pairs (excluded from the `θ`
/// objective).
///
/// # Errors
///
/// Propagates [`CoreError::BadHorizon`] from validation and LP construction
/// errors (which indicate internal inconsistency rather than user error).
pub fn build(
    leveling: &LevelingProblem,
    frozen: &HashMap<(usize, usize), f64>,
) -> Result<Formulation, CoreError> {
    leveling.validate()?;
    let mut problem = Problem::new();
    let theta = problem.add_var(1.0, 0.0, 1.0)?;
    let mut x: Vec<Vec<VarId>> = Vec::with_capacity(leveling.jobs.len());
    for job in &leveling.jobs {
        let (start, end) = job.window;
        let cap = job.slot_cap() as f64;
        let vars: Vec<VarId> = (start..end)
            .map(|_| problem.add_var(0.0, 0.0, cap))
            .collect::<Result<_, _>>()?;
        // Demand constraint Eq. (2).
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        problem.add_constraint(&terms, Relation::Eq, job.demand as f64)?;
        x.push(vars);
    }
    // Load/capacity rows per (slot, resource).
    for t in 0..leveling.horizon() {
        for r in 0..NUM_RESOURCES {
            let cap = leveling.slot_caps[t].dim(r) as f64;
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (job, vars) in leveling.jobs.iter().zip(x.iter()) {
                let (start, end) = job.window;
                if t >= start && t < end {
                    let req = job.per_task.dim(r) as f64;
                    if req > 0.0 {
                        terms.push((vars[t - start], req));
                    }
                }
            }
            if terms.is_empty() {
                continue;
            }
            match frozen.get(&(t, r)) {
                Some(&abs_cap) => {
                    problem.add_constraint(&terms, Relation::Le, abs_cap)?;
                }
                None => {
                    if cap > 0.0 {
                        terms.push((theta, -cap));
                        problem.add_constraint(&terms, Relation::Le, 0.0)?;
                    } else {
                        // Zero capacity: nothing may run here.
                        problem.add_constraint(&terms, Relation::Le, 0.0)?;
                    }
                }
            }
        }
    }
    Ok(Formulation { problem, theta, x })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_sched::PlanJob;
    use flowtime_dag::{JobId, ResourceVec};

    fn problem() -> LevelingProblem {
        LevelingProblem {
            slot_caps: vec![ResourceVec::new([10, 10240]); 4],
            jobs: vec![
                PlanJob {
                    id: JobId::new(1),
                    window: (0, 4),
                    demand: 12,
                    per_task: ResourceVec::new([1, 1024]),
                    per_slot_cap: None,
                },
                PlanJob {
                    id: JobId::new(2),
                    window: (0, 2),
                    demand: 8,
                    per_task: ResourceVec::new([1, 1024]),
                    per_slot_cap: Some(5),
                },
            ],
        }
    }

    #[test]
    fn solves_to_min_peak() {
        let f = build(&problem(), &HashMap::new()).unwrap();
        let sol = f.problem.solve().unwrap();
        // Job 2 must fit 8 units in 2 slots at <=5/slot, so those slots
        // carry >= 4 of job 2 alone; leveling yields peak 5/10.
        assert!((sol.value(f.theta) - 0.5).abs() < 1e-6);
        // Demand satisfied.
        let j1: f64 = f.x[0].iter().map(|&v| sol.value(v)).sum();
        let j2: f64 = f.x[1].iter().map(|&v| sol.value(v)).sum();
        assert!((j1 - 12.0).abs() < 1e-6);
        assert!((j2 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn frozen_rows_replace_theta_rows() {
        // Freeze slot 0 (both resources) at a load of 2: the remaining
        // slots must then carry more.
        let mut frozen = HashMap::new();
        frozen.insert((0usize, 0usize), 2.0);
        frozen.insert((0usize, 1usize), 2.0 * 1024.0);
        let f = build(&problem(), &frozen).unwrap();
        // Job 2 can now place at most 2 units in slot 0 and, by its own
        // per-slot cap, at most 5 in slot 1: 7 < 8 demand — infeasible.
        assert!(f.problem.solve().is_err());
    }

    #[test]
    fn infeasible_when_windows_too_tight() {
        let mut p = problem();
        p.jobs[1].demand = 25; // 25 > 2 slots x 10 cap
        let f = build(&p, &HashMap::new()).unwrap();
        assert!(f.problem.solve().is_err());
    }

    #[test]
    fn empty_problem_is_trivial() {
        let p = LevelingProblem {
            slot_caps: vec![ResourceVec::new([1, 1]); 2],
            jobs: vec![],
        };
        let f = build(&p, &HashMap::new()).unwrap();
        let sol = f.problem.solve().unwrap();
        assert!(sol.value(f.theta).abs() < 1e-9);
    }
}
