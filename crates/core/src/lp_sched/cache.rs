//! Plan reuse across replans.
//!
//! Event-driven replanning frequently rebuilds a [`LevelingProblem`] that
//! is either *identical* to the previous one (a batched completion check
//! that changed nothing) or a pure **elapsed-time relabel** of it: `k`
//! slots passed, no tracked job ran or changed, and every window simply
//! moved `k` slots closer. In both cases re-solving is pure waste — the
//! solver is deterministic, so it would reproduce the cached answer bit
//! for bit.
//!
//! [`PlanCache`] recognizes exactly (and only) those two cases:
//!
//! * **Exact hit** — the new problem `==` the cached one. Both solver
//!   backends are deterministic functions of the problem, so the cached
//!   [`Plan`] *is* the answer.
//! * **Shift hit** — the new problem is the cached one with every slot
//!   index reduced by `k`: the horizon shrank by `k`, the per-slot
//!   capacities are the cached ones shifted by `k`, and every job (same
//!   ids, demands, shapes, caps, in the same order) has its window shifted
//!   by `k` — which requires every cached window to start at or after `k`.
//!   Under those conditions the simplex formulation of the new problem is
//!   *term-for-term identical* to the cached one's: slots `< k` carry no
//!   job terms, so their capacity rows were already skipped, and every
//!   surviving row/variable is generated in the same order from equal
//!   numbers. The flow backend's transportation instance relabels the same
//!   way. A deterministic solver plus slot-relabel-equivariant rounding
//!   therefore yields exactly the cached plan minus its (empty) first `k`
//!   slots.
//!
//! Anything else — demand progress, window clamping, capacity churn
//! entering the horizon — is a miss. The cache never *approximates*: a hit
//! returns byte-identical plans to a fresh solve, which is what lets the
//! differential suite require bit-identical simulation outcomes with the
//! cache on and off.

use super::{LevelingProblem, Plan, SolverBackend};
use std::collections::HashMap;

/// Single-entry cache of the most recent `(backend, problem, plan)` triple.
///
/// Replans are sequential and each supersedes the last, so one entry is
/// exactly the useful capacity; failed solves are not cached. The backend
/// is part of the key: the two backends are *equivalent* on peak ratio but
/// not bit-identical on plans, and a hit must return exactly what the
/// requested backend would have produced.
///
/// Caches are strictly per-scheduler-instance: there is no interior
/// sharing, no global state, and `Clone` deep-copies the entry, so two
/// scheduler instances (two sweep cells, or two pods of a sharded run,
/// each owning its own scheduler) can never observe each other's plans.
/// The sharded engine's pods-in-parallel determinism contract leans on
/// this — a pod's replan sequence is a function of that pod's inputs
/// alone, regardless of what any other pod solved concurrently.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entry: Option<(SolverBackend, LevelingProblem, Plan)>,
}

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheLookup {
    /// The cached plan answers the problem verbatim.
    Exact(Plan),
    /// The cached plan answers the problem after dropping `k` leading
    /// slots (elapsed-time relabel).
    Shift(Plan),
    /// No reusable plan; solve and [`PlanCache::store`].
    Miss,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Probes the cache for `leveling` as solved by `backend`.
    pub fn lookup(&self, leveling: &LevelingProblem, backend: SolverBackend) -> CacheLookup {
        let Some((cached_backend, cached, plan)) = &self.entry else {
            return CacheLookup::Miss;
        };
        if *cached_backend != backend {
            return CacheLookup::Miss;
        }
        if cached == leveling {
            return CacheLookup::Exact(plan.clone());
        }
        match shifted_plan(cached, plan, leveling) {
            Some(shifted) => CacheLookup::Shift(shifted),
            None => CacheLookup::Miss,
        }
    }

    /// Records the plan `backend` produced for `leveling`, superseding any
    /// prior entry.
    pub fn store(&mut self, leveling: &LevelingProblem, backend: SolverBackend, plan: &Plan) {
        self.entry = Some((backend, leveling.clone(), plan.clone()));
    }

    /// Drops the cached entry.
    pub fn clear(&mut self) {
        self.entry = None;
    }
}

/// The cached plan with `k` leading slots dropped, iff `new` is exactly
/// `old` relabelled by `k` elapsed slots (see the module docs for why that
/// makes the result identical to a fresh solve).
fn shifted_plan(old: &LevelingProblem, plan: &Plan, new: &LevelingProblem) -> Option<Plan> {
    let k = old.horizon().checked_sub(new.horizon())?;
    if k == 0 {
        // Equal horizons but unequal problems (exact match already failed).
        return None;
    }
    if old.slot_caps[k..] != new.slot_caps[..] || old.jobs.len() != new.jobs.len() {
        return None;
    }
    let relabelled = old.jobs.iter().zip(&new.jobs).all(|(o, n)| {
        o.id == n.id
            && o.demand == n.demand
            && o.per_task == n.per_task
            && o.per_slot_cap == n.per_slot_cap
            && o.window.0 >= k
            && n.window == (o.window.0 - k, o.window.1 - k)
    });
    if !relabelled {
        return None;
    }
    // The cached plan must be silent over the dropped prefix. It always is
    // when rounding respected the windows; verified rather than assumed so
    // a repair pass that ever spilled outside a window degrades to a miss
    // instead of a wrong reuse.
    let mut tasks = HashMap::with_capacity(plan.tasks.len());
    for (&id, per_slot) in &plan.tasks {
        if per_slot[..k.min(per_slot.len())].iter().any(|&q| q > 0) {
            return None;
        }
        tasks.insert(id, per_slot.get(k..).unwrap_or(&[]).to_vec());
    }
    Some(Plan {
        tasks,
        horizon: new.horizon(),
    })
}

#[cfg(test)]
mod tests {
    use super::super::{PlanJob, SolverBackend};
    use super::*;
    use flowtime_dag::{JobId, ResourceVec};

    fn caps(n: usize, cores: u64) -> Vec<ResourceVec> {
        vec![ResourceVec::new([cores, cores * 1024]); n]
    }

    fn job(id: u64, window: (usize, usize), demand: u64) -> PlanJob {
        PlanJob {
            id: JobId::new(id),
            window,
            demand,
            per_task: ResourceVec::new([1, 1024]),
            per_slot_cap: None,
        }
    }

    fn shifted(p: &LevelingProblem, k: usize) -> LevelingProblem {
        LevelingProblem {
            slot_caps: p.slot_caps[k..].to_vec(),
            jobs: p
                .jobs
                .iter()
                .map(|j| PlanJob {
                    window: (j.window.0 - k, j.window.1 - k),
                    ..j.clone()
                })
                .collect(),
        }
    }

    #[test]
    fn exact_hit_returns_stored_plan() {
        let p = LevelingProblem {
            slot_caps: caps(4, 8),
            jobs: vec![job(1, (0, 4), 8)],
        };
        let plan = p.solve(SolverBackend::default()).unwrap();
        let mut cache = PlanCache::new();
        assert_eq!(
            cache.lookup(&p, SolverBackend::default()),
            CacheLookup::Miss
        );
        cache.store(&p, SolverBackend::default(), &plan);
        assert_eq!(
            cache.lookup(&p, SolverBackend::default()),
            CacheLookup::Exact(plan.clone())
        );
        // A different backend must not be answered with this plan.
        assert_eq!(
            cache.lookup(&p, SolverBackend::Simplex { lex_rounds: 2 }),
            CacheLookup::Miss
        );
        cache.clear();
        assert_eq!(
            cache.lookup(&p, SolverBackend::default()),
            CacheLookup::Miss
        );
    }

    #[test]
    fn shift_hit_matches_fresh_solve_on_both_backends() {
        // All windows start at slot 2: after 2 elapsed slots the problem is
        // a pure relabel, and the sliced plan must equal a fresh solve.
        for backend in [
            SolverBackend::ParametricFlow,
            SolverBackend::Simplex { lex_rounds: 3 },
        ] {
            let p = LevelingProblem {
                slot_caps: caps(8, 6),
                jobs: vec![job(1, (2, 6), 9), job(2, (3, 8), 7)],
            };
            let plan = p.solve(backend).unwrap();
            let mut cache = PlanCache::new();
            cache.store(&p, backend, &plan);
            let moved = shifted(&p, 2);
            let CacheLookup::Shift(reused) = cache.lookup(&moved, backend) else {
                panic!("expected shift hit ({backend:?})");
            };
            assert_eq!(reused, moved.solve(backend).unwrap(), "{backend:?}");
        }
    }

    #[test]
    fn progress_or_capacity_change_misses() {
        let p = LevelingProblem {
            slot_caps: caps(6, 6),
            jobs: vec![job(1, (1, 6), 9)],
        };
        let plan = p.solve(SolverBackend::default()).unwrap();
        let mut cache = PlanCache::new();
        cache.store(&p, SolverBackend::default(), &plan);
        // Demand progressed: no hit.
        let mut progressed = shifted(&p, 1);
        progressed.jobs[0].demand = 7;
        assert_eq!(
            cache.lookup(&progressed, SolverBackend::default()),
            CacheLookup::Miss
        );
        // Capacity churn entered the suffix: no hit.
        let mut churned = shifted(&p, 1);
        churned.slot_caps[3] = ResourceVec::new([2, 2048]);
        assert_eq!(
            cache.lookup(&churned, SolverBackend::default()),
            CacheLookup::Miss
        );
        // Window clamped rather than shifted: no hit.
        let mut clamped = shifted(&p, 1);
        clamped.jobs[0].window = (0, 4);
        assert_eq!(
            cache.lookup(&clamped, SolverBackend::default()),
            CacheLookup::Miss
        );
    }

    #[test]
    fn instances_are_independent() {
        // Two caches model two scheduler instances (two pods): storing in
        // one never answers probes on the other, and a clone is a deep
        // copy — clearing or restocking the original leaves it untouched.
        let p = LevelingProblem {
            slot_caps: caps(4, 8),
            jobs: vec![job(1, (0, 4), 8)],
        };
        let plan = p.solve(SolverBackend::default()).unwrap();
        let mut pod_a = PlanCache::new();
        let mut pod_b = PlanCache::new();
        pod_a.store(&p, SolverBackend::default(), &plan);
        assert_eq!(
            pod_b.lookup(&p, SolverBackend::default()),
            CacheLookup::Miss,
            "a pod must never see another pod's plans"
        );
        let cloned = pod_a.clone();
        pod_a.clear();
        assert_eq!(
            cloned.lookup(&p, SolverBackend::default()),
            CacheLookup::Exact(plan.clone()),
            "a cloned cache owns its entry"
        );
        let q = LevelingProblem {
            slot_caps: caps(4, 8),
            jobs: vec![job(2, (0, 4), 4)],
        };
        let plan_q = q.solve(SolverBackend::default()).unwrap();
        pod_b.store(&q, SolverBackend::default(), &plan_q);
        assert_eq!(
            cloned.lookup(&q, SolverBackend::default()),
            CacheLookup::Miss,
            "stores on one instance must not leak into another"
        );
    }

    #[test]
    fn shift_requires_silent_prefix_and_started_windows() {
        // Window starts at 0: slot 0 carries load, so after one elapsed
        // slot the problems are genuinely different — must miss.
        let p = LevelingProblem {
            slot_caps: caps(4, 4),
            jobs: vec![job(1, (0, 4), 8)],
        };
        let plan = p.solve(SolverBackend::default()).unwrap();
        let mut cache = PlanCache::new();
        cache.store(&p, SolverBackend::default(), &plan);
        let moved = LevelingProblem {
            slot_caps: caps(3, 4),
            jobs: vec![job(1, (0, 3), 8)],
        };
        assert_eq!(
            cache.lookup(&moved, SolverBackend::default()),
            CacheLookup::Miss
        );
    }
}
