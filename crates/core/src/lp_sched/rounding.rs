//! Integral repair of fractional LP plans.
//!
//! With unit task shapes the LP's optimal vertices are already integral
//! (the paper's Lemma 2 / total unimodularity), and this module only strips
//! float fuzz. With heterogeneous task shapes the constraint matrix is no
//! longer TU, so we round per job by largest remainder (preserving the
//! demand totals exactly) and then repair any slot whose capacity the
//! rounding overshot by shifting single tasks to under-full window slots.

use super::{LevelingProblem, Plan};
use flowtime_dag::{ResourceVec, NUM_RESOURCES};
use std::collections::HashMap;

/// Rounds the fractional allocation `x[i][t]` into an integral [`Plan`].
///
/// Per-job totals are preserved exactly; per-slot caps of each job are
/// respected; cluster capacity is repaired best-effort (a scheduler
/// dispatching the plan clamps at runtime regardless).
pub fn round_plan(leveling: &LevelingProblem, x: &[Vec<f64>]) -> Plan {
    let horizon = leveling.horizon();
    let mut tasks: HashMap<_, Vec<u64>> = HashMap::new();
    for (job, xs) in leveling.jobs.iter().zip(x.iter()) {
        let mut alloc = vec![0u64; horizon];
        let cap = job.slot_cap();
        let mut fracs: Vec<(usize, f64)> = Vec::new();
        let mut assigned = 0u64;
        for t in job.window.0..job.window.1 {
            let v = xs[t].max(0.0);
            let fl = (v + 1e-9).floor() as u64;
            let fl = fl.min(cap);
            alloc[t] = fl;
            assigned += fl;
            fracs.push((t, v - fl as f64));
        }
        // Distribute the remainder to the largest fractional parts first.
        let mut remainder = job.demand.saturating_sub(assigned);
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        // First pass: honour fractional preference; further passes: any
        // window slot with headroom (handles caps hit during pass one).
        for pass in 0..2 {
            if remainder == 0 {
                break;
            }
            for &(t, _) in &fracs {
                if remainder == 0 {
                    break;
                }
                let headroom = cap - alloc[t];
                if headroom == 0 {
                    continue;
                }
                let take = if pass == 0 {
                    1
                } else {
                    headroom.min(remainder)
                };
                alloc[t] += take;
                remainder -= take;
            }
        }
        // Floor overshoot (float fuzz summing above demand): trim from the
        // smallest fractional parts.
        let mut total: u64 = alloc.iter().sum();
        for &(t, _) in fracs.iter().rev() {
            if total <= job.demand {
                break;
            }
            let trim = (total - job.demand).min(alloc[t]);
            alloc[t] -= trim;
            total -= trim;
        }
        tasks.insert(job.id, alloc);
    }
    let mut plan = Plan { tasks, horizon };
    repair_capacity(leveling, &mut plan);
    plan
}

/// Moves single tasks out of slots where rounding overshot the cluster
/// capacity, into window slots with headroom. Best-effort and bounded.
fn repair_capacity(leveling: &LevelingProblem, plan: &mut Plan) {
    let horizon = leveling.horizon();
    let mut usage: Vec<ResourceVec> = (0..horizon)
        .map(|t| plan.slot_usage(&leveling.jobs, t))
        .collect();
    for _ in 0..4 * horizon.max(1) {
        let Some(over_t) = (0..horizon).find(|&t| !usage[t].fits_within(&leveling.slot_caps[t]))
        else {
            return;
        };
        // Find a job contributing to the overloaded slot and a destination
        // slot in its window with room for one more task.
        let mut moved = false;
        for job in &leveling.jobs {
            if over_t < job.window.0 || over_t >= job.window.1 {
                continue;
            }
            let alloc = plan.tasks.get_mut(&job.id).expect("planned job");
            if alloc[over_t] == 0 {
                continue;
            }
            let cap = job.slot_cap();
            let dest = (job.window.0..job.window.1).find(|&t| {
                t != over_t
                    && alloc[t] < cap
                    && (usage[t] + job.per_task).fits_within(&leveling.slot_caps[t])
            });
            if let Some(dest) = dest {
                alloc[over_t] -= 1;
                alloc[dest] += 1;
                usage[over_t] -= job.per_task;
                usage[dest] += job.per_task;
                moved = true;
                break;
            }
        }
        if !moved {
            return; // cannot repair further; dispatch will clamp
        }
    }
}

/// True if `plan` respects all cluster and per-job caps and meets demands.
pub fn is_feasible(leveling: &LevelingProblem, plan: &Plan) -> bool {
    for job in &leveling.jobs {
        let Some(alloc) = plan.tasks.get(&job.id) else {
            return job.demand == 0;
        };
        if alloc.iter().sum::<u64>() != job.demand {
            return false;
        }
        for (t, &a) in alloc.iter().enumerate() {
            if a > 0 && (t < job.window.0 || t >= job.window.1 || a > job.slot_cap()) {
                return false;
            }
        }
    }
    for t in 0..leveling.horizon() {
        let usage = plan.slot_usage(&leveling.jobs, t);
        for r in 0..NUM_RESOURCES {
            if usage.dim(r) > leveling.slot_caps[t].dim(r) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_sched::PlanJob;
    use flowtime_dag::{JobId, ResourceVec};

    fn problem(jobs: Vec<PlanJob>, slots: usize, cores: u64) -> LevelingProblem {
        LevelingProblem {
            slot_caps: vec![ResourceVec::new([cores, cores * 1024]); slots],
            jobs,
        }
    }

    fn job(id: u64, window: (usize, usize), demand: u64, cap: Option<u64>) -> PlanJob {
        PlanJob {
            id: JobId::new(id),
            window,
            demand,
            per_task: ResourceVec::new([1, 1024]),
            per_slot_cap: cap,
        }
    }

    #[test]
    fn integral_input_passes_through() {
        let p = problem(vec![job(1, (0, 2), 4, None)], 2, 10);
        let plan = round_plan(&p, &[vec![2.0, 2.0]]);
        assert_eq!(plan.tasks[&JobId::new(1)], vec![2, 2]);
        assert!(is_feasible(&p, &plan));
    }

    #[test]
    fn fractional_rounds_preserve_totals() {
        let p = problem(vec![job(1, (0, 3), 7, None)], 3, 10);
        let plan = round_plan(&p, &[vec![2.3333, 2.3333, 2.3334]]);
        let total: u64 = plan.tasks[&JobId::new(1)].iter().sum();
        assert_eq!(total, 7);
        assert!(is_feasible(&p, &plan));
    }

    #[test]
    fn respects_per_slot_caps() {
        let p = problem(vec![job(1, (0, 4), 8, Some(2))], 4, 10);
        let plan = round_plan(&p, &[vec![1.9, 1.9, 1.9, 2.3]]);
        for &a in &plan.tasks[&JobId::new(1)] {
            assert!(a <= 2);
        }
        assert_eq!(plan.tasks[&JobId::new(1)].iter().sum::<u64>(), 8);
    }

    #[test]
    fn repair_moves_overflow() {
        // Two jobs rounded to collide at slot 0 on a 3-core cluster.
        let p = problem(vec![job(1, (0, 2), 2, None), job(2, (0, 2), 2, None)], 2, 3);
        // Force both to put 2 tasks in slot 0 (4 > 3 capacity).
        let plan = round_plan(&p, &[vec![2.0, 0.0], vec![2.0, 0.0]]);
        assert!(
            is_feasible(&p, &plan),
            "repair should shift one task: {plan:?}"
        );
    }

    #[test]
    fn zero_work_jobs_are_fine() {
        let p = problem(vec![job(1, (0, 2), 0, None)], 2, 4);
        let plan = round_plan(&p, &[vec![0.0, 0.0]]);
        assert!(is_feasible(&p, &plan));
    }
}
