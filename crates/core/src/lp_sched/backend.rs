//! Backend dispatch: simplex LP vs. parametric max-flow.

use super::cache::{CacheLookup, PlanCache};
use super::{lexmin, rounding, LevelingProblem, Plan, SolveStats, SolverBackend};
use crate::error::CoreError;
use flowtime_dag::{ResourceVec, NUM_RESOURCES};
use flowtime_flow::leveling::{LevelingInstance, LevelingJob};
use std::collections::HashMap;

/// Lexicographic refinement budget for the flow backend (rounds beyond the
/// exact min-max first round).
const FLOW_LEX_ROUNDS: usize = 2;

/// Solves `leveling` with `backend`, returning an integral plan.
///
/// [`SolverBackend::ParametricFlow`] requires every job to share one task
/// shape (the YARN uniform-container model of the paper's experiments);
/// heterogeneous instances fall back to the simplex path transparently.
///
/// # Errors
///
/// * [`CoreError::BadHorizon`] on malformed windows.
/// * [`CoreError::Lp`] / [`CoreError::Flow`] when the demand cannot fit the
///   windows (infeasible decomposition) or a solver fails.
pub fn solve(leveling: &LevelingProblem, backend: SolverBackend) -> Result<Plan, CoreError> {
    solve_with(leveling, backend, None, &mut SolveStats::default())
}

/// [`solve`] with an optional [`PlanCache`] and solver-effort accounting.
///
/// The cache answers only problems it can prove identical to a fresh solve
/// (see [`super::cache`]), so enabling it never changes any plan — only
/// how much solver work producing it costs. Failed solves are not cached;
/// hits, misses and per-backend solve/pivot counts accumulate into
/// `stats`.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with(
    leveling: &LevelingProblem,
    backend: SolverBackend,
    cache: Option<&mut PlanCache>,
    stats: &mut SolveStats,
) -> Result<Plan, CoreError> {
    leveling.validate()?;
    if leveling.jobs.is_empty() {
        return Ok(Plan {
            tasks: HashMap::new(),
            horizon: leveling.horizon(),
        });
    }
    if let Some(cache) = &cache {
        match cache.lookup(leveling, backend) {
            CacheLookup::Exact(plan) => {
                stats.cache_hits_exact += 1;
                return Ok(plan);
            }
            CacheLookup::Shift(plan) => {
                stats.cache_hits_shift += 1;
                return Ok(plan);
            }
            CacheLookup::Miss => stats.cache_misses += 1,
        }
    }
    let plan = match backend {
        SolverBackend::ParametricFlow if uniform_shape(leveling).is_some() => {
            stats.flow_solves += 1;
            solve_flow(leveling, uniform_shape(leveling).expect("checked"))
        }
        SolverBackend::ParametricFlow => {
            // Heterogeneous shapes: the transportation reduction does not
            // apply; fall back to the LP with the same bounded refinement
            // budget (full lexicographic depth on long horizons would cost
            // hundreds of LP solves per re-plan).
            solve_simplex(leveling, 1 + FLOW_LEX_ROUNDS, stats)
        }
        SolverBackend::Simplex { lex_rounds } => solve_simplex(leveling, lex_rounds, stats),
    }?;
    if let Some(cache) = cache {
        cache.store(leveling, backend, &plan);
    }
    Ok(plan)
}

/// The shared per-task shape, if all jobs agree.
fn uniform_shape(leveling: &LevelingProblem) -> Option<ResourceVec> {
    let first = leveling.jobs.first()?.per_task;
    leveling
        .jobs
        .iter()
        .all(|j| j.per_task == first)
        .then_some(first)
}

fn solve_flow(leveling: &LevelingProblem, shape: ResourceVec) -> Result<Plan, CoreError> {
    // Slot capacity in *tasks*: the bottleneck resource decides.
    let slot_caps: Vec<u64> = leveling
        .slot_caps
        .iter()
        .map(|cap| shape.times_fitting(cap))
        .collect();
    let instance = LevelingInstance {
        slot_caps,
        jobs: leveling
            .jobs
            .iter()
            .map(|j| LevelingJob {
                start: j.window.0,
                end: j.window.1,
                demand: j.demand,
                per_slot_cap: j.per_slot_cap.map(|c| c.min(j.demand).max(1)),
            })
            .collect(),
    };
    // Bounded refinement keeps re-planning latency predictable on long
    // horizons; the first round is always the exact min-max peak.
    let sol = instance.solve_lexmin_rounds(FLOW_LEX_ROUNDS)?;
    let tasks: HashMap<_, _> = leveling
        .jobs
        .iter()
        .zip(sol.allocation)
        .map(|(j, alloc)| (j.id, alloc))
        .collect();
    Ok(Plan {
        tasks,
        horizon: leveling.horizon(),
    })
}

fn solve_simplex(
    leveling: &LevelingProblem,
    lex_rounds: usize,
    stats: &mut SolveStats,
) -> Result<Plan, CoreError> {
    let fractional = lexmin::solve_with_stats(leveling, lex_rounds, true, stats)?;
    Ok(rounding::round_plan(leveling, &fractional.x))
}

/// The normalized peak of a plan in resource space (diagnostic helper used
/// by benches and tests).
pub fn plan_peak(leveling: &LevelingProblem, plan: &Plan) -> f64 {
    let mut peak = 0.0f64;
    for t in 0..leveling.horizon() {
        let usage = plan.slot_usage(&leveling.jobs, t);
        for r in 0..NUM_RESOURCES {
            let cap = leveling.slot_caps[t].dim(r);
            if cap > 0 {
                peak = peak.max(usage.dim(r) as f64 / cap as f64);
            }
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_sched::PlanJob;
    use flowtime_dag::JobId;

    fn caps(n: usize, cores: u64) -> Vec<ResourceVec> {
        vec![ResourceVec::new([cores, cores * 1024]); n]
    }

    fn job(id: u64, window: (usize, usize), demand: u64) -> PlanJob {
        PlanJob {
            id: JobId::new(id),
            window,
            demand,
            per_task: ResourceVec::new([1, 1024]),
            per_slot_cap: None,
        }
    }

    #[test]
    fn backends_agree_on_peak() {
        let p = LevelingProblem {
            slot_caps: caps(6, 10),
            jobs: vec![job(1, (0, 3), 12), job(2, (1, 6), 15), job(3, (2, 4), 6)],
        };
        let flow = p.solve(SolverBackend::ParametricFlow).unwrap();
        let lp = p.solve(SolverBackend::Simplex { lex_rounds: 1 }).unwrap();
        let fp = plan_peak(&p, &flow);
        let lp_peak = plan_peak(&p, &lp);
        assert!(
            (fp - lp_peak).abs() < 1e-6,
            "flow peak {fp} vs lp peak {lp_peak}"
        );
        assert!(rounding::is_feasible(&p, &flow));
        assert!(rounding::is_feasible(&p, &lp));
    }

    #[test]
    fn heterogeneous_shapes_fall_back_to_lp() {
        let mut jobs = vec![job(1, (0, 4), 8)];
        jobs.push(PlanJob {
            id: JobId::new(2),
            window: (0, 4),
            demand: 4,
            per_task: ResourceVec::new([2, 512]),
            per_slot_cap: None,
        });
        let p = LevelingProblem {
            slot_caps: caps(4, 10),
            jobs,
        };
        let plan = p.solve(SolverBackend::ParametricFlow).unwrap();
        assert_eq!(plan.tasks[&JobId::new(1)].iter().sum::<u64>(), 8);
        assert_eq!(plan.tasks[&JobId::new(2)].iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_jobs_trivial_plan() {
        let p = LevelingProblem {
            slot_caps: caps(3, 4),
            jobs: vec![],
        };
        let plan = p.solve(SolverBackend::default()).unwrap();
        assert!(plan.tasks.is_empty());
        assert_eq!(plan.horizon, 3);
    }

    #[test]
    fn infeasible_instances_error() {
        let p = LevelingProblem {
            slot_caps: caps(2, 2),
            jobs: vec![job(1, (0, 2), 10)],
        };
        assert!(p.solve(SolverBackend::ParametricFlow).is_err());
        assert!(p.solve(SolverBackend::Simplex { lex_rounds: 1 }).is_err());
    }

    #[test]
    fn cached_solves_reuse_plans_and_count_stats() {
        let p = LevelingProblem {
            slot_caps: caps(8, 6),
            jobs: vec![job(1, (2, 6), 9), job(2, (3, 8), 7)],
        };
        let mut cache = PlanCache::new();
        let mut stats = SolveStats::default();
        let backend = SolverBackend::Simplex { lex_rounds: 2 };
        let first = solve_with(&p, backend, Some(&mut cache), &mut stats).unwrap();
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.cold_solves >= 1, "main solves stay cold");
        // Identical problem: answered from cache, no new solves.
        let solves_before = stats.cold_solves + stats.warm_solves;
        let again = solve_with(&p, backend, Some(&mut cache), &mut stats).unwrap();
        assert_eq!(again, first);
        assert_eq!(stats.cache_hits_exact, 1);
        assert_eq!(stats.cold_solves + stats.warm_solves, solves_before);
        // Pure elapsed-time relabel: shift hit, identical to a fresh solve.
        let moved = LevelingProblem {
            slot_caps: p.slot_caps[1..].to_vec(),
            jobs: p
                .jobs
                .iter()
                .map(|j| PlanJob {
                    window: (j.window.0 - 1, j.window.1 - 1),
                    ..j.clone()
                })
                .collect(),
        };
        let reused = solve_with(&p, backend, Some(&mut cache), &mut stats).unwrap();
        assert_eq!(reused, first);
        let shifted = solve_with(&moved, backend, Some(&mut cache), &mut stats).unwrap();
        assert_eq!(stats.cache_hits_shift, 1);
        assert_eq!(shifted, solve(&moved, backend).unwrap());
    }

    #[test]
    fn cache_disabled_is_bitwise_identical() {
        let p = LevelingProblem {
            slot_caps: caps(6, 10),
            jobs: vec![job(1, (0, 3), 12), job(2, (1, 6), 15)],
        };
        let mut cache = PlanCache::new();
        let mut stats = SolveStats::default();
        for backend in [
            SolverBackend::ParametricFlow,
            SolverBackend::Simplex { lex_rounds: 3 },
        ] {
            let cached = solve_with(&p, backend, Some(&mut cache), &mut stats).unwrap();
            let uncached = solve(&p, backend).unwrap();
            assert_eq!(cached, uncached, "{backend:?}");
        }
        assert_eq!(stats.flow_solves, 1);
    }

    #[test]
    fn memory_bound_capacity_limits_tasks() {
        // Each task needs 4 GiB; cluster has 8 cores but only 8 GiB: only
        // 2 tasks/slot fit.
        let p = LevelingProblem {
            slot_caps: vec![ResourceVec::new([8, 8192]); 4],
            jobs: vec![PlanJob {
                id: JobId::new(1),
                window: (0, 4),
                demand: 8,
                per_task: ResourceVec::new([1, 4096]),
                per_slot_cap: None,
            }],
        };
        let plan = p.solve(SolverBackend::ParametricFlow).unwrap();
        assert!(rounding::is_feasible(&p, &plan));
        assert_eq!(plan.tasks[&JobId::new(1)], vec![2, 2, 2, 2]);
    }
}
