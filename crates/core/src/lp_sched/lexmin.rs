//! Lexicographic min-max by iterative peak freezing.
//!
//! Round `k`: solve the min-max LP over all non-frozen `(slot, resource)`
//! pairs; every pair that is **necessarily tight** at the optimal peak —
//! capping it any lower makes the LP infeasible or raises the peak — is
//! frozen at the peak level; repeat over the remaining pairs. This is the
//! standard numerically-stable realization of the paper's `lexmin`
//! objective (their Lemma-1 scalarization `Σ k^{u_i}` is exact on paper but
//! overflows any floating-point format for realistic `k = |T||R|`).
//!
//! The necessity test matters: freezing every pair that merely *happens* to
//! sit at the peak in one optimal solution would fix arbitrary caps that
//! later rounds could dump load into. When no individual pair is necessary
//! (a tie between equivalent peaks), all current peak pairs are frozen at
//! the peak level as a progress fallback — the result is then min-max
//! optimal at every completed level and approximately lexmin below.

use super::formulation;
use super::{LevelingProblem, SolveStats};
use crate::error::CoreError;
use flowtime_dag::NUM_RESOURCES;
use flowtime_lp::{Basis, LpError, SimplexOptions};
use std::collections::HashMap;

/// A fractional lexmin-max solution.
#[derive(Debug, Clone)]
pub struct FractionalPlan {
    /// `x[i][t]` allocation of job `i` in horizon slot `t` (dense).
    pub x: Vec<Vec<f64>>,
    /// The minimal peak ratio found in the first round.
    pub peak_ratio: f64,
    /// Number of refinement rounds performed.
    pub rounds_used: usize,
    /// The optimal peak level of each completed round's main solve — the
    /// lexicographic objective vector, for cross-configuration equivalence
    /// checks.
    pub thetas: Vec<f64>,
}

fn solve_once(
    leveling: &LevelingProblem,
    frozen: &HashMap<(usize, usize), f64>,
    warm: Option<&Basis>,
    stats: &mut SolveStats,
) -> Result<(f64, Vec<Vec<f64>>, Basis), CoreError> {
    let horizon = leveling.horizon();
    let f = formulation::build(leveling, frozen)?;
    let res = match f.problem.solve_warm(&SimplexOptions::default(), warm) {
        Ok(res) => res,
        Err(e) => {
            // Errors (infeasible, unbounded) are always diagnosed by the
            // cold path: the warm attempt either never matched or repaired
            // into the fallback before failing.
            stats.cold_solves += 1;
            if warm.is_some() {
                stats.warm_fallbacks += 1;
            }
            return Err(e.into());
        }
    };
    if res.warm_used {
        stats.warm_solves += 1;
        stats.warm_pivots += res.solution.iterations as u64;
    } else {
        stats.cold_solves += 1;
        stats.cold_pivots += res.solution.iterations as u64;
        if warm.is_some() {
            stats.warm_fallbacks += 1;
        }
    }
    let sol = &res.solution;
    let theta = sol.value(f.theta);
    let mut x = vec![vec![0.0f64; horizon]; leveling.jobs.len()];
    for (i, (job, vars)) in leveling.jobs.iter().zip(f.x.iter()).enumerate() {
        for (off, &v) in vars.iter().enumerate() {
            x[i][job.window.0 + off] = sol.value(v);
        }
    }
    Ok((theta, x, res.basis))
}

fn loads_of(leveling: &LevelingProblem, x: &[Vec<f64>]) -> Vec<[f64; NUM_RESOURCES]> {
    let mut loads = vec![[0.0f64; NUM_RESOURCES]; leveling.horizon()];
    for (i, job) in leveling.jobs.iter().enumerate() {
        for t in job.window.0..job.window.1 {
            for (r, load) in loads[t].iter_mut().enumerate() {
                *load += x[i][t] * job.per_task.dim(r) as f64;
            }
        }
    }
    loads
}

/// Solves `leveling` lexicographically with at most `rounds` freeze
/// iterations (`1` = plain min-max, no refinement solves).
///
/// # Errors
///
/// Propagates formulation and LP errors; an infeasible first round means
/// the decomposed windows cannot hold the demand
/// ([`flowtime_lp::LpError::Infeasible`] wrapped in [`CoreError::Lp`]).
pub fn solve(leveling: &LevelingProblem, rounds: usize) -> Result<FractionalPlan, CoreError> {
    solve_with_stats(leveling, rounds, true, &mut SolveStats::default())
}

/// [`solve`] with explicit control over warm-started necessity trials and
/// solver-effort accounting.
///
/// Every round's **main** solve is always cold: the returned vertex defines
/// the peak candidates and the final allocation, so it must not depend on
/// warm-start state. When `warm_trials` is set, the objective-only
/// necessity trials of each round warm-start from that round's main
/// optimal basis — the trial LP differs from the main LP by one capacity
/// row, the textbook dual-repair case. Trials only compare the optimal
/// *objective* against a threshold, and warm and cold solves provably agree
/// on the objective, so the freezing decisions (and therefore the returned
/// plan) are identical either way; `tests/warm_start_props.rs` checks
/// exactly that.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_stats(
    leveling: &LevelingProblem,
    rounds: usize,
    warm_trials: bool,
    stats: &mut SolveStats,
) -> Result<FractionalPlan, CoreError> {
    let mut frozen: HashMap<(usize, usize), f64> = HashMap::new();
    let mut result: Option<FractionalPlan> = None;
    let mut first_peak = 0.0f64;
    let mut thetas: Vec<f64> = Vec::new();
    let rounds = rounds.max(1);
    for round in 0..rounds {
        let (theta, x, basis) = solve_once(leveling, &frozen, None, stats)?;
        if round == 0 {
            first_peak = theta;
        }
        thetas.push(theta);
        let loads = loads_of(leveling, &x);
        result = Some(FractionalPlan {
            x,
            peak_ratio: first_peak,
            rounds_used: round + 1,
            thetas: thetas.clone(),
        });
        if round + 1 == rounds || theta <= 1e-9 {
            break;
        }
        // Candidate peak pairs among the unfrozen.
        let peaks: Vec<(usize, usize, f64)> = loads
            .iter()
            .enumerate()
            .flat_map(|(t, load)| load.iter().enumerate().map(move |(r, &z)| (t, r, z)))
            .filter(|&(t, r, _)| !frozen.contains_key(&(t, r)))
            .filter(|&(t, r, _)| {
                let cap = leveling.slot_caps[t].dim(r) as f64;
                cap > 0.0 && loads[t][r] / cap >= theta - 1e-7
            })
            .collect();
        if peaks.is_empty() {
            break;
        }
        // Necessity test per candidate: cap it just below the peak level
        // and see whether the peak must rise.
        let mut necessary: Vec<((usize, usize), f64)> = Vec::new();
        for &(t, r, _) in &peaks {
            let cap = leveling.slot_caps[t].dim(r) as f64;
            let level = theta * cap;
            let delta = (level * 1e-3).max(0.5);
            let mut trial = frozen.clone();
            trial.insert((t, r), (level - delta).max(0.0));
            let warm = if warm_trials { Some(&basis) } else { None };
            let tight = match solve_once(leveling, &trial, warm, stats) {
                Ok((theta_new, _, _)) => theta_new > theta + 1e-6,
                Err(CoreError::Lp(LpError::Infeasible)) => true,
                Err(e) => return Err(e),
            };
            if tight {
                necessary.push(((t, r), level));
            }
        }
        if necessary.is_empty() {
            // Tie between equivalent peaks: freeze them all at the peak
            // level (progress fallback, see module docs).
            for &(t, r, _) in &peaks {
                let cap = leveling.slot_caps[t].dim(r) as f64;
                frozen.insert((t, r), theta * cap);
            }
        } else {
            frozen.extend(necessary);
        }
    }
    Ok(result.expect("at least one round"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_sched::PlanJob;
    use flowtime_dag::{JobId, ResourceVec};

    fn uniform_caps(n: usize, cores: u64) -> Vec<ResourceVec> {
        vec![ResourceVec::new([cores, cores * 1024]); n]
    }

    fn job(id: u64, window: (usize, usize), demand: u64) -> PlanJob {
        PlanJob {
            id: JobId::new(id),
            window,
            demand,
            per_task: ResourceVec::new([1, 1024]),
            per_slot_cap: None,
        }
    }

    #[test]
    fn single_round_matches_min_max() {
        let p = LevelingProblem {
            slot_caps: uniform_caps(4, 10),
            jobs: vec![job(1, (0, 4), 12), job(2, (0, 4), 8)],
        };
        let plan = solve(&p, 1).unwrap();
        assert!((plan.peak_ratio - 0.5).abs() < 1e-6);
        let total0: f64 = plan.x[0].iter().sum();
        assert!((total0 - 12.0).abs() < 1e-6);
    }

    #[test]
    fn lexicographic_flattens_secondary_peaks() {
        // Rigid job pins slots 0-1; flexible job should spread over 2..6.
        let p = LevelingProblem {
            slot_caps: uniform_caps(6, 10),
            jobs: vec![job(1, (0, 2), 12), job(2, (2, 6), 8)],
        };
        let plan = solve(&p, 8).unwrap();
        assert!(plan.rounds_used >= 2);
        // Slots 2..6 should each carry ~2.0 of job 2.
        for t in 2..6 {
            assert!(
                (plan.x[1][t] - 2.0).abs() < 1e-5,
                "slot {t}: {}",
                plan.x[1][t]
            );
        }
    }

    #[test]
    fn necessity_test_does_not_overfreeze() {
        // One flexible job over 3 slots: peak 2.0 everywhere, no single
        // slot necessary below the tie fallback. The final profile must
        // still be flat with totals preserved.
        let p = LevelingProblem {
            slot_caps: uniform_caps(3, 10),
            jobs: vec![job(1, (0, 3), 6)],
        };
        let plan = solve(&p, 4).unwrap();
        let total: f64 = plan.x[0].iter().sum();
        assert!((total - 6.0).abs() < 1e-6);
        for t in 0..3 {
            assert!(plan.x[0][t] <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn warm_trials_match_cold_trials_exactly() {
        // Rigid + flexible jobs force several freeze rounds with real
        // necessity trials; warm-started trials must reproduce the cold
        // path's allocation and objective vector bit for bit (the main
        // solves are cold in both configurations).
        let p = LevelingProblem {
            slot_caps: uniform_caps(8, 10),
            jobs: vec![job(1, (0, 2), 14), job(2, (2, 8), 12), job(3, (1, 5), 6)],
        };
        let mut warm_stats = SolveStats::default();
        let mut cold_stats = SolveStats::default();
        let warm = solve_with_stats(&p, 6, true, &mut warm_stats).unwrap();
        let cold = solve_with_stats(&p, 6, false, &mut cold_stats).unwrap();
        assert_eq!(warm.x, cold.x);
        assert_eq!(warm.thetas, cold.thetas);
        assert_eq!(warm.rounds_used, cold.rounds_used);
        // The cold configuration never warm-starts anything...
        assert_eq!(cold_stats.warm_solves, 0);
        assert_eq!(cold_stats.warm_fallbacks, 0);
        // ...and the warm configuration actually exercised warm trials.
        assert!(
            warm_stats.warm_solves > 0,
            "no warm trials ran: {warm_stats:?}"
        );
        assert_eq!(
            warm_stats.cold_solves + warm_stats.warm_solves,
            cold_stats.cold_solves,
            "same number of LP solves either way"
        );
    }

    #[test]
    fn infeasible_windows_error() {
        let p = LevelingProblem {
            slot_caps: uniform_caps(2, 2),
            jobs: vec![job(1, (0, 2), 10)],
        };
        assert!(matches!(solve(&p, 2), Err(CoreError::Lp(_))));
    }

    #[test]
    fn empty_problem_trivial() {
        let p = LevelingProblem {
            slot_caps: uniform_caps(3, 4),
            jobs: vec![],
        };
        let plan = solve(&p, 3).unwrap();
        assert_eq!(plan.peak_ratio, 0.0);
        assert!(plan.x.is_empty());
    }
}
