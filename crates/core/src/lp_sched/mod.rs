//! LP-based co-scheduling (paper Section V).
//!
//! Given decomposed per-job windows, FlowTime places every deadline job's
//! demand across a slot horizon so that the **maximum normalized cluster
//! load** is (lexicographically) minimal — Eq. (1)–(5) of the paper. The
//! flattened deadline-load profile leaves the largest possible residual
//! capacity in every slot for ad-hoc jobs.
//!
//! Two interchangeable exact backends implement the optimization:
//!
//! * [`SolverBackend::Simplex`] — the paper's formulation, built by
//!   [`formulation`] and solved by the workspace simplex
//!   (`flowtime-lp`), with the lexicographic objective realized by
//!   iterative peak freezing ([`lexmin`]) and float allocations made
//!   integral by [`rounding`]. (The paper's Lemma 1 scalarization
//!   `g(u) = Σ k^{u_i}` is mathematically elegant but numerically
//!   unusable — `k^{u}` overflows immediately — so every practical
//!   implementation, ours included, uses iterative refinement.)
//! * [`SolverBackend::ParametricFlow`] — for uniform task shapes (the
//!   paper's YARN container model) the constraint matrix is a
//!   transportation polytope (Lemma 2), and the same optimum is found
//!   exactly and integrally by parametric max-flow (`flowtime-flow`).

pub mod backend;
pub mod cache;
pub mod formulation;
pub mod lexmin;
pub mod rounding;

use crate::error::CoreError;
use flowtime_dag::{JobId, ResourceVec};
use std::collections::HashMap;

/// Solver-effort counters accumulated across one or more backend solves.
///
/// The scheduler folds these into the simulator's
/// [`flowtime_sim::SolverTelemetry`] per replan; tests read them directly
/// to assert warm-start and cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex solves that ran the cold two-phase path.
    pub cold_solves: u64,
    /// Simplex solves warm-started from a previous optimal basis.
    pub warm_solves: u64,
    /// Warm-start attempts that fell back cold (also in `cold_solves`).
    pub warm_fallbacks: u64,
    /// Pivots spent in cold solves.
    pub cold_pivots: u64,
    /// Pivots spent in successful warm-started solves.
    pub warm_pivots: u64,
    /// Solves answered by the parametric-flow backend.
    pub flow_solves: u64,
    /// Plan-cache hits on a byte-identical problem.
    pub cache_hits_exact: u64,
    /// Plan-cache hits on a pure elapsed-time relabel of the cached problem.
    pub cache_hits_shift: u64,
    /// Cache lookups that found no reusable plan (cache enabled only).
    pub cache_misses: u64,
}

/// One deadline job as seen by the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanJob {
    /// The engine job id this plan entry belongs to.
    pub id: JobId,
    /// Usable horizon slots `[start, end)`, relative to the plan origin.
    pub window: (usize, usize),
    /// Remaining demand in task-slots.
    pub demand: u64,
    /// Resources per concurrent task.
    pub per_task: ResourceVec,
    /// Cap on concurrent tasks per slot.
    pub per_slot_cap: Option<u64>,
}

impl PlanJob {
    /// The effective per-slot task cap (explicit cap or the whole demand).
    pub fn slot_cap(&self) -> u64 {
        self.per_slot_cap
            .unwrap_or(self.demand)
            .min(self.demand)
            .max(1)
    }
}

/// A leveling problem over a relative slot horizon.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LevelingProblem {
    /// Residual capacity of each horizon slot available to deadline jobs.
    pub slot_caps: Vec<ResourceVec>,
    /// The deadline jobs to place.
    pub jobs: Vec<PlanJob>,
}

impl LevelingProblem {
    /// Horizon length in slots.
    pub fn horizon(&self) -> usize {
        self.slot_caps.len()
    }

    /// Validates windows and demands against the horizon.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadHorizon`] on empty or out-of-range windows.
    pub fn validate(&self) -> Result<(), CoreError> {
        let h = self.horizon();
        for job in &self.jobs {
            if job.window.0 >= job.window.1 {
                return Err(CoreError::BadHorizon {
                    reason: "empty job window",
                });
            }
            if job.window.1 > h {
                return Err(CoreError::BadHorizon {
                    reason: "job window beyond horizon",
                });
            }
        }
        Ok(())
    }

    /// Solves with the chosen backend. See [`backend::solve`].
    ///
    /// # Errors
    ///
    /// Propagates validation, infeasibility, and solver errors.
    pub fn solve(&self, backend: SolverBackend) -> Result<Plan, CoreError> {
        backend::solve(self, backend)
    }
}

/// Which optimizer realizes the lexmin-max placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// The paper's LP, solved by the workspace simplex with `lex_rounds`
    /// rounds of lexicographic peak freezing (1 = plain min-max).
    Simplex {
        /// Number of freeze/re-solve rounds.
        lex_rounds: usize,
    },
    /// Exact parametric max-flow; requires all jobs to share one task
    /// shape, otherwise [`backend::solve`] transparently falls back to the
    /// simplex.
    #[default]
    ParametricFlow,
}

/// An integral placement of deadline jobs over the horizon.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    /// `tasks[id][slot]` concurrent tasks planned for each job, dense over
    /// the horizon.
    pub tasks: HashMap<JobId, Vec<u64>>,
    /// Horizon length the plan covers.
    pub horizon: usize,
}

impl Plan {
    /// Planned tasks for `job` at relative `slot` (0 if absent).
    pub fn tasks_at(&self, job: JobId, slot: usize) -> u64 {
        self.tasks
            .get(&job)
            .and_then(|v| v.get(slot))
            .copied()
            .unwrap_or(0)
    }

    /// Total resources the plan consumes in `slot`, given per-job shapes.
    pub fn slot_usage(&self, jobs: &[PlanJob], slot: usize) -> ResourceVec {
        jobs.iter().fold(ResourceVec::zero(), |acc, j| {
            acc + j.per_task * self.tasks_at(j.id, slot)
        })
    }

    /// The peak normalized load of this plan against `slot_caps`.
    pub fn peak_ratio(&self, jobs: &[PlanJob], slot_caps: &[ResourceVec]) -> f64 {
        (0..self.horizon.min(slot_caps.len()))
            .map(|t| self.slot_usage(jobs, t).max_normalized_by(&slot_caps[t]))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, window: (usize, usize), demand: u64) -> PlanJob {
        PlanJob {
            id: JobId::new(id),
            window,
            demand,
            per_task: ResourceVec::new([1, 1024]),
            per_slot_cap: None,
        }
    }

    #[test]
    fn validation_catches_bad_windows() {
        let mut p = LevelingProblem {
            slot_caps: vec![ResourceVec::new([10, 10240]); 4],
            jobs: vec![job(1, (2, 2), 5)],
        };
        assert!(matches!(p.validate(), Err(CoreError::BadHorizon { .. })));
        p.jobs[0].window = (0, 9);
        assert!(matches!(p.validate(), Err(CoreError::BadHorizon { .. })));
        p.jobs[0].window = (0, 4);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn plan_accessors() {
        let mut plan = Plan {
            tasks: HashMap::new(),
            horizon: 3,
        };
        plan.tasks.insert(JobId::new(1), vec![2, 0, 1]);
        assert_eq!(plan.tasks_at(JobId::new(1), 0), 2);
        assert_eq!(plan.tasks_at(JobId::new(1), 9), 0);
        assert_eq!(plan.tasks_at(JobId::new(9), 0), 0);
        let jobs = vec![job(1, (0, 3), 3)];
        assert_eq!(plan.slot_usage(&jobs, 0), ResourceVec::new([2, 2048]));
        let caps = vec![ResourceVec::new([4, 409600]); 3];
        assert!((plan.peak_ratio(&jobs, &caps) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slot_cap_defaults_to_demand() {
        assert_eq!(job(1, (0, 1), 7).slot_cap(), 7);
        let mut j = job(1, (0, 1), 7);
        j.per_slot_cap = Some(3);
        assert_eq!(j.slot_cap(), 3);
        j.demand = 2;
        assert_eq!(j.slot_cap(), 2);
    }
}
