//! FIFO baseline: first-come, first-served, deadline-oblivious.

use super::util::SlotFiller;
use flowtime_sim::{Allocation, Scheduler, SimState};

/// The FIFO baseline of the paper's evaluation: all runnable jobs —
/// deadline or ad-hoc alike — are served at full width in arrival order.
/// Deadlines play no role, so under contention deadline jobs queue behind
/// earlier arrivals and miss (the worst miss count in Fig. 4(b)).
///
/// # Example
///
/// ```
/// use flowtime::FifoScheduler;
/// use flowtime_sim::Scheduler;
/// assert_eq!(FifoScheduler::new().name(), "FIFO");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler {
    _private: (),
}

impl FifoScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn decision_tag(&self) -> &'static str {
        "fifo-greedy"
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        let mut filler = SlotFiller::new(state.capacity_now());
        // runnable_jobs() is already sorted by (arrival, id).
        filler.greedy_fill(state.runnable_jobs().iter());
        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec};
    use flowtime_sim::prelude::*;

    #[test]
    fn serves_in_arrival_order() {
        let mut wl = SimWorkload::default();
        let spec = JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024]));
        wl.adhoc.push(AdhocSubmission::new(spec.clone(), 0));
        wl.adhoc.push(AdhocSubmission::new(spec, 1));
        let cluster = ClusterConfig::new(ResourceVec::new([4, 8192]), 10.0);
        let out = Engine::new(cluster, wl, 100)
            .unwrap()
            .run(&mut FifoScheduler::new())
            .unwrap();
        let c: Vec<u64> = out.metrics.jobs.iter().map(|j| j.completion_slot).collect();
        // First job monopolizes the 4 cores for 2 slots; second runs after.
        assert_eq!(c, vec![2, 4]);
    }
}
