//! Earliest-deadline-first baseline.

use super::util::SlotFiller;
use flowtime_dag::WorkflowId;
use flowtime_sim::{Allocation, JobClass, Scheduler, SimState};
use std::collections::HashMap;

/// The EDF baseline of the paper's motivation (Fig. 1): deadline workflows
/// are served strictly before ad-hoc jobs, ordered by *workflow* deadline
/// (EDF has no per-job decomposition), each at full width. Ad-hoc jobs get
/// whatever is left — under sustained deadline load, nothing.
///
/// This is the paper's "best baseline for deadlines, worst for ad-hoc"
/// strawman: it completes loose-deadline workflows needlessly early
/// (Section II-B) and inflates ad-hoc turnaround by up to 10x (Fig. 4(c)).
///
/// # Example
///
/// ```
/// use flowtime::EdfScheduler;
/// use flowtime_sim::Scheduler;
/// assert_eq!(EdfScheduler::new().name(), "EDF");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EdfScheduler {
    _private: (),
}

impl EdfScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        EdfScheduler::default()
    }
}

impl Scheduler for EdfScheduler {
    fn name(&self) -> &str {
        "EDF"
    }

    fn decision_tag(&self) -> &'static str {
        "edf-greedy"
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        let workflow_deadline: HashMap<WorkflowId, u64> = state
            .workflows()
            .iter()
            .map(|w| (w.id(), w.workflow.deadline_slot()))
            .collect();
        let jobs = state.runnable_jobs();
        let mut deadline_jobs: Vec<&_> = jobs.iter().filter(|j| !j.is_adhoc()).collect();
        deadline_jobs.sort_by_key(|j| {
            let wd = match j.class {
                JobClass::Deadline { workflow, .. } => workflow_deadline
                    .get(&workflow)
                    .copied()
                    .unwrap_or(u64::MAX),
                JobClass::AdHoc => u64::MAX,
            };
            (wd, j.id)
        });
        let mut filler = SlotFiller::new(state.capacity_now());
        filler.greedy_fill(deadline_jobs);
        // Ad-hoc jobs only see the leftovers, in arrival order.
        filler.greedy_fill(jobs.iter().filter(|j| j.is_adhoc()));
        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};
    use flowtime_sim::prelude::*;

    #[test]
    fn deadline_work_starves_adhoc() {
        // Paper Fig. 1 scaled down: workflow W1 = two chained jobs (each
        // 100% of the cluster for 10 slots), deadline slot 20 (loose would
        // be > 20; here exactly tight for EDF to look "fine" on deadlines).
        // Ad-hoc A1 arrives at 0, A2 at 10.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w1");
        let j1 = b.add_job(JobSpec::new("j1", 4, 10, ResourceVec::new([1, 1024])));
        let j2 = b.add_job(JobSpec::new("j2", 4, 10, ResourceVec::new([1, 1024])));
        b.add_dep(j1, j2).unwrap();
        let wf = b.window(0, 40).build().unwrap();

        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        wl.adhoc.push(AdhocSubmission::new(
            JobSpec::new("a1", 4, 10, ResourceVec::new([1, 1024])),
            0,
        ));
        let cluster = ClusterConfig::new(ResourceVec::new([4, 8192]), 10.0);
        let out = Engine::new(cluster, wl, 1000)
            .unwrap()
            .run(&mut EdfScheduler::new())
            .unwrap();
        // Workflow done at slot 20; the ad-hoc job waited the whole time.
        assert!(!out.metrics.workflows[0].missed_deadline());
        let adhoc = out.metrics.adhoc_jobs().next().unwrap();
        assert_eq!(adhoc.completion_slot, 30);
        assert_eq!(adhoc.turnaround_slots(), 30);
    }

    #[test]
    fn earlier_deadline_preempts_later() {
        let mk = |id: u64, deadline: u64| {
            let mut b = WorkflowBuilder::new(WorkflowId::new(id), "w");
            b.add_job(JobSpec::new("j", 4, 5, ResourceVec::new([1, 1024])));
            WorkflowSubmission::new(b.window(0, deadline).build().unwrap())
        };
        let mut wl = SimWorkload::default();
        wl.workflows.push(mk(1, 100)); // loose
        wl.workflows.push(mk(2, 10)); // tight
        let cluster = ClusterConfig::new(ResourceVec::new([4, 8192]), 10.0);
        let out = Engine::new(cluster, wl, 1000)
            .unwrap()
            .run(&mut EdfScheduler::new())
            .unwrap();
        let by_wf: Vec<(u64, u64)> = out
            .metrics
            .workflows
            .iter()
            .map(|w| (w.id.as_u64(), w.completion_slot))
            .collect();
        // Workflow 2 (deadline 10) completes first despite equal arrival.
        assert_eq!(by_wf, vec![(1, 10), (2, 5)]);
    }
}
