//! Shared slot-filling machinery for schedulers.

use flowtime_dag::{JobId, ResourceVec};
use flowtime_sim::{Allocation, JobView};
use std::collections::BTreeMap;

/// Tracks free capacity and per-job grants while a scheduler fills one
/// slot, enforcing both resource headroom and per-job task caps.
#[derive(Debug, Clone)]
pub(crate) struct SlotFiller {
    free: ResourceVec,
    granted: BTreeMap<JobId, u64>,
}

impl SlotFiller {
    pub fn new(capacity: ResourceVec) -> Self {
        SlotFiller {
            free: capacity,
            granted: BTreeMap::new(),
        }
    }

    /// Remaining free capacity.
    #[allow(dead_code)] // part of the filler's API; exercised in tests
    pub fn free(&self) -> ResourceVec {
        self.free
    }

    /// Tasks already granted to `job` this slot.
    pub fn granted(&self, job: JobId) -> u64 {
        self.granted.get(&job).copied().unwrap_or(0)
    }

    /// The most additional tasks `job` could still receive.
    pub fn headroom(&self, job: &JobView) -> u64 {
        let by_cap = job.max_tasks_this_slot.saturating_sub(self.granted(job.id));
        let by_resources = job.per_task.times_fitting(&self.free);
        by_cap.min(by_resources)
    }

    /// Grants up to `want` tasks to `job`; returns the number granted.
    pub fn grant(&mut self, job: &JobView, want: u64) -> u64 {
        let give = want.min(self.headroom(job));
        if give > 0 {
            self.free -= job.per_task * give;
            *self.granted.entry(job.id).or_insert(0) += give;
        }
        give
    }

    /// Grants each job in order as many tasks as fit (FIFO-style greedy).
    pub fn greedy_fill<'a>(&mut self, jobs: impl IntoIterator<Item = &'a JobView>) {
        for job in jobs {
            self.grant(job, u64::MAX);
        }
    }

    /// Max-min fair share: repeatedly grants one task to each job in a
    /// round-robin until nothing fits any more.
    pub fn fair_fill(&mut self, jobs: &[&JobView]) {
        loop {
            let mut progressed = false;
            for job in jobs {
                if self.grant(job, 1) > 0 {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Finalizes into the engine's [`Allocation`].
    pub fn into_allocation(self) -> Allocation {
        self.granted.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_sim::JobClass;

    fn view(id: u64, per_task: ResourceVec, cap: u64) -> JobView {
        JobView {
            id: JobId::new(id),
            class: JobClass::AdHoc,
            per_task,
            arrival_slot: 0,
            ready_slot: Some(0),
            estimated_remaining: None,
            estimated_total: None,
            task_slots: None,
            max_tasks_this_slot: cap,
            deadline_slot: None,
            done_work: 0,
        }
    }

    #[test]
    fn grant_respects_resources_and_caps() {
        let mut f = SlotFiller::new(ResourceVec::new([10, 10240]));
        let j = view(1, ResourceVec::new([2, 1024]), 3);
        assert_eq!(f.grant(&j, 10), 3); // capped by tasks
        assert_eq!(f.granted(JobId::new(1)), 3);
        assert_eq!(f.free(), ResourceVec::new([4, 10240 - 3072]));
        let wide = view(2, ResourceVec::new([3, 1024]), 99);
        assert_eq!(f.grant(&wide, 10), 1); // capped by cpu (4/3)
    }

    #[test]
    fn greedy_fill_is_fifo_biased() {
        let mut f = SlotFiller::new(ResourceVec::new([4, 4096]));
        let a = view(1, ResourceVec::new([1, 1024]), 10);
        let b = view(2, ResourceVec::new([1, 1024]), 10);
        f.greedy_fill([&a, &b]);
        assert_eq!(f.granted(JobId::new(1)), 4);
        assert_eq!(f.granted(JobId::new(2)), 0);
    }

    #[test]
    fn fair_fill_balances() {
        let mut f = SlotFiller::new(ResourceVec::new([5, 5120]));
        let a = view(1, ResourceVec::new([1, 1024]), 10);
        let b = view(2, ResourceVec::new([1, 1024]), 10);
        f.fair_fill(&[&a, &b]);
        let ga = f.granted(JobId::new(1));
        let gb = f.granted(JobId::new(2));
        assert_eq!(ga + gb, 5);
        assert!((ga as i64 - gb as i64).abs() <= 1);
    }

    #[test]
    fn into_allocation_round_trips() {
        let mut f = SlotFiller::new(ResourceVec::new([4, 4096]));
        let a = view(7, ResourceVec::new([1, 1024]), 2);
        f.grant(&a, 2);
        let alloc = f.into_allocation();
        assert_eq!(alloc.get(JobId::new(7)), 2);
    }
}
