//! Morpheus-like baseline (Jyothi et al., OSDI 2016).
//!
//! Morpheus infers per-job SLOs (deadlines) from the periodicity of prior
//! runs and *reserves* resources ahead of time to meet them. The paper's
//! criticism (Section I) is that the inference "has not utilized global
//! information of the entire workflow, such as how jobs depend upon each
//! other" — so our reproduction gives each job an SLO at the historical
//! *uniform level spacing* of the workflow window (what recurrence logs
//! reveal without DAG/demand analysis), then places a per-job reservation
//! greedily on the least-loaded slots before that SLO (the Rayon/Morpheus
//! skyline heuristic) rather than solving a global placement.
//!
//! Consequences reproduced from Fig. 4: reservations make it far better
//! than FIFO/Fair on deadlines, but per-job greedy placement misses
//! deadlines that FlowTime's global LP meets, and reservations squeeze
//! ad-hoc jobs harder than FlowTime's leveled profile.

use super::util::SlotFiller;
use flowtime_dag::{JobId, ResourceVec, WorkflowId};
use flowtime_sim::{Allocation, ClusterConfig, JobView, Scheduler, SimState};
use std::collections::{HashMap, HashSet};

/// Reservation record for one deadline job.
#[derive(Debug, Clone)]
struct Reservation {
    /// Absolute slot of `profile[0]`.
    origin: u64,
    /// Reserved tasks per slot.
    profile: Vec<u64>,
    /// Inferred SLO (absolute slot).
    slo: u64,
}

impl Reservation {
    /// Reserved tasks from `origin` through slot `now` inclusive.
    fn cumulative_through(&self, now: u64) -> u64 {
        if now < self.origin {
            return 0;
        }
        let upto = ((now - self.origin) as usize + 1).min(self.profile.len());
        self.profile[..upto].iter().sum()
    }

    fn total(&self) -> u64 {
        self.profile.iter().sum()
    }
}

/// The Morpheus-like reservation scheduler.
pub struct MorpheusScheduler {
    cluster: ClusterConfig,
    reservations: HashMap<JobId, Reservation>,
    /// Cluster-wide reserved load per absolute slot (the skyline).
    skyline: Vec<ResourceVec>,
    seen_workflows: HashSet<WorkflowId>,
}

impl MorpheusScheduler {
    /// Creates the scheduler.
    pub fn new(cluster: ClusterConfig) -> Self {
        MorpheusScheduler {
            cluster,
            reservations: HashMap::new(),
            skyline: Vec::new(),
            seen_workflows: HashSet::new(),
        }
    }

    fn skyline_at(&mut self, slot: u64) -> &mut ResourceVec {
        let idx = slot as usize;
        if idx >= self.skyline.len() {
            self.skyline.resize(idx + 1, ResourceVec::zero());
        }
        &mut self.skyline[idx]
    }

    fn absorb_arrivals(&mut self, state: &SimState) {
        let capacity = self.cluster.capacity();
        let arrived: Vec<_> = state
            .workflows()
            .iter()
            .filter(|w| !self.seen_workflows.contains(&w.id()))
            .map(|w| (w.id(), w.workflow.clone(), w.job_ids.to_vec()))
            .collect();
        for (wf_id, workflow, job_ids) in arrived {
            self.seen_workflows.insert(wf_id);
            // Historical SLO inference: uniform level spacing of the window
            // (recurrence reveals *when* jobs historically finished, not why).
            let sets = workflow.level_sets();
            let levels = sets.len() as u64;
            let ws = workflow.submit_slot();
            let window = workflow.window_slots();
            for (level_idx, set) in sets.iter().enumerate() {
                let start = ws + window * level_idx as u64 / levels;
                let slo = ws + window * (level_idx as u64 + 1) / levels;
                for &node in set {
                    let job = workflow.job(node);
                    let id = job_ids[node];
                    let demand = job.work();
                    let width_cap = job.effective_parallel();
                    let per_task = job.per_task();
                    let profile = self.reserve(demand, width_cap, per_task, start, slo, capacity);
                    self.reservations.insert(
                        id,
                        Reservation {
                            origin: start,
                            profile,
                            slo,
                        },
                    );
                }
            }
        }
    }

    /// Greedy skyline placement: one task at a time into the least-loaded
    /// slot of `[start, slo)` that still has headroom; once nothing fits,
    /// remaining demand piles onto the least-loaded slots regardless
    /// (over-subscription — Morpheus would reject or defer, which also
    /// misses deadlines).
    fn reserve(
        &mut self,
        demand: u64,
        width_cap: u64,
        per_task: ResourceVec,
        start: u64,
        slo: u64,
        capacity: ResourceVec,
    ) -> Vec<u64> {
        let end = slo.max(start + 1);
        let len = (end - start) as usize;
        let mut profile = vec![0u64; len];
        for _ in 0..demand {
            let mut best: Option<(usize, f64)> = None;
            for (off, reserved_tasks) in profile.iter().enumerate() {
                if *reserved_tasks >= width_cap {
                    continue;
                }
                let slot = start + off as u64;
                let slot_capacity = self.cluster.capacity_at(slot).min(&capacity);
                let slot_load = *self.skyline_at(slot);
                let fits = (slot_load + per_task).fits_within(&slot_capacity);
                let ratio =
                    slot_load.max_normalized_by(&slot_capacity) + if fits { 0.0 } else { 2.0 };
                if best.is_none_or(|(_, b)| ratio < b) {
                    best = Some((off, ratio));
                }
            }
            let Some((off, _)) = best else {
                // Width cap saturates the whole window: dump the remainder
                // evenly (will run late).
                break;
            };
            profile[off] += 1;
            *self.skyline_at(start + off as u64) += per_task;
        }
        let placed: u64 = profile.iter().sum();
        let mut leftover = demand - placed;
        let mut off = 0usize;
        while leftover > 0 {
            profile[off % len] += 1;
            leftover -= 1;
            off += 1;
        }
        profile
    }
}

impl Scheduler for MorpheusScheduler {
    fn name(&self) -> &str {
        "Morpheus"
    }

    fn decision_tag(&self) -> &'static str {
        "reservation-backfill"
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        self.absorb_arrivals(state);
        let now = state.now();
        let jobs = state.runnable_jobs();
        let mut filler = SlotFiller::new(state.capacity_now());

        // 1. Deadline jobs draw down their reservation backlog (reserved
        //    through now, minus work already done).
        let mut reserved_jobs: Vec<(&JobView, u64)> = Vec::new();
        for job in jobs.iter().filter(|j| !j.is_adhoc()) {
            if let Some(res) = self.reservations.get(&job.id) {
                let backlog = res.cumulative_through(now).saturating_sub(job.done_work);
                // Past the SLO, the whole remaining reservation is overdue.
                let want = if now >= res.slo {
                    res.total().saturating_sub(job.done_work)
                } else {
                    backlog
                };
                if want > 0 {
                    reserved_jobs.push((job, want));
                }
            }
        }
        reserved_jobs.sort_by_key(|(job, _)| (self.reservations[&job.id].slo, job.id));
        for (job, want) in reserved_jobs {
            filler.grant(job, want);
        }

        // 2. Ad-hoc jobs take the leftovers, FIFO.
        filler.greedy_fill(jobs.iter().filter(|j| j.is_adhoc()));

        // 3. Work conservation: deadline jobs may run ahead of reservation.
        filler.greedy_fill(jobs.iter().filter(|j| !j.is_adhoc()));
        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, WorkflowBuilder};
    use flowtime_sim::prelude::*;

    fn cluster(cores: u64) -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([cores, cores * 1024]), 10.0)
    }

    fn spec(tasks: u64) -> JobSpec {
        JobSpec::new("j", tasks, 1, ResourceVec::new([1, 1024]))
    }

    #[test]
    fn reservations_meet_loose_deadlines() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a = b.add_job(spec(8));
        let c = b.add_job(spec(8));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 60).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        let mut m = MorpheusScheduler::new(cluster(4));
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut m)
            .unwrap();
        assert_eq!(out.metrics.workflow_deadline_misses(), 0);
    }

    #[test]
    fn reservation_spreading_leaves_room_for_adhoc() {
        // Workflow with a loose deadline: its reservation spreads thin, so
        // a small ad-hoc job gets immediate service.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(spec(40));
        let wf = b.window(0, 40).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        wl.adhoc.push(AdhocSubmission::new(spec(4), 0));
        let mut m = MorpheusScheduler::new(cluster(4));
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut m)
            .unwrap();
        let adhoc = out.metrics.adhoc_jobs().next().unwrap();
        assert!(
            adhoc.turnaround_slots() <= 3,
            "turnaround {}",
            adhoc.turnaround_slots()
        );
    }

    #[test]
    fn uniform_slo_spacing_hurts_demand_skewed_workflows() {
        // Fork-join where the middle level carries almost all the demand:
        // uniform SLO spacing (1/3 each) under-provisions the middle —
        // exactly the failure mode FlowTime's demand decomposition fixes.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fj");
        let head = b.add_job(spec(4));
        let mids: Vec<_> = (0..6)
            .map(|_| b.add_job(spec(40).with_max_parallel(8)))
            .collect();
        let tail = b.add_job(spec(4));
        for &mid in &mids {
            b.add_dep(head, mid).unwrap();
            b.add_dep(mid, tail).unwrap();
        }
        // Middle needs 240 task-slots; at 12 cores that is 20 slots minimum,
        // but uniform spacing grants it only ~10 of the 30-slot window.
        let wf = b.window(0, 30).build().unwrap();
        let milestones = vec![10, 20, 20, 20, 20, 20, 20, 30];
        let sub = WorkflowSubmission::new(wf).with_job_deadlines(milestones);
        let mut wl = SimWorkload::default();
        wl.workflows.push(sub);
        let mut m = MorpheusScheduler::new(cluster(12));
        let out = Engine::new(cluster(12), wl, 1000)
            .unwrap()
            .run(&mut m)
            .unwrap();
        // The middle jobs blow through their inferred milestone.
        assert!(out.metrics.job_deadline_misses() > 0);
    }
}
