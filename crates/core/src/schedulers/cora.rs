//! CORA-like baseline (Huang et al., INFOCOM 2015).
//!
//! CORA schedules cloud jobs by minimizing the maximum of per-job utility
//! functions. Following the paper's comparison setup (Section VII-A:
//! "deadline-critical" and "deadline-sensitive" job types with default
//! utilities), our reproduction models it as utility water-filling:
//!
//! * **deadline-critical** (workflow) jobs carry a *required rate* — the
//!   remaining estimated work divided by the slots left to their deadline.
//!   Per-job deadlines come from the traditional critical-path
//!   decomposition (CORA has no demand-aware decomposition — that is
//!   FlowTime's contribution).
//! * **deadline-sensitive** (ad-hoc) jobs accrue utility with service;
//!   their marginal utility decays with allocated width.
//!
//! Each slot, capacity goes one task at a time to the job with the worst
//! current utility, interleaving both classes — hence CORA's "moderate
//! performance across the board" in Fig. 4: it neither prioritizes
//! deadlines as hard as EDF nor serves ad-hoc jobs as well as Fair.

use super::util::SlotFiller;
use crate::decompose::{self, DecomposeConfig, Decomposer};
use flowtime_dag::{JobId, WorkflowId};
use flowtime_sim::{Allocation, ClusterConfig, JobView, Scheduler, SimState};
use std::collections::{HashMap, HashSet};

/// The CORA-like utility scheduler.
pub struct CoraScheduler {
    cluster: ClusterConfig,
    /// Per-job deadlines from the traditional decomposition.
    deadlines: HashMap<JobId, u64>,
    seen_workflows: HashSet<WorkflowId>,
}

impl CoraScheduler {
    /// Creates the scheduler.
    pub fn new(cluster: ClusterConfig) -> Self {
        CoraScheduler {
            cluster,
            deadlines: HashMap::new(),
            seen_workflows: HashSet::new(),
        }
    }

    fn absorb_arrivals(&mut self, state: &SimState) {
        for wf in state.workflows() {
            if !self.seen_workflows.insert(wf.id()) {
                continue;
            }
            let cfg = DecomposeConfig::new(self.cluster.capacity())
                .with_decomposer(Decomposer::CriticalPath);
            let deadlines: Vec<u64> = match decompose::decompose(wf.workflow, &cfg) {
                Ok(d) => d.job_deadlines(),
                Err(_) => vec![wf.workflow.deadline_slot(); wf.workflow.len()],
            };
            for (node, &dl) in deadlines.iter().enumerate() {
                self.deadlines.insert(wf.job_ids[node], dl);
            }
        }
    }

    /// Utility deficit of a job given `granted` tasks this slot: higher
    /// means more deserving of the next task.
    fn deficit(&self, job: &JobView, granted: u64, now: u64) -> f64 {
        if job.is_adhoc() {
            // Deadline-sensitive: diminishing returns in width, growing
            // with time waited.
            let waited = (now - job.arrival_slot) as f64;
            (1.0 + waited / 10.0) / (1.0 + granted as f64)
        } else {
            let deadline = self.deadlines.get(&job.id).copied().unwrap_or(u64::MAX);
            let slots_left = deadline.saturating_sub(now).max(1) as f64;
            let remaining = job.estimated_remaining.unwrap_or(0) as f64;
            let required = remaining / slots_left;
            // Deadline-critical: sharply deficient below the required rate,
            // and still hungry above it — CORA's utility is the job's
            // *completion time*, so a deadline job keeps bidding for width
            // until it runs at full parallelism, crowding ad-hoc jobs to a
            // degree between Fair's and EDF's (the paper's "moderate
            // performance across the board").
            let overdue_boost = if deadline <= now { 4.0 } else { 1.0 };
            let rate_deficit =
                ((required - granted as f64) / required.max(1.0)).max(0.0) * 2.0 * overdue_boost;
            let width = job.max_tasks_this_slot.max(1) as f64;
            let speed_hunger = 0.9 * (1.0 - granted as f64 / width);
            rate_deficit.max(speed_hunger.max(0.0))
        }
    }
}

impl Scheduler for CoraScheduler {
    fn name(&self) -> &str {
        "CORA"
    }

    fn decision_tag(&self) -> &'static str {
        "utility-waterfill"
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        self.absorb_arrivals(state);
        let now = state.now();
        let jobs = state.runnable_jobs();
        let mut filler = SlotFiller::new(state.capacity_now());
        // Water-fill by utility deficit, one task at a time.
        loop {
            let best = jobs
                .iter()
                .filter(|j| filler.headroom(j) > 0)
                .map(|j| (j, self.deficit(j, filler.granted(j.id), now)))
                .filter(|&(_, d)| d > 0.0)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let Some((job, _)) = best else {
                break;
            };
            if filler.grant(job, 1) == 0 {
                break;
            }
        }
        // Residual work conservation: fill anything left in arrival order.
        filler.greedy_fill(jobs.iter());
        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};
    use flowtime_sim::prelude::*;

    fn cluster(cores: u64) -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([cores, cores * 1024]), 10.0)
    }

    fn spec(tasks: u64) -> JobSpec {
        JobSpec::new("j", tasks, 1, ResourceVec::new([1, 1024]))
    }

    #[test]
    fn interleaves_deadline_and_adhoc_work() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(spec(40));
        let wf = b.window(0, 20).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        wl.adhoc.push(AdhocSubmission::new(spec(8), 0));
        let mut cora = CoraScheduler::new(cluster(4));
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut cora)
            .unwrap();
        // Deadline job needs rate 2/slot of 4 cores: ad-hoc gets service
        // well before the workflow finishes.
        let adhoc = out.metrics.adhoc_jobs().next().unwrap();
        let wf_done = out.metrics.workflows[0].completion_slot;
        assert!(adhoc.completion_slot < wf_done);
        assert_eq!(out.metrics.workflow_deadline_misses(), 0);
    }

    #[test]
    fn meets_loose_deadline() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let a = b.add_job(spec(8));
        let c = b.add_job(spec(8));
        b.add_dep(a, c).unwrap();
        let wf = b.window(0, 100).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        let mut cora = CoraScheduler::new(cluster(4));
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut cora)
            .unwrap();
        assert_eq!(out.metrics.workflow_deadline_misses(), 0);
    }
}
