//! The FlowTime scheduler (the paper's contribution, Sections IV–VI).

use super::util::SlotFiller;
use crate::decompose::{self, slack::slacked_windows, DecomposeConfig, Decomposer, JobWindow};
use crate::lp_sched::{
    backend, cache::PlanCache, LevelingProblem, Plan, PlanJob, SolveStats, SolverBackend,
};
use flowtime_dag::{JobId, ResourceVec, WorkflowId};
use flowtime_sim::{Allocation, ClusterConfig, JobView, Scheduler, SimState, SolverTelemetry};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Tuning parameters of [`FlowTimeScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowTimeConfig {
    /// Deadline slack in slots (paper default: 60 s = 6 slots of 10 s).
    /// Zero reproduces the `FlowTime_no_ds` ablation of Fig. 5.
    pub slack_slots: u64,
    /// Which exact solver realizes the lexmin-max placement.
    pub backend: SolverBackend,
    /// Deadline-decomposition strategy (the paper's demand-proportional by
    /// default; critical-path for the ablation).
    pub decomposer: Decomposer,
    /// Re-solve the placement LP every slot instead of only on
    /// arrival/completion events. Slower, occasionally tighter plans.
    pub replan_every_slot: bool,
    /// Minimum slots between completion-triggered re-plans (arrivals and
    /// plan exhaustion always re-plan immediately). Batching completion
    /// events bounds scheduling overhead on long horizons; stale plans are
    /// conservative, because completed jobs' leftover planned capacity is
    /// simply released to ad-hoc jobs and top-ups.
    pub replan_interval: u64,
    /// Hard cap on the planning horizon, in slots.
    pub max_horizon: usize,
    /// Reuse the previous plan when the leveling problem is unchanged or a
    /// pure elapsed-time relabel of it (see [`crate::lp_sched::cache`]).
    /// Never changes any plan — only skips provably redundant solves — so
    /// disabling it is purely diagnostic.
    pub plan_cache: bool,
}

impl Default for FlowTimeConfig {
    fn default() -> Self {
        FlowTimeConfig {
            slack_slots: 6,
            backend: SolverBackend::default(),
            decomposer: Decomposer::ResourceDemand,
            replan_every_slot: false,
            replan_interval: 8,
            max_horizon: 4096,
            plan_cache: true,
        }
    }
}

/// FlowTime: decompose workflow deadlines into per-job windows (Section
/// IV), then place all pending deadline jobs over the horizon by
/// lexicographically minimizing the peak normalized load (Section V). The
/// flattened deadline profile leaves maximal residual capacity in every
/// slot, which ad-hoc jobs share fairly; any capacity still left tops up
/// deadline jobs (work conservation).
///
/// Re-planning is event-driven (workflow arrivals, deadline-job
/// completions, plan exhaustion from under-estimated runtimes), matching
/// the paper's "triggered whenever a task/job completes" design with the
/// LP's sub-second latency budget (Fig. 7).
pub struct FlowTimeScheduler {
    cluster: ClusterConfig,
    config: FlowTimeConfig,
    /// Slacked scheduling windows per engine job id.
    windows: HashMap<JobId, JobWindow>,
    /// Unslacked milestone deadlines per engine job id (the true deadlines
    /// used for the overdue-priority check).
    milestones: HashMap<JobId, u64>,
    seen_workflows: HashSet<WorkflowId>,
    /// Current plan and the absolute slot it starts at.
    plan: Option<(u64, Plan)>,
    /// Suffix sums of planned tasks per job (`[rel] = tasks planned from
    /// relative slot rel onward`), for O(1) plan-exhaustion checks.
    plan_suffix: HashMap<JobId, Vec<u64>>,
    /// Count of completed deadline jobs when the plan was built.
    planned_completions: usize,
    /// True when the last solve failed (infeasible windows): fall back to
    /// EDF-style greedy until the next successful replan.
    degraded: bool,
    last_replan_slot: u64,
    solves: usize,
    /// The conservative capacity regime the current windows were
    /// decomposed under (elementwise minimum of `capacity_at` over the
    /// tracked lookahead). `None` until the first slot.
    capacity_regime: Option<ResourceVec>,
    /// Scheduling deadlines of the pending jobs as of the last replan —
    /// the plan paces against these, so a later window refresh that moves
    /// any of them (capacity churn) invalidates the plan.
    planned_deadlines: HashMap<JobId, u64>,
    cache: PlanCache,
    telemetry: SolverTelemetry,
}

impl FlowTimeScheduler {
    /// Creates a FlowTime scheduler for the given cluster.
    pub fn new(cluster: ClusterConfig, config: FlowTimeConfig) -> Self {
        FlowTimeScheduler {
            cluster,
            config,
            windows: HashMap::new(),
            milestones: HashMap::new(),
            seen_workflows: HashSet::new(),
            plan: None,
            plan_suffix: HashMap::new(),
            planned_completions: 0,
            degraded: false,
            last_replan_slot: 0,
            solves: 0,
            capacity_regime: None,
            planned_deadlines: HashMap::new(),
            cache: PlanCache::new(),
            telemetry: SolverTelemetry::default(),
        }
    }

    /// Number of LP/flow solves performed so far (scheduling-latency
    /// accounting, Fig. 7).
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// The capacity figure deadline decomposition runs against: the
    /// conservative regime when one is tracked, else the nominal capacity.
    fn decompose_capacity(&self) -> ResourceVec {
        self.capacity_regime
            .unwrap_or_else(|| self.cluster.capacity())
    }

    /// (Re-)decomposes one workflow's deadline into job windows and
    /// milestones under the current capacity regime.
    fn decompose_into_windows(&mut self, wf: &flowtime_sim::WorkflowView<'_>) {
        let cfg =
            DecomposeConfig::new(self.decompose_capacity()).with_decomposer(self.config.decomposer);
        match decompose::decompose(wf.workflow, &cfg) {
            Ok(d) => {
                let windows = slacked_windows(&d, self.config.slack_slots);
                for ((node, w), milestone) in windows.into_iter().enumerate().zip(d.job_deadlines())
                {
                    self.windows.insert(wf.job_ids[node], w);
                    self.milestones.insert(wf.job_ids[node], milestone);
                }
            }
            Err(_) => {
                // Window tighter than the DAG depth: best effort — every
                // job gets the whole workflow window.
                let w = JobWindow {
                    start: wf.workflow.submit_slot(),
                    deadline: wf.workflow.deadline_slot(),
                };
                for node in 0..wf.workflow.len() {
                    self.windows.insert(wf.job_ids[node], w);
                    self.milestones.insert(wf.job_ids[node], w.deadline);
                }
            }
        }
    }

    /// Recomputes the conservative capacity regime over the tracked
    /// lookahead and re-decomposes live workflows when it changed.
    ///
    /// Capacity churn is statically known through
    /// [`ClusterConfig::capacity_at`] — the placement LP already routes
    /// around it slot by slot — but deadline *decomposition* runs against
    /// a single capacity figure, so windows decomposed at arrival go stale
    /// when churn shrinks (or restores) the capacity a workflow's
    /// remaining window can count on. The regime is the elementwise
    /// minimum of `capacity_at` from `now` to the furthest tracked
    /// deadline; when it changes, every incomplete workflow's windows and
    /// milestones are re-decomposed under it, and [`Self::needs_replan`]
    /// picks up any deadline that moved via
    /// [`Self::planned_deadlines`].
    fn refresh_regime(&mut self, state: &SimState) {
        let now = state.now();
        let far = state
            .workflows()
            .iter()
            .filter(|wf| !wf.completed.iter().all(|&c| c))
            .map(|wf| wf.workflow.deadline_slot())
            .max()
            .unwrap_or(now)
            .clamp(now + 1, now + self.config.max_horizon as u64);
        let mut regime = self.cluster.capacity_at(now);
        for t in (now + 1)..far {
            regime = regime.min(&self.cluster.capacity_at(t));
        }
        if self.capacity_regime == Some(regime) {
            return;
        }
        let first = self.capacity_regime.is_none();
        self.capacity_regime = Some(regime);
        if first {
            // Nothing was decomposed under an older regime yet; arrivals
            // from this slot on use the fresh one.
            return;
        }
        for wf in state.workflows() {
            if self.seen_workflows.contains(&wf.id()) && !wf.completed.iter().all(|&c| c) {
                self.decompose_into_windows(&wf);
            }
        }
    }

    /// Decomposes newly arrived workflows; returns true if any arrived.
    fn absorb_arrivals(&mut self, state: &SimState) -> bool {
        let mut dirty = false;
        for wf in state.workflows() {
            if !self.seen_workflows.insert(wf.id()) {
                continue;
            }
            dirty = true;
            self.decompose_into_windows(&wf);
        }
        dirty
    }

    /// Pending (incomplete, arrived) deadline jobs.
    fn pending_deadline_jobs(state: &SimState) -> Vec<JobView> {
        state
            .visible_jobs()
            .into_iter()
            .filter(|j| !j.is_adhoc())
            .collect()
    }

    fn needs_replan(&self, state: &SimState, pending: &[JobView]) -> bool {
        if self.config.replan_every_slot {
            return true;
        }
        let Some((origin, _)) = &self.plan else {
            return !pending.is_empty();
        };
        // A tracked pending job's scheduling deadline moved since the plan
        // was built (capacity-churn window refresh shrank or restored its
        // feasible window): the plan paces against stale windows, so
        // rebuild immediately rather than waiting for the completion
        // batch interval.
        for job in pending {
            if let (Some(w), Some(&planned)) = (
                self.windows.get(&job.id),
                self.planned_deadlines.get(&job.id),
            ) {
                if w.deadline != planned {
                    return true;
                }
            }
        }
        let completions = state
            .workflows()
            .iter()
            .flat_map(|w| w.completed.clone())
            .filter(|&c| c)
            .count();
        if completions != self.planned_completions
            && state.now() >= self.last_replan_slot + self.config.replan_interval
        {
            return true;
        }
        // Plan exhaustion: a runnable deadline job with work left but no
        // remaining planned tasks (estimation under-run or parent delay).
        let now = state.now();
        let rel = (now - origin) as usize;
        for job in pending {
            if job.ready_slot.is_some_and(|r| r <= now) {
                let planned_left = self
                    .plan_suffix
                    .get(&job.id)
                    .and_then(|sfx| sfx.get(rel).copied())
                    .unwrap_or(0);
                if planned_left == 0 && job.estimated_remaining.unwrap_or(0) > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Builds the leveling problem for the pending jobs as of `now`.
    fn build_problem(&self, state: &SimState, pending: &[JobView]) -> LevelingProblem {
        let now = state.now();
        let default_window = JobWindow {
            start: now,
            deadline: now + 1,
        };
        // Horizon: cover the latest scheduling deadline of pending jobs.
        let mut horizon = 1usize;
        let mut jobs = Vec::with_capacity(pending.len());
        for job in pending {
            let w = self.windows.get(&job.id).copied().unwrap_or(default_window);
            let demand = job.estimated_remaining.unwrap_or(0);
            if demand == 0 {
                continue;
            }
            let cap = job.max_tasks_this_slot.max(1);
            // Relative window: starts at the decomposed start (or now), ends
            // at the slacked deadline — widened if overdue so each job
            // retains a feasible window. Feasible length is judged against
            // what the *cluster* can actually host per slot.
            let cluster_width = job.per_task.times_fitting(&self.cluster.capacity()).max(1);
            let start_rel = w.start.saturating_sub(now) as usize;
            let min_len = demand.div_ceil(cap.min(cluster_width)) as usize;
            let end_rel = (w.deadline.saturating_sub(now) as usize).max(start_rel + min_len);
            jobs.push(PlanJob {
                id: job.id,
                window: (start_rel, end_rel),
                demand,
                per_task: job.per_task,
                per_slot_cap: Some(cap),
            });
            horizon = horizon.max(end_rel);
        }
        let horizon = horizon.min(self.config.max_horizon);
        for job in &mut jobs {
            job.window.1 = job.window.1.min(horizon);
            job.window.0 = job.window.0.min(job.window.1.saturating_sub(1));
        }
        LevelingProblem {
            // Per-slot caps honour time-varying capacity windows (Eq. (4)).
            slot_caps: (0..horizon as u64)
                .map(|t| self.cluster.capacity_at(now + t))
                .collect(),
            jobs,
        }
    }

    /// Folds one replan's solver counters into the run telemetry.
    fn absorb_stats(&mut self, stats: &SolveStats) {
        let t = &mut self.telemetry;
        t.cold_solves += stats.cold_solves;
        t.warm_solves += stats.warm_solves;
        t.warm_fallbacks += stats.warm_fallbacks;
        t.cold_pivots += stats.cold_pivots;
        t.warm_pivots += stats.warm_pivots;
        t.cache_hits_exact += stats.cache_hits_exact;
        t.cache_hits_shift += stats.cache_hits_shift;
        t.cache_misses += stats.cache_misses;
        t.flow_solves += stats.flow_solves;
    }

    fn replan(&mut self, state: &SimState, pending: &[JobView]) {
        let problem = self.build_problem(state, pending);
        self.solves += 1;
        self.telemetry.replans += 1;
        self.last_replan_slot = state.now();
        let started = Instant::now();
        let mut stats = SolveStats::default();
        let cache = if self.config.plan_cache {
            Some(&mut self.cache)
        } else {
            None
        };
        let solved = backend::solve_with(&problem, self.config.backend, cache, &mut stats);
        self.telemetry.replan_wall_nanos += started.elapsed().as_nanos() as u64;
        self.absorb_stats(&stats);
        match solved {
            Ok(plan) => {
                self.plan_suffix = plan
                    .tasks
                    .iter()
                    .map(|(&id, per_slot)| {
                        let mut sfx = vec![0u64; per_slot.len() + 1];
                        for t in (0..per_slot.len()).rev() {
                            sfx[t] = sfx[t + 1] + per_slot[t];
                        }
                        (id, sfx)
                    })
                    .collect();
                self.plan = Some((state.now(), plan));
                self.degraded = false;
            }
            Err(_) => {
                // Infeasible decomposition (e.g. badly under-estimated or
                // overloaded): degrade to EDF-greedy until feasible again.
                self.plan = None;
                self.plan_suffix.clear();
                self.degraded = true;
                self.telemetry.degraded_replans += 1;
            }
        }
        self.planned_deadlines = pending
            .iter()
            .filter_map(|j| self.windows.get(&j.id).map(|w| (j.id, w.deadline)))
            .collect();
        self.planned_completions = state
            .workflows()
            .iter()
            .flat_map(|w| w.completed.clone())
            .filter(|&c| c)
            .count();
    }
}

impl Scheduler for FlowTimeScheduler {
    fn name(&self) -> &str {
        "FlowTime"
    }

    fn telemetry(&self) -> Option<SolverTelemetry> {
        Some(self.telemetry.clone())
    }

    fn decision_tag(&self) -> &'static str {
        if self.degraded {
            "degraded-greedy"
        } else {
            "lp-plan"
        }
    }

    fn on_failure(&mut self, _state: &SimState, job: JobId, _attempt: u32) {
        // A killed attempt reverts the job's progress to zero, so a plan
        // paced against the old `done_work` now under-provisions it. Drop
        // the plan: the next slot replans through the warm-started cache
        // (the windows and milestones survive — only the pacing is stale).
        // Ad-hoc failures don't touch the LP, which never plans them.
        if self.windows.contains_key(&job) {
            self.plan = None;
            self.plan_suffix.clear();
            self.planned_deadlines.clear();
        }
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        self.refresh_regime(state);
        let arrived = self.absorb_arrivals(state);
        let pending = Self::pending_deadline_jobs(state);
        if arrived || self.needs_replan(state, &pending) {
            self.replan(state, &pending);
        }

        let now = state.now();
        let runnable = state.runnable_jobs();
        let mut filler = SlotFiller::new(state.capacity_now());

        // 1. Deadline jobs draw their planned allocation for this slot.
        if let Some((origin, plan)) = &self.plan {
            let rel = (now - origin) as usize;
            for job in runnable.iter().filter(|j| !j.is_adhoc()) {
                let planned = plan.tasks_at(job.id, rel);
                if planned > 0 {
                    filler.grant(job, planned);
                }
            }
        } else if self.degraded {
            // EDF-greedy fallback: most urgent scheduling deadline first.
            let mut urgent: Vec<&JobView> = runnable.iter().filter(|j| !j.is_adhoc()).collect();
            urgent.sort_by_key(|j| {
                (
                    self.windows.get(&j.id).map_or(u64::MAX, |w| w.deadline),
                    j.id,
                )
            });
            filler.greedy_fill(urgent);
        }

        // 2. Deadline jobs that are at or past their *slacked* scheduling
        //    deadline (estimation under-runs, delayed parents) take
        //    priority over ad-hoc work: meeting deadlines is the primary
        //    objective, and firing at the slacked deadline — slack_slots
        //    before the true milestone — is precisely the recovery window
        //    the slack buys (Section VII-B.2).
        let mut overdue: Vec<&JobView> = runnable
            .iter()
            .filter(|j| {
                !j.is_adhoc()
                    && self
                        .windows
                        .get(&j.id)
                        .is_some_and(|w| w.deadline <= now + 1)
            })
            .collect();
        overdue.sort_by_key(|j| {
            (
                self.milestones.get(&j.id).copied().unwrap_or(u64::MAX),
                j.id,
            )
        });
        filler.greedy_fill(overdue);

        // 3. Ad-hoc jobs share the residual capacity fairly — the whole
        //    point of flattening the deadline profile.
        let adhoc: Vec<&JobView> = runnable.iter().filter(|j| j.is_adhoc()).collect();
        filler.fair_fill(&adhoc);

        // 4. Work conservation: leftover capacity tops up deadline jobs
        //    (finishing early is free; the profile constraint only matters
        //    while there is competition, which step 2 already resolved).
        let mut by_deadline: Vec<&JobView> = runnable.iter().filter(|j| !j.is_adhoc()).collect();
        by_deadline.sort_by_key(|j| {
            (
                self.windows.get(&j.id).map_or(u64::MAX, |w| w.deadline),
                j.id,
            )
        });
        filler.greedy_fill(by_deadline);

        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder};
    use flowtime_sim::prelude::*;

    fn cluster(cores: u64) -> ClusterConfig {
        ClusterConfig::new(ResourceVec::new([cores, cores * 1024]), 10.0)
    }

    fn spec(tasks: u64, dur: u64) -> JobSpec {
        JobSpec::new("j", tasks, dur, ResourceVec::new([1, 1024]))
    }

    /// The paper's Fig. 1 motivating example, scaled 1:10 (slots of 10 time
    /// units): W1 = two chained jobs each needing the *full* cluster for 10
    /// slots, deadline 20; A1 arrives at 0, A2 at 10, each needing half the
    /// cluster for 10 slots at full width... here: each ad-hoc needs 10
    /// slots of half the cluster.
    #[test]
    fn motivating_example_beats_edf_turnaround() {
        let cores = 4u64;
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w1");
        // Each job: work 40 task-slots = full cluster (4) x 10 slots, but
        // can also run at width 2 for 20 slots.
        let j1 = b.add_job(spec(40, 1));
        let j2 = b.add_job(spec(40, 1));
        b.add_dep(j1, j2).unwrap();
        let wf = b.window(0, 40).build().unwrap();

        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        // A1 at slot 0 and A2 at slot 10, each 20 task-slots (half-cluster
        // wide for 10 slots).
        wl.adhoc
            .push(AdhocSubmission::new(spec(20, 1).with_max_parallel(2), 0));
        wl.adhoc
            .push(AdhocSubmission::new(spec(20, 1).with_max_parallel(2), 10));

        let mut ft = FlowTimeScheduler::new(
            cluster(cores),
            FlowTimeConfig {
                slack_slots: 0,
                ..Default::default()
            },
        );
        let out = Engine::new(cluster(cores), wl, 1000)
            .unwrap()
            .run(&mut ft)
            .unwrap();
        // Deadline met...
        assert_eq!(out.metrics.workflow_deadline_misses(), 0);
        // ...and ad-hoc turnaround is near-optimal (each runs immediately
        // at its full width of 2): ~10 slots each, far below the EDF ~15
        // average (A1 waits 10 under EDF).
        let avg = out.metrics.avg_adhoc_turnaround_slots().unwrap();
        assert!(avg <= 11.0, "avg adhoc turnaround {avg}");
    }

    #[test]
    fn meets_deadlines_under_estimation_overrun_with_slack() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let j1 = b.add_job(spec(16, 1));
        let j2 = b.add_job(spec(16, 1));
        b.add_dep(j1, j2).unwrap();
        let wf = b.window(0, 30).build().unwrap();
        // Reality is 25% more work than estimated.
        let sub = WorkflowSubmission::new(wf)
            .with_actual_work(vec![20, 20])
            .with_job_deadlines(vec![15, 30]);
        let mut wl = SimWorkload::default();
        wl.workflows.push(sub);
        let mut ft = FlowTimeScheduler::new(cluster(4), FlowTimeConfig::default());
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut ft)
            .unwrap();
        assert_eq!(out.metrics.workflow_deadline_misses(), 0);
        assert!(ft.solves() >= 2, "overrun must trigger replanning");
    }

    #[test]
    fn work_conservation_when_no_adhoc() {
        // A single loose-deadline workflow on an idle cluster should not
        // dawdle: leftover capacity tops it up and it finishes early.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(spec(16, 1));
        let wf = b.window(0, 100).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        let mut ft = FlowTimeScheduler::new(cluster(8), FlowTimeConfig::default());
        let out = Engine::new(cluster(8), wl, 1000)
            .unwrap()
            .run(&mut ft)
            .unwrap();
        // 16 units at width 8 -> 2 slots, despite the 100-slot window.
        assert_eq!(out.metrics.jobs[0].completion_slot, 2);
    }

    #[test]
    fn degrades_gracefully_when_windows_infeasible() {
        // Demand that cannot fit the window at all: FlowTime must still
        // finish the work (late), not deadlock.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        b.add_job(spec(100, 1).with_max_parallel(4));
        let wf = b.window(0, 5).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows.push(WorkflowSubmission::new(wf));
        let mut ft = FlowTimeScheduler::new(cluster(4), FlowTimeConfig::default());
        let out = Engine::new(cluster(4), wl, 1000)
            .unwrap()
            .run(&mut ft)
            .unwrap();
        assert_eq!(out.metrics.completed_jobs(), 1);
        // 100 units at width 4 = 25 slots; deadline 5 is hopeless.
        assert_eq!(out.metrics.jobs[0].completion_slot, 25);
    }

    #[test]
    fn plan_cache_answers_waiting_replans_without_changing_behavior() {
        // j1 is over-estimated (finishes early) while j2's decomposed
        // window starts later, and a saturating ad-hoc job absorbs every
        // residual slot, so the every-slot replans between j1's completion
        // and j2's window start rebuild pure elapsed-time relabels of the
        // same leveling problem. The cache must answer those as shift hits
        // — and must not change a single metric relative to running with
        // the cache disabled.
        let build = || {
            let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
            let j1 = b.add_job(spec(8, 1));
            let j2 = b.add_job(spec(12, 1));
            b.add_dep(j1, j2).unwrap();
            let wf = b.window(0, 20).build().unwrap();
            let mut wl = SimWorkload::default();
            wl.workflows
                .push(WorkflowSubmission::new(wf).with_actual_work(vec![4, 12]));
            wl.adhoc.push(AdhocSubmission::new(spec(400, 1), 0));
            wl
        };
        let run = |plan_cache: bool| {
            let cfg = FlowTimeConfig {
                slack_slots: 0,
                replan_every_slot: true,
                plan_cache,
                ..Default::default()
            };
            let mut ft = FlowTimeScheduler::new(cluster(4), cfg);
            Engine::new(cluster(4), build(), 1000)
                .unwrap()
                .run(&mut ft)
                .unwrap()
        };
        let cached = run(true);
        let uncached = run(false);
        assert_eq!(cached.metrics, uncached.metrics);
        let on = cached.solver_telemetry.as_ref().unwrap();
        let off = uncached.solver_telemetry.as_ref().unwrap();
        assert!(on.cache_hits_shift >= 1, "no shift hits: {}", on.summary());
        assert_eq!(off.cache_hits(), 0);
        assert_eq!(off.cache_misses, 0, "disabled cache must not be probed");
        assert_eq!(on.replans, off.replans);
    }

    #[test]
    fn replans_immediately_when_churn_moves_window_deadlines() {
        // Capacity churn: the cluster runs at half capacity during slots
        // 0..12, restoring to full afterwards. Deadline decomposition under
        // the conservative regime gives width-constrained j1 a long window
        // (its min-runtime doubles at half capacity), pushing serial j2's
        // window start late. When the churn leaves the lookahead at slot
        // 12, re-decomposition under full capacity moves j1's deadline
        // *earlier* and j2's start with it — and j2 (which really needs 14
        // slots at width 1, not the estimated 10) only meets the workflow
        // deadline if the scheduler acts on that moved deadline right away.
        // Pre-fix, `needs_replan` ignored deadline changes without an
        // arrival, so the stale plan kept pacing j1 against the old window
        // and started j2 too late to finish by slot 30. The saturating
        // ad-hoc job keeps work-conservation top-ups from hiding the stale
        // start; the long replan interval models the event-driven default
        // where no completion batch happens to rescue the plan in time.
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
        let j1 = b.add_job(spec(24, 1));
        let j2 = b.add_job(spec(10, 1).with_max_parallel(1));
        b.add_dep(j1, j2).unwrap();
        let wf = b.window(0, 30).build().unwrap();
        let mut wl = SimWorkload::default();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_actual_work(vec![24, 14]));
        wl.adhoc.push(AdhocSubmission::new(spec(400, 1), 0));
        let churned = cluster(4).with_capacity_window(0, 12, ResourceVec::new([2, 2 * 1024]));
        let cfg = FlowTimeConfig {
            slack_slots: 0,
            replan_interval: 64,
            ..Default::default()
        };
        let mut ft = FlowTimeScheduler::new(churned.clone(), cfg);
        let out = Engine::new(churned, wl, 1000)
            .unwrap()
            .run(&mut ft)
            .unwrap();
        assert_eq!(
            out.metrics.workflow_deadline_misses(),
            0,
            "completions: {:?}",
            out.metrics
                .jobs
                .iter()
                .map(|j| j.completion_slot)
                .collect::<Vec<_>>()
        );
        assert!(
            ft.solves() >= 2,
            "the regime change at slot 12 must trigger a replan"
        );
    }

    #[test]
    fn both_backends_schedule_identically_shaped_workloads() {
        for backend in [
            SolverBackend::ParametricFlow,
            SolverBackend::Simplex { lex_rounds: 4 },
        ] {
            let mut b = WorkflowBuilder::new(WorkflowId::new(1), "w");
            let a = b.add_job(spec(12, 1));
            let c = b.add_job(spec(12, 1));
            b.add_dep(a, c).unwrap();
            let wf = b.window(0, 40).build().unwrap();
            let mut wl = SimWorkload::default();
            wl.workflows.push(WorkflowSubmission::new(wf));
            wl.adhoc.push(AdhocSubmission::new(spec(8, 1), 2));
            let cfg = FlowTimeConfig {
                backend,
                ..Default::default()
            };
            let mut ft = FlowTimeScheduler::new(cluster(4), cfg);
            let out = Engine::new(cluster(4), wl, 1000)
                .unwrap()
                .run(&mut ft)
                .unwrap();
            assert_eq!(out.metrics.workflow_deadline_misses(), 0, "{backend:?}");
        }
    }
}
