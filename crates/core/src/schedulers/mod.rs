//! Scheduling algorithms: FlowTime and the paper's baselines.
//!
//! All schedulers implement [`flowtime_sim::Scheduler`] and are compared in
//! the paper's evaluation (Section VII):
//!
//! | Scheduler | Paper role | Deadline knowledge | Ad-hoc treatment |
//! |-----------|------------|--------------------|------------------|
//! | [`FlowTimeScheduler`] | the contribution | decomposed per-job windows, LP leveling | residual capacity, fair-shared |
//! | [`EdfScheduler`] | baseline | workflow deadlines, earliest first | starved while deadline work exists |
//! | [`FifoScheduler`] | baseline | none | arrival order with everything else |
//! | [`FairScheduler`] | baseline | none | max-min fair share with everything else |
//! | [`CoraScheduler`] | baseline (CORA, INFOCOM'15) | per-job deadlines (traditional decomposition), utility water-filling | deadline-sensitive utility share |
//! | [`MorpheusScheduler`] | baseline (Morpheus, OSDI'16) | per-job SLOs inferred from history, skyline reservations | leftover, FIFO |

mod cora;
mod edf;
mod fair;
mod fifo;
mod flowtime;
mod morpheus;
pub(crate) mod util;

pub use cora::CoraScheduler;
pub use edf::EdfScheduler;
pub use fair::FairScheduler;
pub use fifo::FifoScheduler;
pub use flowtime::{FlowTimeConfig, FlowTimeScheduler};
pub use morpheus::MorpheusScheduler;
