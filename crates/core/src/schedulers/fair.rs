//! Fair baseline: max-min fair sharing, deadline-oblivious.

use super::util::SlotFiller;
use flowtime_sim::{Allocation, Scheduler, SimState};

/// The Fair baseline (YARN Fair Scheduler analogue): every runnable job
/// receives an equal share of the cluster by max-min water-filling,
/// regardless of class or deadline. Ad-hoc jobs do well (best baseline
/// turnaround in Fig. 4(c)), deadline jobs miss under contention because
/// urgency buys them nothing.
///
/// # Example
///
/// ```
/// use flowtime::FairScheduler;
/// use flowtime_sim::Scheduler;
/// assert_eq!(FairScheduler::new().name(), "Fair");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FairScheduler {
    _private: (),
}

impl FairScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }
}

impl Scheduler for FairScheduler {
    fn name(&self) -> &str {
        "Fair"
    }

    fn decision_tag(&self) -> &'static str {
        "fair-share"
    }

    fn plan_slot(&mut self, state: &SimState) -> Allocation {
        let jobs = state.runnable_jobs();
        let refs: Vec<&_> = jobs.iter().collect();
        let mut filler = SlotFiller::new(state.capacity_now());
        filler.fair_fill(&refs);
        filler.into_allocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{JobSpec, ResourceVec};
    use flowtime_sim::prelude::*;

    #[test]
    fn splits_capacity_evenly() {
        let mut wl = SimWorkload::default();
        let spec = JobSpec::new("a", 8, 2, ResourceVec::new([1, 1024]));
        wl.adhoc.push(AdhocSubmission::new(spec.clone(), 0));
        wl.adhoc.push(AdhocSubmission::new(spec, 0));
        let cluster = ClusterConfig::new(ResourceVec::new([8, 16384]), 10.0);
        let out = Engine::new(cluster, wl, 100)
            .unwrap()
            .run(&mut FairScheduler::new())
            .unwrap();
        // Each job gets 4 cores: 16 task-slots of work finish in 4 slots,
        // simultaneously.
        let c: Vec<u64> = out.metrics.jobs.iter().map(|j| j.completion_slot).collect();
        assert_eq!(c, vec![4, 4]);
    }
}
