//! Error type for the FlowTime core.

use flowtime_dag::DagError;
use flowtime_flow::FlowError;
use flowtime_lp::LpError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by deadline decomposition and plan construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying DAG was malformed.
    Dag(DagError),
    /// The LP backend failed (infeasible plan, iteration limit, ...).
    Lp(LpError),
    /// The flow backend failed.
    Flow(FlowError),
    /// A workflow window is shorter than one slot per level set, so no
    /// decomposition can assign every job a non-empty window.
    WindowTooTight {
        /// Number of level sets needing at least one slot each.
        level_sets: usize,
        /// The available window in slots.
        window: u64,
    },
    /// A planning request mixed slot horizons inconsistently.
    BadHorizon {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dag(e) => write!(f, "dag error: {e}"),
            CoreError::Lp(e) => write!(f, "lp error: {e}"),
            CoreError::Flow(e) => write!(f, "flow error: {e}"),
            CoreError::WindowTooTight { level_sets, window } => write!(
                f,
                "workflow window of {window} slots cannot cover {level_sets} sequential level sets"
            ),
            CoreError::BadHorizon { reason } => write!(f, "bad planning horizon: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dag(e) => Some(e),
            CoreError::Lp(e) => Some(e),
            CoreError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for CoreError {
    fn from(e: DagError) -> Self {
        CoreError::Dag(e)
    }
}

impl From<LpError> for CoreError {
    fn from(e: LpError) -> Self {
        CoreError::Lp(e)
    }
}

impl From<FlowError> for CoreError {
    fn from(e: FlowError) -> Self {
        CoreError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = DagError::EmptyWorkflow.into();
        assert!(e.to_string().contains("dag error"));
        assert!(e.source().is_some());
        let e: CoreError = LpError::Infeasible.into();
        assert!(e.to_string().contains("lp error"));
        let e: CoreError = FlowError::Infeasible.into();
        assert!(e.to_string().contains("flow error"));
        let e = CoreError::WindowTooTight {
            level_sets: 3,
            window: 2,
        };
        assert!(e.source().is_none());
        assert!(!e.to_string().is_empty());
        assert!(!CoreError::BadHorizon { reason: "x" }.to_string().is_empty());
    }
}
