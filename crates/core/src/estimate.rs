//! History-based runtime estimation for recurring workflows.
//!
//! The paper's information model (Section II-A) assumes recurring
//! workflows come with estimated per-job demands and runtimes; in
//! production those estimates come from *prior runs* (exactly how Morpheus
//! infers its SLOs). This module is that provenance: record each run's
//! actual per-job work, query mean or quantile estimates, and re-spec a
//! workflow template with them.
//!
//! Quantile estimates (`estimate_quantile(0.9)`) are the principled
//! counterpart of the paper's fixed deadline slack: padding the *estimate*
//! instead of (or in addition to) pulling the deadline forward.

use flowtime_dag::{DagError, JobSpec, Workflow, WorkflowBuilder};
use std::collections::HashMap;

/// A sliding window of per-run, per-job actual work samples for recurring
/// workflows, keyed by workflow name.
///
/// # Example
///
/// ```
/// use flowtime::estimate::RunHistory;
/// let mut h = RunHistory::new(5);
/// h.record("nightly", &[100, 210]);
/// h.record("nightly", &[120, 190]);
/// assert_eq!(h.estimate_mean("nightly"), Some(vec![110, 200]));
/// assert_eq!(h.runs("nightly"), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunHistory {
    window: usize,
    samples: HashMap<String, Vec<Vec<u64>>>,
}

impl RunHistory {
    /// Creates a history keeping the most recent `window` runs per
    /// workflow (0 is treated as 1).
    pub fn new(window: usize) -> Self {
        RunHistory {
            window: window.max(1),
            samples: HashMap::new(),
        }
    }

    /// Records the actual per-job work of one completed run.
    ///
    /// Runs whose job count differs from previously recorded runs of the
    /// same name reset the history (the workflow's shape changed).
    pub fn record(&mut self, name: &str, actual_work: &[u64]) {
        let runs = self.samples.entry(name.to_string()).or_default();
        if runs
            .last()
            .is_some_and(|prev| prev.len() != actual_work.len())
        {
            runs.clear();
        }
        runs.push(actual_work.to_vec());
        let window = self.window;
        if runs.len() > window {
            let excess = runs.len() - window;
            runs.drain(..excess);
        }
    }

    /// Number of recorded runs for `name`.
    pub fn runs(&self, name: &str) -> usize {
        self.samples.get(name).map_or(0, Vec::len)
    }

    /// Per-job mean of the recorded runs (rounded), if any exist.
    pub fn estimate_mean(&self, name: &str) -> Option<Vec<u64>> {
        let runs = self.samples.get(name).filter(|r| !r.is_empty())?;
        let jobs = runs.last().expect("non-empty").len();
        let mut out = Vec::with_capacity(jobs);
        for j in 0..jobs {
            let total: u64 = runs.iter().map(|r| r[j]).sum();
            out.push(((total as f64) / runs.len() as f64).round() as u64);
        }
        Some(out)
    }

    /// Per-job `q`-quantile (0.0–1.0) of the recorded runs — padding the
    /// estimate against under-estimation the way deadline slack pads the
    /// deadline.
    pub fn estimate_quantile(&self, name: &str, q: f64) -> Option<Vec<u64>> {
        let runs = self.samples.get(name).filter(|r| !r.is_empty())?;
        let jobs = runs.last().expect("non-empty").len();
        let q = q.clamp(0.0, 1.0);
        let mut out = Vec::with_capacity(jobs);
        for j in 0..jobs {
            let mut values: Vec<u64> = runs.iter().map(|r| r[j]).collect();
            values.sort_unstable();
            let idx = ((values.len() - 1) as f64 * q).round() as usize;
            out.push(values[idx]);
        }
        Some(out)
    }

    /// Rebuilds `template` with its per-job *work* re-specced to
    /// `estimates` (task counts scale; per-task duration and container
    /// shape are preserved).
    ///
    /// # Errors
    ///
    /// Propagates [`DagError`] (never for a well-formed template and an
    /// estimate vector of matching length; mismatched lengths return
    /// [`DagError::NodeOutOfRange`]).
    pub fn respec(template: &Workflow, estimates: &[u64]) -> Result<Workflow, DagError> {
        if estimates.len() != template.len() {
            return Err(DagError::NodeOutOfRange {
                node: estimates.len(),
                len: template.len(),
            });
        }
        let mut b = WorkflowBuilder::new(template.id(), template.name().to_string());
        for (job, &est) in template.jobs().iter().zip(estimates) {
            let tasks = est.div_ceil(job.task_slots().max(1)).max(1);
            let mut spec = JobSpec::new(job.name(), tasks, job.task_slots(), job.per_task());
            if let Some(p) = job.max_parallel() {
                spec = spec.with_max_parallel(p);
            }
            b.add_job(spec);
        }
        for (from, to) in template.dag().edges() {
            b.add_dep(from, to)?;
        }
        b.window(template.submit_slot(), template.deadline_slot())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::{ResourceVec, WorkflowId};

    #[test]
    fn mean_and_quantile() {
        let mut h = RunHistory::new(10);
        for w in [100u64, 110, 120, 200] {
            h.record("wf", &[w]);
        }
        assert_eq!(h.estimate_mean("wf"), Some(vec![133]));
        assert_eq!(h.estimate_quantile("wf", 0.0), Some(vec![100]));
        assert_eq!(h.estimate_quantile("wf", 1.0), Some(vec![200]));
        let p67 = h.estimate_quantile("wf", 0.67).unwrap()[0];
        assert!(p67 == 120 || p67 == 110, "{p67}");
    }

    #[test]
    fn window_evicts_old_runs() {
        let mut h = RunHistory::new(2);
        h.record("wf", &[100]);
        h.record("wf", &[200]);
        h.record("wf", &[300]);
        assert_eq!(h.runs("wf"), 2);
        assert_eq!(h.estimate_mean("wf"), Some(vec![250]));
    }

    #[test]
    fn shape_change_resets_history() {
        let mut h = RunHistory::new(5);
        h.record("wf", &[1, 2]);
        h.record("wf", &[1, 2, 3]);
        assert_eq!(h.runs("wf"), 1);
        assert_eq!(h.estimate_mean("wf"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn unknown_workflow_is_none() {
        let h = RunHistory::new(3);
        assert_eq!(h.estimate_mean("nope"), None);
        assert_eq!(h.estimate_quantile("nope", 0.5), None);
        assert_eq!(h.runs("nope"), 0);
    }

    #[test]
    fn respec_scales_tasks_and_keeps_structure() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "t");
        let a = b.add_job(JobSpec::new("a", 10, 2, ResourceVec::new([1, 1024])));
        let c =
            b.add_job(JobSpec::new("c", 5, 4, ResourceVec::new([1, 2048])).with_max_parallel(3));
        b.add_dep(a, c).unwrap();
        let template = b.window(0, 100).build().unwrap();
        // New estimates: 30 and 43 task-slots of work.
        let respec = RunHistory::respec(&template, &[30, 43]).unwrap();
        assert_eq!(respec.job(0).work(), 30); // 15 tasks x 2 slots
        assert_eq!(respec.job(1).tasks(), 11); // ceil(43/4)
        assert_eq!(respec.job(1).max_parallel(), Some(3));
        assert_eq!(respec.dag().edge_count(), 1);
        assert_eq!(respec.window_slots(), 100);
    }

    #[test]
    fn respec_validates_length() {
        let mut b = WorkflowBuilder::new(WorkflowId::new(1), "t");
        b.add_job(JobSpec::new("a", 1, 1, ResourceVec::new([1, 1])));
        let template = b.window(0, 10).build().unwrap();
        assert!(RunHistory::respec(&template, &[1, 2]).is_err());
    }

    #[test]
    fn learned_estimates_converge_on_stationary_workloads() {
        // Feed a noisy-but-stationary history; the mean estimate should
        // land near the true mean.
        let mut h = RunHistory::new(20);
        let truth = 500i64;
        for i in 0..20i64 {
            let noise = (i % 5) * 10 - 20; // -20..20
            h.record("wf", &[(truth + noise) as u64]);
        }
        let est = h.estimate_mean("wf").unwrap()[0] as i64;
        assert!((est - truth).abs() <= 5, "estimate {est}");
    }
}
