//! CLI subcommands.

use crate::args::Args;
use flowtime::decompose::{decompose, slack::slacked_windows, DecomposeConfig};
use flowtime::{
    CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler,
    MorpheusScheduler,
};
use flowtime_dag::ResourceVec;
use flowtime_sim::{
    ClusterConfig, Engine, FaultConfig, FaultPlan, Metrics, RecoveryPolicy, RecoverySetup,
    RuntimeFaultConfig, Scheduler, ShedPolicy,
};
use flowtime_workload::trace::{ProductionTraceConfig, Trace};
use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};

type CliResult = Result<(), Box<dyn Error>>;

const USAGE: &str = "\
flowtime-cli — FlowTime scheduling simulations (ICDCS 2018 reproduction)

USAGE:
  flowtime-cli generate  --out <trace.jsonl> [--workflows N] [--seed S]
                         [--cores C] [--mem-mb M] [--looseness X]
  flowtime-cli simulate  --trace <trace.jsonl> --scheduler <name>
                         [--out metrics.json] [--outcome-out outcome.json]
                         [--trace-out decisions.jsonl] [--gantt]
                         [--no-plan-cache] [--lp-backend sparse|dense]
                         [--pods K] [--placer P] [FAULTS]
  flowtime-cli compare   --trace <trace.jsonl> [--no-plan-cache]
                         [--lp-backend sparse|dense] [FAULTS]
  flowtime-cli decompose --trace <trace.jsonl> [--index I] [--slack S]
  flowtime-cli audit     --trace <trace.jsonl> --decision-trace <d.jsonl>
                         --outcome <outcome.json> [FAULTS]
  flowtime-cli explain   --trace <trace.jsonl> --decision-trace <d.jsonl>
                         --outcome <outcome.json> [--out report.json] [FAULTS]
  flowtime-cli whatif    --trace <trace.jsonl> --decision-trace <d.jsonl>
                         --outcome <outcome.json> [--scheduler ALT]
                         [--alt-max-retries N] [--alt-retry-backoff B]
                         [--alt-shed-policy P] [--alt-pods K] [--alt-placer P]
                         [--out diff.json] [FAULTS]
  flowtime-cli sweep     [--threads N] [--seeds A..B] [--schedulers a,b,..]
                         [--scenarios clean,mixed-faults,chaos:0.2]
                         [--jobs N] [--adhoc-horizon S] [--seed S]
                         [--workflows N] [--pods K] [--placer P]
                         [--out NAME] [--bench-threads 1,2,..] [--audit]
  flowtime-cli submit    --connect HOST:PORT
                         (--adhoc TASKS,DUR[,CORES,MB] [--arrival N]
                          | --workflow-json FILE)
                         [--request-id KEY] [--retries N]
  flowtime-cli status    --connect HOST:PORT
  flowtime-cli drain     --connect HOST:PORT [--out outcome.json]

SCHEDULERS: flowtime, flowtime-no-ds, edf, fifo, fair, cora, morpheus

DAEMON CLIENT (submit/status/drain talk to a running `flowtimed`):
  --connect HOST:PORT  daemon address (e.g. 127.0.0.1:7171)
  --adhoc SPEC         ad-hoc job as TASKS,DUR[,CORES,MB] (defaults 1,1024)
  --arrival N          virtual arrival slot for --adhoc (default: now)
  --workflow-json F    file holding one serialized WorkflowSubmission
  --request-id KEY     idempotency key: the daemon dedups resubmissions of
                       the same key (a `duplicate` reply is a success and
                       carries the original sequence number)
  --retries N          retry a submit N times on transport errors with
                       backoff, reconnecting each time (needs --request-id)

SHARDING (simulate and sweep; see DESIGN.md §15):
  --pods K           partition the cluster into K pods, each running its own
                     engine + scheduler over its slice of the workload; K=1
                     is byte-identical to the unsharded engine
  --placer P         pod placement policy: firstfit, worstfit, or demand
                     (default demand); requires --pods
  With --pods K>1, `simulate --trace-out d.jsonl` writes one trace per pod
  (d.jsonl.pod0, d.jsonl.pod1, ...). `audit` and `explain` read the pod
  provenance stamped in a sharded trace header, so --pods/--placer need not
  be re-stated (if given, they must agree with the header).

EXPLAIN / WHATIF (see DESIGN.md §16):
  `explain` diagnoses every missed workflow of a certified run: a typed
  E00x causal chain whose slack figures balance exactly against the
  auditor's independent MissAttribution recount. `whatif` replays the
  recorded scenario under a modified policy and emits a certified
  two-sided diff (both sides audited; identical policies must no-op).
  --scheduler ALT        the alt-side scheduler (default: the recorded one)
  --alt-max-retries N    alt-side retry budget override
  --alt-retry-backoff B  alt-side backoff base override
  --alt-shed-policy P    alt-side admission policy: none | shed | delay:N
  --alt-pods K           run the alt side sharded into K pods
  --alt-placer P         alt-side placement policy (requires --alt-pods)
  The slack-factor axis is the scheduler choice itself (flowtime vs
  flowtime-no-ds). FAULTS/RECOVERY flags describe the recorded base run.

LP BACKEND (any command that solves scheduling LPs):
  --lp-backend B     simplex engine: sparse (revised simplex + LU, default)
                     or dense (tableau oracle, for differential checking)

FAULTS (deterministic injection, all derived from one seed):
  --fault-seed S     enable fault injection with seed S
  --misestimate X    log-normal sigma of actual/estimated runtime (default 0)
  --churn X          fraction of capacity removed in churn windows (default 0)
  --bursts N         extra ad-hoc jobs injected in bursts (default 0)
  --submit-delay D   max workflow submission delay in slots (default 0)

RECOVERY (mid-run failures + retry policy; also need --fault-seed):
  --task-fail-rate X     probability a task attempt fails mid-run (default 0)
  --node-crash X         severity of node-crash capacity loss (default 0)
  --node-crash-period P  slots between crash windows (default 120)
  --straggler-rate X     fraction of first attempts inflated (default 0)
  --straggler-factor F   extra-work factor for stragglers (default 0.5)
  --max-retries N        kills tolerated per job before giving up (default 3)
  --retry-backoff B      backoff base in slots between attempts (default 1)
  --shed-policy P        overload admission: none | shed | delay:N
  --overload-factor X    ad-hoc backlog per core that counts as overload
  --overload-sustain S   slots of sustained overload before shedding
";

/// Applies `--lp-backend`, selecting the process-wide simplex engine for
/// every LP the subsequent command solves. A typo'd value must error, not
/// silently run the default engine.
fn apply_lp_backend(args: &Args) -> CliResult {
    match args.get("lp-backend") {
        None => Ok(()),
        Some("sparse") => {
            flowtime_lp::set_default_engine(flowtime_lp::SimplexEngine::Sparse);
            Ok(())
        }
        Some("dense") => {
            flowtime_lp::set_default_engine(flowtime_lp::SimplexEngine::Dense);
            Ok(())
        }
        Some(other) => Err(format!("--lp-backend must be sparse or dense, got `{other}`").into()),
    }
}

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> CliResult {
    let args = Args::parse(argv);
    apply_lp_backend(&args)?;
    match args.positional.first().map(String::as_str) {
        Some("generate") => generate(&args),
        Some("simulate") => simulate(&args),
        Some("compare") => compare(&args),
        Some("decompose") => decompose_cmd(&args),
        Some("audit") => audit_cmd(&args),
        Some("explain") => explain_cmd(&args),
        Some("whatif") => whatif_cmd(&args),
        Some("sweep") => sweep_cmd(&args),
        Some("submit") => daemon_submit(&args),
        Some("status") => daemon_status(&args),
        Some("drain") => daemon_drain(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    }
}

fn load_trace(args: &Args) -> Result<Trace, Box<dyn Error>> {
    let path = args.get("trace").ok_or("--trace <file> is required")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(Trace::read_jsonl(BufReader::new(file))?)
}

fn make_scheduler(
    name: &str,
    cluster: &ClusterConfig,
    plan_cache: bool,
) -> Result<Box<dyn Scheduler>, Box<dyn Error>> {
    Ok(match name {
        "flowtime" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig {
                plan_cache,
                ..Default::default()
            },
        )),
        "flowtime-no-ds" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig {
                slack_slots: 0,
                plan_cache,
                ..Default::default()
            },
        )),
        "edf" => Box::new(EdfScheduler::new()),
        "fifo" => Box::new(FifoScheduler::new()),
        "fair" => Box::new(FairScheduler::new()),
        "cora" => Box::new(CoraScheduler::new(cluster.clone())),
        "morpheus" => Box::new(MorpheusScheduler::new(cluster.clone())),
        other => return Err(format!("unknown scheduler `{other}`").into()),
    })
}

/// Flags of the runtime failure/recovery family ([`recovery_setup`]).
const RECOVERY_KEYS: [&str; 10] = [
    "task-fail-rate",
    "node-crash",
    "node-crash-period",
    "straggler-rate",
    "straggler-factor",
    "max-retries",
    "retry-backoff",
    "shed-policy",
    "overload-factor",
    "overload-sustain",
];

/// Applies the `--fault-seed` family of flags to a loaded trace, in place.
/// No-op unless `--fault-seed` is present.
fn apply_faults(args: &Args, trace: &mut Trace) -> CliResult {
    if !args.has("fault-seed") {
        for key in ["misestimate", "churn", "bursts", "submit-delay"]
            .iter()
            .chain(RECOVERY_KEYS.iter())
        {
            if args.has(key) {
                return Err(format!("--{key} requires --fault-seed <S>").into());
            }
        }
        return Ok(());
    }
    let config = FaultConfig::none(args.get_parsed("fault-seed", 0u64)?)
        .with_misestimate(args.get_parsed("misestimate", 0.0f64)?)
        .with_churn(args.get_parsed("churn", 0.0f64)?)
        .with_bursts(args.get_parsed("bursts", 0usize)?)
        .with_submit_delay(args.get_parsed("submit-delay", 0u64)?);
    // Bound churn/bursts by the busy part of the trace, not the engine's
    // safety horizon.
    let horizon = trace
        .workload
        .workflows
        .iter()
        .map(|w| w.workflow.deadline_slot())
        .chain(trace.workload.adhoc.iter().map(|a| a.arrival_slot + 1))
        .max()
        .unwrap_or(0);
    let mut cluster = trace.cluster.clone();
    FaultPlan::new(config).apply(&mut trace.workload, &mut cluster, horizon);
    trace.cluster = cluster;
    Ok(())
}

/// Parses a `--shed-policy` value: `none`, `shed`, or `delay:N`.
fn parse_shed_policy(raw: &str) -> Result<ShedPolicy, Box<dyn Error>> {
    match raw {
        "none" => Ok(ShedPolicy::None),
        "shed" => Ok(ShedPolicy::Shed),
        other => match other.strip_prefix("delay:") {
            Some(n) => Ok(ShedPolicy::Delay {
                slots: n
                    .parse()
                    .map_err(|_| format!("--shed-policy delay wants slots, got `{n}`"))?,
            }),
            None => {
                Err(format!("--shed-policy must be none, shed, or delay:N, got `{raw}`").into())
            }
        },
    }
}

/// Builds the runtime failure/recovery setup from the RECOVERY flag family.
/// Returns `None` when no recovery flag is present, so runs without the
/// flags attach no recovery layer at all and stay byte-identical to
/// pre-recovery builds. `apply_faults` has already verified `--fault-seed`
/// accompanies any of these flags.
fn recovery_setup(args: &Args) -> Result<Option<RecoverySetup>, Box<dyn Error>> {
    if !RECOVERY_KEYS.iter().any(|k| args.has(k)) {
        return Ok(None);
    }
    let seed = args.get_parsed("fault-seed", 0u64)?;
    let mut faults = RuntimeFaultConfig::none(seed)
        .with_task_failures(args.get_parsed("task-fail-rate", 0.0f64)?)
        .with_crashes(args.get_parsed("node-crash", 0.0f64)?);
    if args.has("node-crash-period") {
        faults = faults.with_crash_period(args.get_parsed("node-crash-period", 120u64)?);
    }
    if args.has("straggler-rate") || args.has("straggler-factor") {
        faults = faults.with_stragglers(
            args.get_parsed("straggler-rate", 0.0f64)?,
            args.get_parsed("straggler-factor", 0.5f64)?,
        );
    }
    let mut policy = RecoveryPolicy::default()
        .with_max_retries(args.get_parsed("max-retries", 3u32)?)
        .with_backoff(args.get_parsed("retry-backoff", 1u64)?)
        .with_shed(parse_shed_policy(
            args.get("shed-policy").unwrap_or("none"),
        )?);
    if args.has("overload-factor") || args.has("overload-sustain") {
        policy = policy.with_overload(
            args.get_parsed("overload-factor", 4.0f64)?,
            args.get_parsed("overload-sustain", 10u64)?,
        );
    }
    Ok(Some(RecoverySetup::new(faults, policy)))
}

/// Builds the pod-sharding spec from `--pods` / `--placer`. Absent flags
/// yield `None` (the unsharded path, byte-identical to pre-shard builds);
/// `--pods 0`, a bare `--pods`, an unknown placer, or `--placer` without
/// `--pods` are errors, never silent fallbacks.
fn shard_spec(args: &Args) -> Result<Option<flowtime_sim::ShardSpec>, Box<dyn Error>> {
    if !args.has("pods") {
        if args.has("placer") {
            return Err("--placer requires --pods <K>".into());
        }
        return Ok(None);
    }
    let pods: usize = args.get_parsed("pods", 1usize)?;
    if pods == 0 {
        return Err("--pods must be at least 1".into());
    }
    let mut spec = flowtime_sim::ShardSpec::new(pods);
    if let Some(raw) = args.get("placer") {
        let placer = flowtime_sim::Placer::parse(raw).ok_or_else(|| {
            format!("unknown placer `{raw}` (expected firstfit, worstfit, or demand)")
        })?;
        spec = spec.with_placer(placer);
    }
    Ok(Some(spec))
}

fn attach_milestones(trace: &mut Trace) {
    let cfg = DecomposeConfig::new(trace.cluster.capacity());
    for sub in &mut trace.workload.workflows {
        if sub.job_deadlines.is_none() {
            if let Ok(d) = decompose(&sub.workflow, &cfg) {
                sub.job_deadlines = Some(d.job_deadlines());
            }
        }
    }
}

fn run_one(
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    recovery: Option<&RecoverySetup>,
) -> Result<flowtime_sim::SimOutcome, Box<dyn Error>> {
    let mut engine = Engine::new(trace.cluster.clone(), trace.workload.clone(), 10_000_000)?;
    if let Some(setup) = recovery {
        engine = engine.with_recovery(setup.clone());
    }
    Ok(engine.run(scheduler)?)
}

fn recovery_line(outcome: &flowtime_sim::SimOutcome) -> Option<String> {
    let r = &outcome.recovery;
    if r.is_inert() && outcome.shed.is_empty() {
        return None;
    }
    Some(format!(
        "task-fails {}  crash-kills {}  retries {}  wasted {}  stragglers {} (+{})  shed {}  delayed {}  infeasible {}",
        r.task_failures,
        r.crash_kills,
        r.retries,
        r.wasted_work,
        r.stragglers,
        r.straggler_extra_work,
        r.shed_jobs,
        r.delayed_jobs,
        r.infeasible_flags,
    ))
}

fn summary_line(name: &str, m: &Metrics) -> String {
    format!(
        "{:<16} jobs {:>4}  misses {:>3}  wf-misses {:>2}  adhoc-tat {:>8.1}s  util {:.3}",
        name,
        m.completed_jobs(),
        m.job_deadline_misses(),
        m.workflow_deadline_misses(),
        m.avg_adhoc_turnaround_seconds().unwrap_or(0.0),
        m.avg_peak_utilization(),
    )
}

fn generate(args: &Args) -> CliResult {
    let out = args.get("out").ok_or("--out <file> is required")?;
    let cores = args.get_parsed("cores", 160u64)?;
    let mem = args.get_parsed("mem-mb", cores * 4096)?;
    let cluster = ClusterConfig::new(ResourceVec::new([cores, mem]), 10.0);
    let config = ProductionTraceConfig {
        workflows: args.get_parsed("workflows", 10usize)?,
        looseness: args.get_parsed("looseness", 6.0f64)?,
        ..Default::default()
    };
    let trace = Trace::synthesize_production(cluster, &config, args.get_parsed("seed", 7u64)?);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    trace.write_jsonl(BufWriter::new(file))?;
    println!(
        "wrote {}: {} workflows / {} deadline jobs / {} ad-hoc jobs",
        out,
        trace.workload.workflows.len(),
        trace
            .workload
            .workflows
            .iter()
            .map(|w| w.workflow.len())
            .sum::<usize>(),
        trace.workload.adhoc.len()
    );
    Ok(())
}

fn simulate(args: &Args) -> CliResult {
    let mut trace = load_trace(args)?;
    attach_milestones(&mut trace);
    apply_faults(args, &mut trace)?;
    let recovery = recovery_setup(args)?;
    if let Some(shard) = shard_spec(args)? {
        return simulate_sharded(args, &trace, recovery, &shard);
    }
    let name = args.get("scheduler").unwrap_or("flowtime");
    let mut scheduler = make_scheduler(name, &trace.cluster, !args.has("no-plan-cache"))?;
    let want_gantt = args.has("gantt");
    let mut engine = Engine::new(trace.cluster.clone(), trace.workload.clone(), 10_000_000)?;
    if let Some(setup) = &recovery {
        engine = engine.with_recovery(setup.clone());
    }
    if want_gantt {
        engine = engine.with_timeline();
    }
    let outcome;
    if let Some(trace_out) = args.get("trace-out") {
        let (traced, handle) = engine.with_trace(flowtime_sim::DEFAULT_TRACE_CAPACITY);
        outcome = traced.run(scheduler.as_mut())?;
        let decisions = handle.take();
        let file =
            File::create(trace_out).map_err(|e| format!("cannot create {trace_out}: {e}"))?;
        decisions.write_jsonl(BufWriter::new(file))?;
        println!(
            "decision trace ({} events) written to {trace_out}",
            decisions.recorded()
        );
        // Self-check: the auditor must certify the run it just watched.
        let report = flowtime_sim::certify_with_recovery(
            &trace.cluster,
            &trace.workload,
            &outcome,
            &decisions,
            recovery.as_ref(),
        );
        println!("{:<16} {}", "audit", report.summary());
        if !report.is_certified() {
            for v in &report.violations {
                eprintln!("  {v}");
            }
            return Err("auditor rejected the traced run (engine bug?)".into());
        }
    } else {
        outcome = engine.run(scheduler.as_mut())?;
    }
    if let Some(line) = recovery_line(&outcome) {
        println!("{:<16} {}", "recovery", line);
    }
    if let Some(out) = args.get("outcome-out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer_pretty(BufWriter::new(file), &outcome)?;
        println!("full outcome written to {out}");
    }
    let metrics = outcome.metrics;
    println!("{}", summary_line(scheduler.name(), &metrics));
    if let Some(t) = &outcome.solver_telemetry {
        println!("{:<16} {}", "solver", t.summary());
    }
    if let Some(tl) = &outcome.timeline {
        print!(
            "{}",
            flowtime_sim::timeline::render_gantt(tl, Some(&metrics), 100)
        );
    }
    if let Some(out) = args.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer_pretty(BufWriter::new(file), &metrics)?;
        println!("full metrics written to {out}");
    }
    Ok(())
}

/// The `--pods K` variant of `simulate`: partitions the cluster, places the
/// workload, runs one engine per pod (each scheduler gets its own pod-sized
/// cluster and plan cache), and always self-audits through the sharded
/// certifier's cross-pod + per-pod checks. With one pod the run is
/// byte-identical to the unsharded engine, so `--outcome-out` /
/// `--trace-out` write the pod-0 artifacts directly (CI diffs them against
/// a plain `simulate`); with several pods the outcome file holds the full
/// [`flowtime_sim::ShardedOutcome`], `--trace-out d.jsonl` writes one
/// trace per pod (`d.jsonl.pod0`, `d.jsonl.pod1`, ...; each header carries
/// its pod provenance, so `audit`/`explain` need no `--pods` re-statement),
/// and per-pod timelines / metrics are not merged, so `--gantt` and
/// `--out` are errors.
fn simulate_sharded(
    args: &Args,
    trace: &Trace,
    recovery: Option<RecoverySetup>,
    shard: &flowtime_sim::ShardSpec,
) -> CliResult {
    if args.has("gantt") {
        return Err(
            "--gantt is not supported with --pods (per-pod timelines are not merged)".into(),
        );
    }
    if shard.pods > 1 && args.has("out") {
        return Err(
            "--out (metrics) needs --pods 1; use --outcome-out for the full sharded outcome".into(),
        );
    }
    let name = args.get("scheduler").unwrap_or("flowtime");
    let plan_cache = !args.has("no-plan-cache");
    // Validate the scheduler name before spending time on the run; the
    // per-pod factory below can then never fail.
    make_scheduler(name, &trace.cluster, plan_cache)?;
    let (outcome, traces) = flowtime_sim::run_sharded_traced(
        &trace.cluster,
        &trace.workload,
        shard,
        10_000_000,
        shard.pods,
        recovery.as_ref(),
        flowtime_sim::DEFAULT_TRACE_CAPACITY,
        |_pod, pod_cluster| make_scheduler(name, pod_cluster, plan_cache).expect("name validated"),
    )?;
    println!(
        "{:<16} {} pod(s), placer {}, {} rebalance move(s)",
        "shard",
        outcome.placement.pods,
        outcome.placement.placer.name(),
        outcome.placement.rebalances.len()
    );
    let report = flowtime_sim::certify_sharded(
        &trace.cluster,
        &trace.workload,
        shard,
        &outcome,
        &traces,
        recovery.as_ref(),
    );
    println!("{:<16} {}", "audit", report.summary());
    if !report.is_certified() {
        for v in &report.violations {
            eprintln!("  {v}");
        }
        return Err("sharded auditor rejected the run (engine bug?)".into());
    }
    if let Some(trace_out) = args.get("trace-out") {
        if shard.pods == 1 {
            let decisions = &traces[0];
            let file =
                File::create(trace_out).map_err(|e| format!("cannot create {trace_out}: {e}"))?;
            decisions.write_jsonl(BufWriter::new(file))?;
            println!(
                "decision trace ({} events) written to {trace_out}",
                decisions.recorded()
            );
        } else {
            for (i, decisions) in traces.iter().enumerate() {
                let path = format!("{trace_out}.pod{i}");
                let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
                decisions.write_jsonl(BufWriter::new(file))?;
                println!(
                    "decision trace ({} events) written to {path}",
                    decisions.recorded()
                );
            }
        }
    }
    if let Some(out) = args.get("outcome-out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        if shard.pods == 1 {
            serde_json::to_writer_pretty(BufWriter::new(file), &outcome.pods[0])?;
        } else {
            serde_json::to_writer_pretty(BufWriter::new(file), &outcome)?;
        }
        println!("full outcome written to {out}");
    }
    for (i, pod) in outcome.pods.iter().enumerate() {
        println!(
            "{}",
            summary_line(&format!("{name}[pod {i}]"), &pod.metrics)
        );
        if let Some(line) = recovery_line(pod) {
            println!("{:<16} {}", "", line);
        }
    }
    if outcome.pods.len() > 1 {
        println!(
            "{:<16} jobs {:>4}  misses {:>3}  wf-misses {:>2}  slots {:>5}",
            "total",
            outcome.completed_jobs(),
            outcome.job_deadline_misses(),
            outcome.workflow_deadline_misses(),
            outcome.slots_elapsed(),
        );
    }
    if let Some(out) = args.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer_pretty(BufWriter::new(file), &outcome.pods[0].metrics)?;
        println!("full metrics written to {out}");
    }
    Ok(())
}

/// Reads the `--decision-trace` file.
fn load_decisions(args: &Args) -> Result<flowtime_sim::DecisionTrace, Box<dyn Error>> {
    let dpath = args
        .get("decision-trace")
        .ok_or("--decision-trace <file> is required")?;
    let file = File::open(dpath).map_err(|e| format!("cannot open {dpath}: {e}"))?;
    Ok(
        flowtime_sim::DecisionTrace::read_jsonl(BufReader::new(file))
            .map_err(|e| format!("malformed decision trace {dpath}: {e}"))?,
    )
}

/// The scenario slice a recorded trace must be verified against: the whole
/// cluster/workload for an unsharded (or K=1) trace, or the trace's own
/// pod slice when its header carries a shard provenance stamp. The stamp
/// makes `--pods`/`--placer` redundant on `audit`/`explain`; if given
/// anyway they must agree with the header.
struct AuditScope {
    cluster: ClusterConfig,
    workload: flowtime_sim::SimWorkload,
    pod: Option<(usize, usize)>,
}

fn audit_scope(
    args: &Args,
    trace: &Trace,
    decisions: &flowtime_sim::DecisionTrace,
) -> Result<AuditScope, Box<dyn Error>> {
    let header = &decisions.header;
    if header.pods <= 1 {
        if let Some(spec) = shard_spec(args)? {
            if spec.pods > 1 {
                return Err(format!(
                    "--pods {} given, but the decision trace is from an unsharded (or K=1) run",
                    spec.pods
                )
                .into());
            }
        }
        return Ok(AuditScope {
            cluster: trace.cluster.clone(),
            workload: trace.workload.clone(),
            pod: None,
        });
    }
    let pods = header.pods as usize;
    let pod = header.pod as usize;
    let placer = flowtime_sim::Placer::parse(&header.placer)
        .ok_or_else(|| format!("decision trace records unknown placer `{}`", header.placer))?;
    if let Some(spec) = shard_spec(args)? {
        if spec.pods != pods || spec.placer != placer {
            return Err(format!(
                "--pods {} --placer {} disagree with the trace header (pods={} placer={})",
                spec.pods,
                spec.placer.name(),
                pods,
                placer.name()
            )
            .into());
        }
    }
    let spec = flowtime_sim::ShardSpec::new(pods).with_placer(placer);
    let placement = flowtime_sim::place(&trace.cluster, &trace.workload, &spec);
    let mut workloads = placement.pod_workloads(&trace.workload)?;
    if pod >= workloads.len() {
        return Err(format!("trace header claims pod {pod} of {pods}, placement disagrees").into());
    }
    Ok(AuditScope {
        cluster: flowtime_sim::pod_cluster(&trace.cluster, pods, pod),
        workload: workloads.swap_remove(pod),
        pod: Some((pod, pods)),
    })
}

/// Reads `--outcome`, slicing out the right pod when the decision trace is
/// from a sharded run: the file may hold either the pod's own
/// [`flowtime_sim::SimOutcome`] or the full
/// [`flowtime_sim::ShardedOutcome`] `simulate --pods K` writes.
fn load_outcome(
    args: &Args,
    decisions: &flowtime_sim::DecisionTrace,
) -> Result<flowtime_sim::SimOutcome, Box<dyn Error>> {
    let opath = args.get("outcome").ok_or("--outcome <file> is required")?;
    let raw = std::fs::read_to_string(opath).map_err(|e| format!("cannot open {opath}: {e}"))?;
    if decisions.header.pods > 1 {
        if let Ok(sharded) = serde_json::from_str::<flowtime_sim::ShardedOutcome>(&raw) {
            let pod = decisions.header.pod as usize;
            return sharded.pods.into_iter().nth(pod).ok_or_else(|| {
                format!("{opath} holds a sharded outcome without pod {pod}").into()
            });
        }
    }
    Ok(serde_json::from_str::<flowtime_sim::SimOutcome>(&raw)
        .map_err(|e| format!("malformed outcome {opath}: {e}"))?)
}

/// Offline certification: replays a decision trace against the scenario it
/// claims to describe and the outcome the engine reported, sharing no state
/// with the engine. The scenario is re-derived exactly as `simulate` does
/// (same milestone attachment, same fault flags), so pass the same FAULTS
/// that produced the run. Traces recorded by sharded runs carry their pod
/// provenance in the header and are verified against their own pod slice.
fn audit_cmd(args: &Args) -> CliResult {
    let mut trace = load_trace(args)?;
    attach_milestones(&mut trace);
    apply_faults(args, &mut trace)?;
    let decisions = load_decisions(args)?;
    let scope = audit_scope(args, &trace, &decisions)?;
    let outcome = load_outcome(args, &decisions)?;
    let recovery = recovery_setup(args)?;
    if let Some((pod, pods)) = scope.pod {
        println!(
            "{:<16} verifying pod {pod} of {pods} against its own slice",
            "shard"
        );
    }
    let report = flowtime_sim::certify_with_recovery(
        &scope.cluster,
        &scope.workload,
        &outcome,
        &decisions,
        recovery.as_ref(),
    );
    println!("{}", report.summary());
    if !report.is_certified() {
        for v in &report.violations {
            eprintln!("  {v}");
        }
        return Err(format!("audit failed with {} violation(s)", report.violations.len()).into());
    }
    for a in &report.attribution {
        if a.missed() {
            let top = a
                .top_culprit()
                .map(|c| format!("{} node {} (+{} slots)", c.job, c.node, c.overrun_slots))
                .unwrap_or_else(|| "no single culprit".into());
            println!(
                "  {} missed by {} slot(s): dominant slack consumer {top}",
                a.workflow,
                a.completion_slot - a.deadline_slot
            );
        }
    }
    Ok(())
}

/// Diagnoses every missed workflow of a certified recorded run: the E00x
/// causal chains of `flowtime_sim::explain`, cross-checked against the
/// auditor's independent MissAttribution recount. Refuses uncertifiable
/// runs with a nonzero exit.
fn explain_cmd(args: &Args) -> CliResult {
    let mut trace = load_trace(args)?;
    attach_milestones(&mut trace);
    apply_faults(args, &mut trace)?;
    let decisions = load_decisions(args)?;
    let scope = audit_scope(args, &trace, &decisions)?;
    let outcome = load_outcome(args, &decisions)?;
    let recovery = recovery_setup(args)?;
    let report = flowtime_sim::explain(
        &scope.cluster,
        &scope.workload,
        &outcome,
        &decisions,
        recovery.as_ref(),
    )
    .map_err(|e| {
        if let flowtime_sim::ExplainError::Uncertified { violations, .. } = &e {
            for v in violations {
                eprintln!("  {v}");
            }
        }
        format!("{e}")
    })?;
    println!(
        "{:<16} {} event(s) checked; {} missed workflow(s), {} with a complete causal chain, {} diagnostic(s)",
        report.scheduler,
        report.events_checked,
        report.missed_workflows(),
        report.complete_chains(),
        report.diagnostics(),
    );
    for wf in &report.workflows {
        println!(
            "  {} missed by {} slot(s) (deadline {}, completed {}), {} slack slot(s) attributed{}",
            wf.workflow,
            wf.miss_slots,
            wf.deadline_slot,
            wf.completion_slot,
            wf.total_overrun_slots,
            if wf.complete {
                ""
            } else {
                " [incomplete chain]"
            },
        );
        for d in &wf.chain {
            let anchor = match (d.job, d.node) {
                (Some(job), Some(node)) => format!("{job} node {node} "),
                _ => String::new(),
            };
            let slack = if d.slack_slots > 0 {
                format!(" (+{} slack)", d.slack_slots)
            } else {
                String::new()
            };
            println!(
                "    {} {}slot {}{}: {}",
                d.code, anchor, d.slot, slack, d.detail
            );
        }
    }
    if let Some(out) = args.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer_pretty(BufWriter::new(file), &report)?;
        println!("explain report written to {out}");
    }
    Ok(())
}

/// Alt-side recovery policy: the base setup with the `--alt-*` overrides
/// applied. With no override flags the alt side inherits the base setup
/// unchanged (so a bare `whatif` is an identical-policy no-op check).
fn alt_recovery_setup(
    args: &Args,
    base: Option<&RecoverySetup>,
) -> Result<Option<RecoverySetup>, Box<dyn Error>> {
    const ALT_KEYS: [&str; 3] = ["alt-max-retries", "alt-retry-backoff", "alt-shed-policy"];
    if !ALT_KEYS.iter().any(|k| args.has(k)) {
        return Ok(base.cloned());
    }
    let mut setup = base.cloned().unwrap_or_else(|| {
        RecoverySetup::new(RuntimeFaultConfig::none(0), RecoveryPolicy::default())
    });
    if args.has("alt-max-retries") {
        setup.policy = setup
            .policy
            .clone()
            .with_max_retries(args.get_parsed("alt-max-retries", 3u32)?);
    }
    if args.has("alt-retry-backoff") {
        setup.policy = setup
            .policy
            .clone()
            .with_backoff(args.get_parsed("alt-retry-backoff", 1u64)?);
    }
    if let Some(raw) = args.get("alt-shed-policy") {
        setup.policy = setup.policy.clone().with_shed(parse_shed_policy(raw)?);
    }
    Ok(Some(setup))
}

/// Counterfactual replay: takes the recorded base run (decision trace +
/// outcome) and re-runs the same scenario under a modified policy, then
/// emits the certified two-sided diff of `flowtime_sim::whatif`. Both
/// sides must certify — an uncertifiable diff is a nonzero exit.
fn whatif_cmd(args: &Args) -> CliResult {
    let mut trace = load_trace(args)?;
    attach_milestones(&mut trace);
    apply_faults(args, &mut trace)?;
    let decisions = load_decisions(args)?;
    if decisions.header.pods > 1 {
        return Err(
            "whatif wants an unsharded base recording; re-record with --pods 1 (sharded \
             alternatives go on the alt side via --alt-pods)"
                .into(),
        );
    }
    let outcome = load_outcome(args, &decisions)?;
    let base_recovery = recovery_setup(args)?;
    let alt_recovery = alt_recovery_setup(args, base_recovery.as_ref())?;
    // The trace header records the scheduler's display name ("EDF"); the
    // lowercase form is the CLI name `make_scheduler` accepts. A recording
    // made with flowtime-no-ds replays as plain flowtime unless the
    // variant is re-stated with --scheduler.
    let base_name = decisions.header.scheduler.to_lowercase();
    let alt_name = args.get("scheduler").unwrap_or(&base_name).to_string();
    let plan_cache = !args.has("no-plan-cache");
    let base = flowtime_sim::RunArtifacts {
        outcome,
        trace: decisions,
    };

    let alt_pods: usize = args.get_parsed("alt-pods", 1usize)?;
    if alt_pods == 0 {
        return Err("--alt-pods must be at least 1".into());
    }
    if args.has("alt-placer") && !args.has("alt-pods") {
        return Err("--alt-placer requires --alt-pods <K>".into());
    }
    let diff = if args.has("alt-pods") {
        let mut alt_spec = flowtime_sim::ShardSpec::new(alt_pods);
        if let Some(raw) = args.get("alt-placer") {
            let placer = flowtime_sim::Placer::parse(raw).ok_or_else(|| {
                format!("unknown placer `{raw}` (expected firstfit, worstfit, or demand)")
            })?;
            alt_spec = alt_spec.with_placer(placer);
        }
        make_scheduler(&alt_name, &trace.cluster, plan_cache)?;
        let (alt_outcome, alt_traces) = flowtime_sim::run_sharded_traced(
            &trace.cluster,
            &trace.workload,
            &alt_spec,
            10_000_000,
            alt_spec.pods,
            alt_recovery.as_ref(),
            flowtime_sim::DEFAULT_TRACE_CAPACITY,
            |_pod, pod_cluster| {
                make_scheduler(&alt_name, pod_cluster, plan_cache).expect("name validated")
            },
        )?;
        // The recorded unsharded base is byte-identical to a K=1 sharded
        // run, so it slots into the sharded differ as a one-pod side.
        let base_spec = flowtime_sim::ShardSpec::new(1);
        let base_sharded = flowtime_sim::ShardedRunArtifacts {
            outcome: flowtime_sim::ShardedOutcome {
                placement: flowtime_sim::place(&trace.cluster, &trace.workload, &base_spec),
                pods: vec![base.outcome],
            },
            traces: vec![base.trace],
        };
        flowtime_sim::certified_sharded_diff(
            &trace.cluster,
            &trace.workload,
            &base_sharded,
            &base_spec,
            base_recovery.as_ref(),
            &flowtime_sim::ShardedRunArtifacts {
                outcome: alt_outcome,
                traces: alt_traces,
            },
            &alt_spec,
            alt_recovery.as_ref(),
        )
    } else {
        let mut alt_scheduler = make_scheduler(&alt_name, &trace.cluster, plan_cache)?;
        let alt = flowtime_sim::run_policy(
            &trace.cluster,
            &trace.workload,
            10_000_000,
            flowtime_sim::DEFAULT_TRACE_CAPACITY,
            alt_recovery.as_ref(),
            alt_scheduler.as_mut(),
        )?;
        flowtime_sim::certified_diff(
            &trace.cluster,
            &trace.workload,
            &base,
            base_recovery.as_ref(),
            &alt,
            alt_recovery.as_ref(),
        )
    }
    .map_err(|e| {
        let flowtime_sim::WhatIfError::Uncertified { violations, .. } = &e;
        for v in violations {
            eprintln!("  {v}");
        }
        format!("{e}")
    })?;

    println!(
        "whatif: base `{}` vs alt `{}` — {}",
        diff.base_policy,
        diff.alt_policy,
        if diff.identical {
            "identical (empty diff)".to_string()
        } else {
            format!(
                "{} job row(s), {} workflow row(s)",
                diff.jobs.len(),
                diff.workflows.len()
            )
        }
    );
    let s = &diff.summary;
    println!(
        "  job-misses {} -> {}  wf-misses {} -> {}  slots {} -> {}  overrun {} -> {}",
        s.base_job_misses,
        s.alt_job_misses,
        s.base_workflow_misses,
        s.alt_workflow_misses,
        s.base_slots_elapsed,
        s.alt_slots_elapsed,
        s.base_overrun_slots,
        s.alt_overrun_slots,
    );
    if let Some(d) = &diff.first_divergence {
        println!(
            "  first divergence at event {} (slot {}): {} vs {}",
            d.index,
            d.slot,
            d.base_event.as_deref().unwrap_or("<end>"),
            d.alt_event.as_deref().unwrap_or("<end>"),
        );
    }
    for row in diff.jobs.iter().take(10) {
        println!(
            "  {}: completion {:?} -> {:?}  missed {} -> {}{}",
            row.job,
            row.base.completion_slot,
            row.alt.completion_slot,
            row.base.missed_deadline,
            row.alt.missed_deadline,
            row.diverged
                .as_ref()
                .map(|d| format!("  (diverged at its event {} slot {})", d.index, d.slot))
                .unwrap_or_default(),
        );
    }
    if diff.jobs.len() > 10 {
        println!("  ... {} more job row(s)", diff.jobs.len() - 10);
    }
    for row in &diff.workflows {
        println!(
            "  {}: completion {:?} -> {:?}  missed {} -> {}",
            row.workflow, row.base_completion, row.alt_completion, row.base_missed, row.alt_missed,
        );
    }
    if let Some(out) = args.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        serde_json::to_writer_pretty(BufWriter::new(file), &diff)?;
        println!("whatif diff written to {out}");
    }
    Ok(())
}

fn compare(args: &Args) -> CliResult {
    let mut trace = load_trace(args)?;
    attach_milestones(&mut trace);
    apply_faults(args, &mut trace)?;
    let recovery = recovery_setup(args)?;
    for name in ["flowtime", "cora", "edf", "fair", "fifo", "morpheus"] {
        let mut scheduler = make_scheduler(name, &trace.cluster, !args.has("no-plan-cache"))?;
        let outcome = run_one(&trace, scheduler.as_mut(), recovery.as_ref())?;
        println!("{}", summary_line(scheduler.name(), &outcome.metrics));
        if let Some(line) = recovery_line(&outcome) {
            println!("{:<16} {}", "", line);
        }
        if let Some(t) = &outcome.solver_telemetry {
            println!("{:<16} {}", "", t.summary());
        }
    }
    Ok(())
}

/// Parses a Rust-style half-open seed range `A..B`.
fn parse_seed_range(raw: &str) -> Result<Vec<u64>, Box<dyn Error>> {
    let (a, b) = raw
        .split_once("..")
        .ok_or_else(|| format!("--seeds expects `A..B`, got `{raw}`"))?;
    let a: u64 = a
        .trim()
        .parse()
        .map_err(|_| format!("--seeds start `{a}` is not a number"))?;
    let b: u64 = b
        .trim()
        .parse()
        .map_err(|_| format!("--seeds end `{b}` is not a number"))?;
    if a >= b {
        return Err(format!("--seeds range `{raw}` is empty").into());
    }
    Ok((a..b).collect())
}

fn sweep_cmd(args: &Args) -> CliResult {
    use flowtime_bench::sweep::{SweepScenario, SweepSpec};
    use flowtime_bench::Algo;

    let threads = args.get_parsed("threads", 1usize)?.max(1);
    let fault_seeds = parse_seed_range(args.get("seeds").unwrap_or("0..4"))?;
    let schedulers = match args.get("schedulers") {
        None => flowtime_bench::Algo::FIG4.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(|name| {
                Algo::parse(name).ok_or_else(|| format!("unknown scheduler `{name}`").into())
            })
            .collect::<Result<Vec<_>, Box<dyn Error>>>()?,
    };
    let scenarios = match args.get("scenarios") {
        None => vec![SweepScenario::mixed_faults()],
        Some(raw) => raw
            .split(',')
            .map(|name| match name.trim() {
                "clean" => Ok(SweepScenario::clean()),
                "mixed" | "mixed-faults" => Ok(SweepScenario::mixed_faults()),
                // `chaos:R` = mid-run task failures at rate R (plus crashes
                // and stragglers), recovered by the retry policy.
                other => match other.strip_prefix("chaos:").or(if other == "chaos" {
                    Some("0.2")
                } else {
                    None
                }) {
                    Some(rate) => {
                        let rate: f64 = rate
                            .parse()
                            .map_err(|_| format!("chaos wants a failure rate, got `{rate}`"))?;
                        Ok(SweepScenario::chaos(rate))
                    }
                    None => Err(format!(
                        "unknown scenario `{other}` (clean, mixed-faults, chaos[:RATE])"
                    )
                    .into()),
                },
            })
            .collect::<Result<Vec<_>, Box<dyn Error>>>()?,
    };
    let base = flowtime_bench::experiments::WorkflowExperiment {
        workflows: args.get_parsed("workflows", 5usize)?,
        jobs_per_workflow: args.get_parsed("jobs", 18usize)?,
        adhoc_horizon: args.get_parsed("adhoc-horizon", 600u64)?,
        seed: args.get_parsed("seed", 20180702u64)?,
        ..Default::default()
    };
    let spec = SweepSpec {
        base,
        cluster: flowtime_bench::experiments::testbed_cluster(),
        scenarios,
        schedulers,
        fault_seeds,
        audit: args.has("audit"),
        shard: shard_spec(args)?,
    };
    // Validate the bench axis up front, before spending minutes on the
    // sweep itself.
    let bench_threads = args
        .get("bench-threads")
        .map(|raw| {
            raw.split(',')
                .map(|t| {
                    t.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("--bench-threads wants numbers, got `{t}`").into())
                })
                .collect::<Result<Vec<_>, Box<dyn Error>>>()
        })
        .transpose()?;

    let run = spec.run(threads);
    println!(
        "sweep: {} cells on {} thread(s) in {:.0} ms",
        run.cells, run.threads, run.wall_ms
    );
    for r in &run.report.rollups {
        println!(
            "{:<14} {:<16} miss-rate {:>6.3} ({:>3}/{:<3})  wf-misses {:>3}  adhoc p50/p90/p99 {:>7.0}/{:>7.0}/{:>7.0}s",
            r.scenario,
            r.algo,
            r.deadline_miss_rate,
            r.job_misses,
            r.deadline_jobs,
            r.workflow_misses,
            r.adhoc_p50_s,
            r.adhoc_p90_s,
            r.adhoc_p99_s,
        );
    }
    let name = args.get("out").unwrap_or("sweep");
    flowtime_bench::report::persist(name, &run.report);
    println!("report written to results/{name}.json");

    if let Some(counts) = bench_threads {
        let points = spec
            .bench(name, &counts)
            .map_err(|t| format!("report at {t} threads diverged from {} threads", counts[0]))?;
        for p in &points {
            println!(
                "bench: {:>2} thread(s)  {:>4} cells  {:>8.0} ms",
                p.threads, p.cells, p.wall_ms
            );
        }
        println!("bench points written to results/{name}_bench.json");
    }
    Ok(())
}

fn decompose_cmd(args: &Args) -> CliResult {
    let trace = load_trace(args)?;
    let index = args.get_parsed("index", 0usize)?;
    let slack = args.get_parsed("slack", 6u64)?;
    let sub = trace
        .workload
        .workflows
        .get(index)
        .ok_or_else(|| format!("trace has no workflow #{index}"))?;
    let wf = &sub.workflow;
    let d = decompose(wf, &DecomposeConfig::new(trace.cluster.capacity()))?;
    let slacked = slacked_windows(&d, slack);
    println!(
        "{} `{}`: window [{}, {}), {} jobs, {} level sets, method {:?}",
        wf.id(),
        wf.name(),
        wf.submit_slot(),
        wf.deadline_slot(),
        wf.len(),
        d.sets.len(),
        d.method_used
    );
    for (set_idx, set) in d.sets.iter().enumerate() {
        let w = d.set_windows[set_idx];
        println!(
            "  set {set_idx}: window [{:>5}, {:>5})  min-rt {:>4}  jobs {:?}",
            w.start, w.deadline, d.set_min_runtimes[set_idx], set
        );
    }
    println!("\nper-job milestones (with {slack}-slot slack in parentheses):");
    for (node, (w, s)) in d.windows.iter().zip(&slacked).enumerate() {
        println!(
            "  {:<28} due {:>5} ({:>5})",
            wf.job(node).name(),
            w.deadline,
            s.deadline
        );
    }
    Ok(())
}

/// Connects to a running `flowtimed`. All three daemon subcommands share
/// the `--connect` flag; a typed daemon error surfaces as a nonzero exit
/// with its error code in the message.
fn daemon_connect(args: &Args) -> Result<flowtime_daemon::Client, Box<dyn Error>> {
    let addr = args
        .get("connect")
        .ok_or("--connect <host:port> is required")?;
    Ok(flowtime_daemon::Client::connect(addr)?)
}

/// Parses `TASKS,DUR[,CORES,MB]` into an ad-hoc job spec.
fn parse_adhoc_spec(raw: &str) -> Result<flowtime_sim::AdhocSubmission, Box<dyn Error>> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() != 2 && parts.len() != 4 {
        return Err(format!("--adhoc must be TASKS,DUR or TASKS,DUR,CORES,MB, got `{raw}`").into());
    }
    let num = |s: &str, what: &str| -> Result<u64, Box<dyn Error>> {
        s.trim()
            .parse()
            .map_err(|_| format!("--adhoc {what} must be a positive integer, got `{s}`").into())
    };
    let tasks = num(parts[0], "TASKS")?;
    let dur = num(parts[1], "DUR")?;
    let cores = if parts.len() == 4 {
        num(parts[2], "CORES")?
    } else {
        1
    };
    let mb = if parts.len() == 4 {
        num(parts[3], "MB")?
    } else {
        1024
    };
    Ok(flowtime_sim::AdhocSubmission::new(
        flowtime_dag::JobSpec::new("adhoc", tasks, dur, ResourceVec::new([cores, mb])),
        0,
    ))
}

fn daemon_submit(args: &Args) -> CliResult {
    let retries = args.get_parsed("retries", 0u64)?;
    let request_id = args.get("request-id");
    if retries > 0 && request_id.is_none() {
        return Err(
            "--retries needs --request-id: without an idempotency key a \
                    retried submit can be accepted twice"
                .into(),
        );
    }
    if let Some(rid) = &request_id {
        if rid.is_empty() || rid.len() > 256 {
            return Err("--request-id must be 1..=256 bytes".into());
        }
    }
    let mut client = daemon_connect(args)?;
    let line = if let Some(path) = args.get("workflow-json") {
        let contents =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trimmed = contents.trim();
        // Validate locally so a malformed file fails with a parse error
        // rather than a daemon round trip.
        serde_json::parse(trimmed).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
        format!("{{\"req\":\"submit_workflow\",\"submission\":{trimmed}}}")
    } else if let Some(raw) = args.get("adhoc") {
        let mut sub = parse_adhoc_spec(raw)?;
        sub.arrival_slot = if args.has("arrival") {
            args.get_parsed("arrival", 0u64)?
        } else {
            // Default arrival: the daemon's current virtual slot.
            let status = client.request("{\"req\":\"status\"}")?;
            status
                .get("engine")
                .and_then(|e| e.get("now"))
                .and_then(|v| match v {
                    serde_json::Value::U64(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or(0)
        };
        format!(
            "{{\"req\":\"submit_adhoc\",\"submission\":{}}}",
            serde_json::to_string(&sub)?
        )
    } else {
        return Err("submit needs --adhoc TASKS,DUR[,CORES,MB] or --workflow-json FILE".into());
    };
    // Idempotency key: the daemon dedups retries of the same key and
    // answers `duplicate` with the original sequence number, so a retry
    // after a lost reply can never double-submit.
    let line = match &request_id {
        Some(rid) => line.replacen(
            ",\"submission\":",
            &format!(
                ",\"request_id\":{},\"submission\":",
                serde_json::to_string(rid)?
            ),
            1,
        ),
        None => line,
    };
    let mut attempt = 0u64;
    loop {
        let result: Result<serde_json::Value, Box<dyn Error>> = match attempt {
            0 => client.request(&line).map_err(|e| e.into()),
            // A lost reply leaves the connection in an unknown state:
            // retries reconnect from scratch.
            _ => daemon_connect(args).and_then(|mut c| c.request(&line).map_err(|e| e.into())),
        };
        match result {
            Ok(body) => {
                println!("{}", serde_json::to_string(&body)?);
                return Ok(());
            }
            // The original submit was durable; the retry's `duplicate`
            // reply IS the acknowledgement, carrying the original seq.
            Err(e) => match e.downcast_ref::<flowtime_daemon::ClientError>() {
                Some(flowtime_daemon::ClientError::Daemon { code, data, .. })
                    if code == flowtime_daemon::codes::DUPLICATE =>
                {
                    let sub = data
                        .as_ref()
                        .and_then(|d| d.get("sub"))
                        .map(serde_json::to_string)
                        .transpose()?
                        .unwrap_or_else(|| "null".to_string());
                    println!("{{\"sub\":{sub},\"duplicate\":true}}");
                    return Ok(());
                }
                // Transport trouble: back off and retry if allowed.
                Some(flowtime_daemon::ClientError::Io(_)) if attempt < retries => {
                    attempt += 1;
                    std::thread::sleep(std::time::Duration::from_millis(50 << attempt.min(6)));
                }
                _ => return Err(e),
            },
        }
    }
}

fn daemon_status(args: &Args) -> CliResult {
    let mut client = daemon_connect(args)?;
    let body = client.request("{\"req\":\"status\"}")?;
    println!("{}", serde_json::to_string_pretty(&body)?);
    Ok(())
}

fn daemon_drain(args: &Args) -> CliResult {
    let mut client = daemon_connect(args)?;
    let summary = client.request("{\"req\":\"drain\"}")?;
    eprintln!("drained: {}", serde_json::to_string(&summary)?);
    let outcome = client.request("{\"req\":\"outcome\"}")?;
    let outcome = outcome
        .get("outcome")
        .ok_or("daemon outcome response is missing the `outcome` field")?;
    let rendered = serde_json::to_string(outcome)?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote outcome to {path}");
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn simulate_requires_trace() {
        assert!(dispatch(&argv(&["simulate"])).is_err());
    }

    #[test]
    fn scheduler_factory_knows_all_names() {
        let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
        for name in [
            "flowtime",
            "flowtime-no-ds",
            "edf",
            "fifo",
            "fair",
            "cora",
            "morpheus",
        ] {
            assert!(make_scheduler(name, &cluster, true).is_ok(), "{name}");
        }
        assert!(make_scheduler("nope", &cluster, false).is_err());
    }

    #[test]
    fn generate_simulate_round_trip() {
        let dir = std::env::temp_dir().join("flowtime-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let metrics_path = dir.join("m.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "flowtime",
            "--out",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        let written = std::fs::read_to_string(&metrics_path).unwrap();
        let metrics: Metrics = serde_json::from_str(&written).unwrap();
        assert!(metrics.completed_jobs() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_with_faults_is_deterministic_and_differs_from_baseline() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-f");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        let run = |fault_args: &[&str], out: &std::path::Path| {
            let mut a = vec![
                "simulate",
                "--trace",
                trace_path.to_str().unwrap(),
                "--scheduler",
                "edf",
                "--out",
                out.to_str().unwrap(),
            ];
            a.extend_from_slice(fault_args);
            dispatch(&argv(&a)).unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        // Malformed or orphaned fault flags must error, not silently run
        // unfaulted.
        for bad in [
            vec!["--fault-seed", "abc"],
            vec!["--fault-seed"],
            vec!["--fault-seed", "1", "--churn", "banana"],
            vec!["--misestimate", "0.3"],
        ] {
            let mut a = vec!["simulate", "--trace", trace_path.to_str().unwrap()];
            a.extend_from_slice(&bad);
            assert!(dispatch(&argv(&a)).is_err(), "{bad:?} should be rejected");
        }
        let faults = [
            "--fault-seed",
            "42",
            "--misestimate",
            "0.3",
            "--churn",
            "0.2",
            "--bursts",
            "4",
        ];
        let a = run(&faults, &dir.join("a.json"));
        let b = run(&faults, &dir.join("b.json"));
        let clean = run(&[], &dir.join("c.json"));
        assert_eq!(a, b, "same fault seed must give byte-identical metrics");
        assert_ne!(a, clean, "faulted run should diverge from baseline");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_plan_cache_flag_does_not_change_metrics() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-npc");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "9",
        ]))
        .unwrap();
        let run = |extra: &[&str], out: &std::path::Path| {
            let mut a = vec![
                "simulate",
                "--trace",
                trace_path.to_str().unwrap(),
                "--scheduler",
                "flowtime",
                "--out",
                out.to_str().unwrap(),
            ];
            a.extend_from_slice(extra);
            dispatch(&argv(&a)).unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let cached = run(&[], &dir.join("a.json"));
        let uncached = run(&["--no-plan-cache"], &dir.join("b.json"));
        assert_eq!(
            cached, uncached,
            "the plan cache must never change scheduling decisions"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_trace_out_then_audit_round_trip() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-audit");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let decisions_path = dir.join("d.jsonl");
        let outcome_path = dir.join("o.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "edf",
            "--trace-out",
            decisions_path.to_str().unwrap(),
            "--outcome-out",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        // The offline auditor certifies the artifacts the run produced.
        dispatch(&argv(&[
            "audit",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        // Auditing against the wrong scenario (faults the run never saw)
        // must fail.
        assert!(dispatch(&argv(&[
            "audit",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--fault-seed",
            "42",
            "--submit-delay",
            "5",
        ]))
        .is_err());
        // Missing inputs are reported, not panicked on.
        assert!(dispatch(&argv(&["audit", "--trace", trace_path.to_str().unwrap()])).is_err());
        assert!(dispatch(&argv(&[
            "audit",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            "/nonexistent/d.jsonl",
            "--outcome",
            outcome_path.to_str().unwrap(),
        ]))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_trace_out_then_audit_without_restating_pods() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-shard-audit");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let decisions_path = dir.join("d.jsonl");
        let outcome_path = dir.join("o.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "3",
            "--cores",
            "64",
            "--seed",
            "5",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "edf",
            "--pods",
            "2",
            "--trace-out",
            decisions_path.to_str().unwrap(),
            "--outcome-out",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        // One trace per pod, each self-describing: the audit needs no
        // --pods/--placer because the header records the shard provenance.
        for pod in 0..2 {
            let pod_trace = format!("{}.pod{pod}", decisions_path.to_str().unwrap());
            assert!(std::path::Path::new(&pod_trace).exists());
            dispatch(&argv(&[
                "audit",
                "--trace",
                trace_path.to_str().unwrap(),
                "--decision-trace",
                &pod_trace,
                "--outcome",
                outcome_path.to_str().unwrap(),
            ]))
            .unwrap();
            // explain reads the same provenance and diagnoses the pod slice.
            dispatch(&argv(&[
                "explain",
                "--trace",
                trace_path.to_str().unwrap(),
                "--decision-trace",
                &pod_trace,
                "--outcome",
                outcome_path.to_str().unwrap(),
            ]))
            .unwrap();
        }
        // Explicit flags are allowed only when they agree with the header.
        let pod0 = format!("{}.pod0", decisions_path.to_str().unwrap());
        assert!(dispatch(&argv(&[
            "audit",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            &pod0,
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--pods",
            "3",
        ]))
        .is_err());
        // A sharded recording cannot seed a whatif base.
        assert!(dispatch(&argv(&[
            "whatif",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            &pod0,
            "--outcome",
            outcome_path.to_str().unwrap(),
        ]))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_round_trip_and_scenario_mismatch() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-explain");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let decisions_path = dir.join("d.jsonl");
        let outcome_path = dir.join("o.json");
        let report_path = dir.join("report.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "fifo",
            "--trace-out",
            decisions_path.to_str().unwrap(),
            "--outcome-out",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "explain",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--out",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report = std::fs::read_to_string(&report_path).unwrap();
        let parsed: flowtime_sim::ExplainReport = serde_json::from_str(&report).unwrap();
        assert_eq!(parsed.scheduler.to_lowercase(), "fifo");
        assert!(parsed.events_checked > 0);
        // Explaining against a scenario the run never saw must be refused —
        // the auditor underneath rejects the mismatch.
        assert!(dispatch(&argv(&[
            "explain",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--fault-seed",
            "42",
            "--submit-delay",
            "5",
        ]))
        .is_err());
        // Missing inputs are reported, not panicked on.
        assert!(dispatch(&argv(&["explain", "--trace", trace_path.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn whatif_identity_cross_scheduler_and_bad_flags() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-whatif");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let decisions_path = dir.join("d.jsonl");
        let outcome_path = dir.join("o.json");
        let diff_path = dir.join("diff.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "edf",
            "--trace-out",
            decisions_path.to_str().unwrap(),
            "--outcome-out",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        // No overrides: the alt side replays the recorded policy, so the
        // certified diff must be the identical-policy no-op.
        dispatch(&argv(&[
            "whatif",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--out",
            diff_path.to_str().unwrap(),
        ]))
        .unwrap();
        let diff: flowtime_sim::WhatIfDiff =
            serde_json::from_str(&std::fs::read_to_string(&diff_path).unwrap()).unwrap();
        assert!(diff.identical, "identical policy must be an empty diff");
        assert!(diff.jobs.is_empty() && diff.first_divergence.is_none());
        // A different scheduler yields a certified two-sided diff.
        dispatch(&argv(&[
            "whatif",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--scheduler",
            "fifo",
            "--out",
            diff_path.to_str().unwrap(),
        ]))
        .unwrap();
        let diff: flowtime_sim::WhatIfDiff =
            serde_json::from_str(&std::fs::read_to_string(&diff_path).unwrap()).unwrap();
        assert_eq!(diff.base_policy.to_lowercase(), "edf");
        assert_eq!(diff.alt_policy.to_lowercase(), "fifo");
        // A sharded alternative diffs at workflow granularity.
        dispatch(&argv(&[
            "whatif",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions_path.to_str().unwrap(),
            "--outcome",
            outcome_path.to_str().unwrap(),
            "--alt-pods",
            "2",
        ]))
        .unwrap();
        // Malformed requests are reported, not panicked on.
        for bad in [
            vec!["--scheduler", "nonsense"],
            vec!["--alt-pods", "0"],
            vec!["--alt-placer", "demand"],
            vec!["--alt-pods", "2", "--alt-placer", "roundrobin"],
            vec!["--alt-shed-policy", "nonsense"],
        ] {
            let mut a = vec![
                "whatif",
                "--trace",
                trace_path.to_str().unwrap(),
                "--decision-trace",
                decisions_path.to_str().unwrap(),
                "--outcome",
                outcome_path.to_str().unwrap(),
            ];
            a.extend_from_slice(&bad);
            assert!(dispatch(&argv(&a)).is_err(), "{bad:?} should be rejected");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_recovery_round_trip_and_bad_paths() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-rec");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        // Orphaned or malformed recovery flags must error, not silently
        // run without the requested failures.
        for bad in [
            vec!["--task-fail-rate", "0.2"],
            vec!["--fault-seed", "1", "--task-fail-rate", "high"],
            vec!["--fault-seed", "1", "--max-retries", "-2"],
            vec!["--fault-seed", "1", "--shed-policy", "sometimes"],
            vec!["--fault-seed", "1", "--shed-policy", "delay:x"],
        ] {
            let mut a = vec!["simulate", "--trace", trace_path.to_str().unwrap()];
            a.extend_from_slice(&bad);
            assert!(dispatch(&argv(&a)).is_err(), "{bad:?} should be rejected");
        }
        // A chaos run self-audits its decision trace (certify_with_recovery
        // inside `simulate`) and the standalone audit command agrees when
        // handed the same flags — and only then.
        let decisions = dir.join("d.jsonl");
        let outcome = dir.join("o.json");
        let chaos = [
            "--fault-seed",
            "42",
            "--task-fail-rate",
            "0.3",
            "--node-crash",
            "0.4",
            "--node-crash-period",
            "30",
            "--straggler-rate",
            "0.2",
        ];
        let mut a = vec![
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "edf",
            "--trace-out",
            decisions.to_str().unwrap(),
            "--outcome-out",
            outcome.to_str().unwrap(),
        ];
        a.extend_from_slice(&chaos);
        dispatch(&argv(&a)).unwrap();
        let mut audit = vec![
            "audit",
            "--trace",
            trace_path.to_str().unwrap(),
            "--decision-trace",
            decisions.to_str().unwrap(),
            "--outcome",
            outcome.to_str().unwrap(),
        ];
        let plain = audit.clone();
        audit.extend_from_slice(&chaos);
        dispatch(&argv(&audit)).unwrap();
        // Auditing a chaos run while omitting its recovery flags must fail:
        // the trace contains kills the clean scenario cannot explain.
        assert!(dispatch(&argv(&plain)).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_single_pod_simulate_matches_unsharded_byte_for_byte() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-shard1");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        let run = |extra: &[&str], tag: &str| {
            let outcome = dir.join(format!("{tag}-o.json"));
            let decisions = dir.join(format!("{tag}-d.jsonl"));
            let mut a = vec![
                "simulate",
                "--trace",
                trace_path.to_str().unwrap(),
                "--scheduler",
                "flowtime",
                "--outcome-out",
                outcome.to_str().unwrap(),
                "--trace-out",
                decisions.to_str().unwrap(),
            ];
            a.extend_from_slice(extra);
            dispatch(&argv(&a)).unwrap();
            (
                std::fs::read_to_string(outcome).unwrap(),
                std::fs::read_to_string(decisions).unwrap(),
            )
        };
        let (plain_outcome, plain_trace) = run(&[], "plain");
        let (pod_outcome, pod_trace) = run(&["--pods", "1"], "pod");
        assert_eq!(
            plain_outcome, pod_outcome,
            "--pods 1 outcome must not differ"
        );
        assert_eq!(
            plain_trace, pod_trace,
            "--pods 1 decision trace must not differ"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_multi_pod_simulate_writes_certified_sharded_outcome() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-shardk");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        let outcome_path = dir.join("o.json");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "2",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "simulate",
            "--trace",
            trace_path.to_str().unwrap(),
            "--scheduler",
            "edf",
            "--pods",
            "2",
            "--placer",
            "first-fit",
            "--outcome-out",
            outcome_path.to_str().unwrap(),
        ]))
        .unwrap();
        let raw = std::fs::read_to_string(&outcome_path).unwrap();
        let outcome: flowtime_sim::ShardedOutcome = serde_json::from_str(&raw).unwrap();
        assert_eq!(outcome.pods.len(), 2);
        assert_eq!(outcome.placement.pods, 2);
        assert_eq!(outcome.placement.placer, flowtime_sim::Placer::FirstFit);
        assert!(outcome.is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_simulate_rejects_bad_flag_combinations() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-shardbad");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "1",
            "--cores",
            "64",
            "--seed",
            "3",
        ]))
        .unwrap();
        for bad in [
            vec!["--pods", "0"],
            vec!["--pods"],
            vec!["--pods", "two"],
            vec!["--placer", "demand"],
            vec!["--pods", "2", "--placer", "roundrobin"],
            vec!["--pods", "2", "--gantt"],
            vec!["--pods", "2", "--out", "/tmp/m.json"],
        ] {
            let mut a = vec!["simulate", "--trace", trace_path.to_str().unwrap()];
            a.extend_from_slice(&bad);
            assert!(dispatch(&argv(&a)).is_err(), "{bad:?} should be rejected");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_sweep_records_the_shard_spec() {
        dispatch(&argv(&[
            "sweep",
            "--workflows",
            "1",
            "--jobs",
            "4",
            "--adhoc-horizon",
            "20",
            "--seeds",
            "0..2",
            "--schedulers",
            "edf",
            "--scenarios",
            "clean",
            "--pods",
            "2",
            "--audit",
            "--out",
            "cli-shard-sweep-test",
        ]))
        .unwrap();
        let path = std::path::Path::new("results/cli-shard-sweep-test.json");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"shard\""));
        assert!(written.contains("\"pods\":2") || written.contains("\"pods\": 2"));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir("results");
    }

    #[test]
    fn seed_ranges_parse_as_half_open() {
        assert_eq!(parse_seed_range("0..3").unwrap(), vec![0, 1, 2]);
        assert_eq!(parse_seed_range("7..9").unwrap(), vec![7, 8]);
        for bad in ["3", "3..3", "5..2", "a..b", ""] {
            assert!(parse_seed_range(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sweep_rejects_malformed_axes() {
        for bad in [
            vec!["sweep", "--seeds", "oops"],
            vec!["sweep", "--schedulers", "flowtime,unknown"],
            vec!["sweep", "--scenarios", "apocalypse"],
            vec!["sweep", "--scenarios", "chaos:banana"],
            vec!["sweep", "--bench-threads", "1,x"],
        ] {
            assert!(dispatch(&argv(&bad)).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn sweep_runs_a_tiny_grid_and_persists_the_report() {
        dispatch(&argv(&[
            "sweep",
            "--workflows",
            "1",
            "--jobs",
            "4",
            "--adhoc-horizon",
            "20",
            "--seeds",
            "0..2",
            "--schedulers",
            "edf,fifo",
            "--scenarios",
            "clean,mixed-faults",
            "--threads",
            "2",
            "--out",
            "cli-sweep-test",
        ]))
        .unwrap();
        let path = std::path::Path::new("results/cli-sweep-test.json");
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"rollups\""));
        assert!(written.contains("EDF") && written.contains("FIFO"));
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_dir("results");
    }

    #[test]
    fn decompose_prints_windows() {
        let dir = std::env::temp_dir().join("flowtime-cli-test-d");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.jsonl");
        dispatch(&argv(&[
            "generate",
            "--out",
            trace_path.to_str().unwrap(),
            "--workflows",
            "1",
            "--seed",
            "5",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "decompose",
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(dispatch(&argv(&[
            "decompose",
            "--trace",
            trace_path.to_str().unwrap(),
            "--index",
            "99",
        ]))
        .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `submit --request-id --retries`: a resubmission of the same key is
    /// answered `duplicate` and treated as success; `--retries` without a
    /// key is rejected up front.
    #[test]
    fn daemon_submit_request_id_dedups_and_retries_need_a_key() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let session = flowtime_daemon::Session::new(flowtime_daemon::SessionConfig {
                cluster: flowtime_sim::ClusterConfig::new(
                    flowtime_dag::ResourceVec::new([8, 32_768]),
                    10.0,
                ),
                scheduler: "fifo".to_string(),
                max_slots: 100_000,
                trace_capacity: 1 << 12,
                snapshot_path: None,
                pods: 0,
                placer: None,
            })
            .expect("config");
            flowtime_daemon::serve(listener, session, None)
                .expect("server runs")
                .log()
                .len()
        });

        let submit = |extra: &[&str]| {
            let mut base = vec![
                "submit",
                "--connect",
                &addr,
                "--adhoc",
                "1,10",
                "--arrival",
                "0",
            ];
            base.extend_from_slice(extra);
            dispatch(&argv(&base))
        };
        submit(&["--request-id", "k1", "--retries", "2"]).expect("first submit");
        // Same key again: the daemon's `duplicate` reply is a success.
        submit(&["--request-id", "k1"]).expect("duplicate resubmit is a success");
        // Retries without an idempotency key are refused client-side.
        assert!(submit(&["--retries", "2"]).is_err());
        // A fresh key is a fresh submission.
        submit(&["--request-id", "k2"]).expect("second submit");

        let mut client = flowtime_daemon::Client::connect(&addr).expect("connect");
        client.request("{\"req\":\"shutdown\"}").expect("shutdown");
        let log_len = server.join().expect("server thread");
        assert_eq!(log_len, 2, "the duplicate never double-submitted");
    }
}
