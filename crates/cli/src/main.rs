//! `flowtime-cli` — run FlowTime scheduling simulations from the command
//! line.
//!
//! ```text
//! flowtime-cli generate --out trace.jsonl [--workflows N] [--seed S] [--cores C]
//! flowtime-cli simulate --trace trace.jsonl --scheduler flowtime [--out metrics.json]
//! flowtime-cli compare  --trace trace.jsonl
//! flowtime-cli decompose --trace trace.jsonl [--index 0] [--slack 6]
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
