//! Tiny dependency-free flag parser.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` into flags (`--key value`) and positionals. A flag
    /// followed by another flag or nothing gets an empty value (presence
    /// flag).
    pub fn parse(argv: &[String]) -> Args {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                out.flags.insert(key.to_string(), value.unwrap_or_default());
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        out
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed value of a flag: absent flags yield `default`, present flags
    /// must parse. A bare `--key` or a malformed value is an error, never a
    /// silent fallback to the default (a typo'd `--workflows banana` must
    /// not quietly run the default experiment).
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{key} requires a valid value, got `{raw}`")),
        }
    }

    /// True if the flag is present (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&[
            "simulate", "--trace", "t.jsonl", "--quiet", "--n", "5",
        ]));
        assert_eq!(a.positional, vec!["simulate"]);
        assert_eq!(a.get("trace"), Some("t.jsonl"));
        assert!(a.has("quiet"));
        assert_eq!(a.get_parsed("n", 0u64), Ok(5));
        assert_eq!(a.get_parsed("missing", 7u64), Ok(7));
    }

    #[test]
    fn malformed_values_error_instead_of_defaulting() {
        let a = Args::parse(&argv(&["--n", "banana", "--quiet"]));
        assert!(a.get_parsed("n", 0u64).is_err());
        // A bare presence flag parsed as a number is also an error.
        assert!(a.get_parsed("quiet", 0u64).is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_presence() {
        let a = Args::parse(&argv(&["--a", "--b", "x"]));
        assert!(a.has("a"));
        assert_eq!(a.get("a"), Some(""));
        assert_eq!(a.get("b"), Some("x"));
    }

    #[test]
    fn empty_input() {
        let a = Args::parse(&[]);
        assert!(a.positional.is_empty());
        assert!(!a.has("anything"));
    }
}
