//! Tiny dependency-free flag parser.

use std::collections::HashMap;

/// Parsed `--flag value` pairs plus positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `argv` into flags (`--key value`) and positionals. A flag
    /// followed by another flag or nothing gets an empty value (presence
    /// flag).
    pub fn parse(argv: &[String]) -> Args {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                out.flags.insert(key.to_string(), value.unwrap_or_default());
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        out
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed numeric value of a flag, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// True if the flag is present (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&argv(&[
            "simulate", "--trace", "t.jsonl", "--quiet", "--n", "5",
        ]));
        assert_eq!(a.positional, vec!["simulate"]);
        assert_eq!(a.get("trace"), Some("t.jsonl"));
        assert!(a.has("quiet"));
        assert_eq!(a.get_or("n", 0u64), 5);
        assert_eq!(a.get_or("missing", 7u64), 7);
    }

    #[test]
    fn flag_followed_by_flag_is_presence() {
        let a = Args::parse(&argv(&["--a", "--b", "x"]));
        assert!(a.has("a"));
        assert_eq!(a.get("a"), Some(""));
        assert_eq!(a.get("b"), Some("x"));
    }

    #[test]
    fn empty_input() {
        let a = Args::parse(&[]);
        assert!(a.positional.is_empty());
        assert!(!a.has("anything"));
    }
}
