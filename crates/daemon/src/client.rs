//! A minimal blocking client for the `flowtimed` protocol, shared by the
//! CLI's `submit`/`status`/`drain` subcommands and the socket-level
//! tests.

use crate::protocol::codes;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A client-side failure: either transport trouble or a typed protocol
/// error relayed from the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect, send, or receive.
    Io(std::io::Error),
    /// The daemon's response was not a valid protocol response line.
    BadResponse(String),
    /// The daemon answered with `{"err": ...}`.
    Daemon {
        /// The typed error code (one of [`codes`]).
        code: String,
        /// Human-readable detail.
        detail: String,
        /// Machine-readable payload (e.g. the original sequence number
        /// carried by a `duplicate` reply), when the error has one.
        data: Option<Value>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::BadResponse(d) => write!(f, "unintelligible response: {d}"),
            ClientError::Daemon { code, detail, .. } => {
                write!(f, "daemon error [{code}]: {detail}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A persistent connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(ClientError::Io)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and returns the raw response line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn request_line(&mut self, line: &str) -> Result<String, ClientError> {
        let stream = self.reader.get_mut();
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(ClientError::Io)?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(ClientError::Io)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and parses the response: the `ok` body on
    /// success, a typed [`ClientError::Daemon`] on a protocol error.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn request(&mut self, line: &str) -> Result<Value, ClientError> {
        let response = self.request_line(line)?;
        parse_response(&response)
    }
}

/// Splits a raw response line into the `ok` body or a typed error.
///
/// # Errors
///
/// [`ClientError::BadResponse`] for lines that are not protocol
/// responses, [`ClientError::Daemon`] for `{"err": ...}` lines.
pub fn parse_response(line: &str) -> Result<Value, ClientError> {
    let value =
        serde_json::parse(line).map_err(|e| ClientError::BadResponse(format!("{e}: {line}")))?;
    if let Some(body) = value.get("ok") {
        return Ok(body.clone());
    }
    if let Some(err) = value.get("err") {
        let code = err
            .get("code")
            .and_then(Value::as_str)
            .unwrap_or(codes::ENGINE_ERROR)
            .to_string();
        let detail = err
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let data = err.get("data").cloned();
        return Err(ClientError::Daemon { code, detail, data });
    }
    Err(ClientError::BadResponse(line.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_response_splits_ok_and_err() {
        let ok = parse_response("{\"ok\":{\"now\":4}}").unwrap();
        assert_eq!(
            ok.get("now").and_then(|v| match v {
                Value::U64(n) => Some(*n),
                _ => None,
            }),
            Some(4)
        );
        match parse_response("{\"err\":{\"code\":\"late-arrival\",\"detail\":\"x\"}}") {
            Err(ClientError::Daemon { code, .. }) => assert_eq!(code, "late-arrival"),
            other => panic!("expected daemon error, got {other:?}"),
        }
        assert!(matches!(
            parse_response("not json"),
            Err(ClientError::BadResponse(_))
        ));
        assert!(matches!(
            parse_response("{\"neither\":1}"),
            Err(ClientError::BadResponse(_))
        ));
    }
}
