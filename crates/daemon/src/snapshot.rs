//! Crash-recovery snapshots for daemon sessions.
//!
//! # Format (`flowtime-snapshot-v1`)
//!
//! A snapshot file is exactly two lines:
//!
//! ```text
//! flowtime-snapshot-v1 fnv1a=<16 lowercase hex digits>
//! {"config":...,"log":...,"now":N,"next_seq":M}
//! ```
//!
//! Line 1 is the magic header carrying an FNV-1a 64-bit checksum of line
//! 2's exact bytes (newline excluded). Line 2 is the serde form of
//! [`SnapshotBody`]. The body deliberately contains **no engine state**:
//! because a session is a deterministic function of its submission log
//! and virtual clock, restoring replays the log through a fresh engine
//! and advances to `now` — byte-identical recovery from first
//! principles, with the checksum catching torn or tampered files before
//! any replay work happens.

use crate::session::SessionConfig;
use flowtime_sim::serde_skip::zero_u64;
use flowtime_sim::SubmissionLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Magic prefix of a valid snapshot header line.
pub const MAGIC: &str = "flowtime-snapshot-v1";

/// Skip-at-default predicate for the idempotency-key table.
pub fn map_is_empty(m: &BTreeMap<String, u64>) -> bool {
    m.is_empty()
}

/// Everything needed to rebuild a session deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotBody {
    /// Session parameters (cluster, scheduler, horizon, trace capacity).
    pub config: SessionConfig,
    /// The full submission log, cancellations included.
    pub log: SubmissionLog,
    /// Virtual slot the session had reached when the snapshot was taken.
    pub now: u64,
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// First WAL segment *not* covered by this snapshot (0 when the
    /// session runs without a WAL; skipped then, so legacy snapshot
    /// bytes are unchanged).
    #[serde(default, skip_serializing_if = "zero_u64")]
    pub wal_segment: u64,
    /// Idempotency keys already seen → the sequence number each was
    /// assigned. Skipped when empty.
    #[serde(default, skip_serializing_if = "map_is_empty")]
    pub request_ids: BTreeMap<String, u64>,
}

/// Why a snapshot could not be loaded. Each variant maps onto one typed
/// protocol error code.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a two-line `flowtime-snapshot-v1` document.
    Format(String),
    /// The body bytes do not match the header checksum.
    Checksum { expected: u64, actual: u64 },
    /// The body is well-framed but not a valid [`SnapshotBody`].
    Parse(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Format(d) => write!(f, "snapshot format error: {d}"),
            SnapshotError::Checksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:016x}, body hashes to {actual:016x}"
            ),
            SnapshotError::Parse(d) => write!(f, "snapshot body error: {d}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over raw bytes — tiny, dependency-free, and stable.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders the complete two-line snapshot document (header + body) as
/// the exact bytes [`save`] would write — the WAL's fault-injected
/// writer goes through this so a snapshot written under a fault plan is
/// framed identically to one written directly.
///
/// # Errors
///
/// [`SnapshotError::Parse`] if the body fails to serialize.
pub fn render(body: &SnapshotBody) -> Result<String, SnapshotError> {
    let body_line = serde_json::to_string(body).map_err(|e| SnapshotError::Parse(e.to_string()))?;
    Ok(format!(
        "{MAGIC} fnv1a={:016x}\n{body_line}\n",
        fnv1a(body_line.as_bytes())
    ))
}

/// Serializes `body` to `path` atomically (write temp file, then rename)
/// and returns the byte length written.
///
/// # Errors
///
/// [`SnapshotError::Io`] or [`SnapshotError::Parse`] (serialization).
pub fn save(path: impl AsRef<Path>, body: &SnapshotBody) -> Result<u64, SnapshotError> {
    let path = path.as_ref();
    let contents = render(body)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(SnapshotError::Io)?;
        f.write_all(contents.as_bytes())
            .map_err(SnapshotError::Io)?;
        f.sync_all().map_err(SnapshotError::Io)?;
    }
    fs::rename(&tmp, path).map_err(SnapshotError::Io)?;
    Ok(contents.len() as u64)
}

/// Loads and validates a snapshot file.
///
/// # Errors
///
/// Any [`SnapshotError`] variant; corruption is always a typed error,
/// never a panic or a silently-wrong session.
pub fn load(path: impl AsRef<Path>) -> Result<SnapshotBody, SnapshotError> {
    let contents = fs::read_to_string(path.as_ref()).map_err(SnapshotError::Io)?;
    let mut lines = contents.lines();
    let header = lines
        .next()
        .ok_or_else(|| SnapshotError::Format("empty file".to_string()))?;
    let body_line = lines
        .next()
        .ok_or_else(|| SnapshotError::Format("missing body line".to_string()))?;
    if lines.next().is_some_and(|l| !l.is_empty()) {
        return Err(SnapshotError::Format(
            "trailing content after body".to_string(),
        ));
    }
    let checksum_field = header
        .strip_prefix(MAGIC)
        .and_then(|rest| rest.trim().strip_prefix("fnv1a="))
        .ok_or_else(|| {
            SnapshotError::Format(format!("header is not a `{MAGIC} fnv1a=...` line"))
        })?;
    let expected = u64::from_str_radix(checksum_field, 16)
        .map_err(|_| SnapshotError::Format("checksum is not 16 hex digits".to_string()))?;
    let actual = fnv1a(body_line.as_bytes());
    if expected != actual {
        return Err(SnapshotError::Checksum { expected, actual });
    }
    let value = serde_json::parse(body_line).map_err(|e| SnapshotError::Parse(e.to_string()))?;
    serde_json::from_value(&value).map_err(|e| SnapshotError::Parse(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtime_dag::ResourceVec;
    use flowtime_sim::ClusterConfig;

    fn body() -> SnapshotBody {
        SnapshotBody {
            config: SessionConfig {
                cluster: ClusterConfig::new(ResourceVec::new([8, 65536]), 10.0),
                scheduler: "flowtime".to_string(),
                max_slots: 1000,
                trace_capacity: 64,
                snapshot_path: None,
                pods: 0,
                placer: None,
            },
            log: SubmissionLog::new(),
            now: 17,
            next_seq: 3,
            wal_segment: 0,
            request_ids: BTreeMap::new(),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("flowtime-snap-test-rt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        save(&path, &body()).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.now, 17);
        assert_eq!(loaded.next_seq, 3);
        assert_eq!(loaded.config, body().config);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let dir = std::env::temp_dir().join("flowtime-snap-test-bad");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        save(&path, &body()).unwrap();

        // Flip a byte in the body: checksum mismatch.
        let good = fs::read_to_string(&path).unwrap();
        fs::write(&path, good.replace("\"now\":17", "\"now\":18")).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Checksum { .. })));

        // Mangle the header: format error.
        fs::write(
            &path,
            format!("not-a-snapshot\n{}", good.lines().nth(1).unwrap()),
        )
        .unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Format(_))));

        // Truncate to one line: format error.
        fs::write(&path, good.lines().next().unwrap()).unwrap();
        assert!(matches!(load(&path), Err(SnapshotError::Format(_))));

        // Missing file: io error.
        assert!(matches!(
            load(dir.join("absent.snap")),
            Err(SnapshotError::Io(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
