//! `flowtimed` — the FlowTime online-submission daemon.
//!
//! ```text
//! flowtimed [--listen ADDR] [--scheduler NAME] [--cores N] [--mem-mb N]
//!           [--slot-seconds F] [--max-slots N] [--trace-capacity N]
//!           [--pods K] [--placer NAME]
//!           [--snapshot PATH] [--snapshot-every N]
//!           [--wal-dir DIR] [--fsync always|batch:N|none]
//!           [--keep-snapshots N] [--chaos-kill-after N[:BYTES]]
//! ```
//!
//! With `--wal-dir DIR` the daemon is crash-consistent: every accepted
//! submission, cancel, tick, and drain is appended to a checksummed
//! write-ahead log (synced per `--fsync`) *before* its reply is written,
//! and startup recovers the session from the newest valid snapshot in
//! the directory plus a replay of the WAL tail — torn tails are
//! truncated at the last valid record and reported, never a panic.
//! Snapshots (periodic via `--snapshot-every`, or explicit `snapshot`
//! requests) become WAL compaction points; `--keep-snapshots` bounds the
//! retained generations. `--chaos-kill-after` is the kill-9 harness's
//! deterministic crash point: the process aborts during the Nth WAL
//! append, optionally after writing only BYTES bytes of it.
//!
//! With `--snapshot PATH` (and no `--wal-dir`): legacy mode — if the
//! file exists at startup the session is restored from it; the running
//! session persists a fresh snapshot there every `--snapshot-every`
//! requests and on explicit `snapshot` requests. All argument errors are
//! typed and exit nonzero; nothing defaults silently on malformed input.

use flowtime_daemon::{serve, snapshot, FsyncPolicy, Session, SessionConfig, WalConfig};
use flowtime_dag::ResourceVec;
use flowtime_sim::ClusterConfig;
use std::collections::HashMap;
use std::net::TcpListener;
use std::process::ExitCode;

/// `--key value` pairs; a bare `--key` holds an empty value.
fn parse_flags(argv: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let Some(key) = argv[i].strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{}`", argv[i]));
        };
        let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
        if value.is_some() {
            i += 1;
        }
        flags.insert(key.to_string(), value.unwrap_or_default());
        i += 1;
    }
    Ok(flags)
}

/// Absent flags yield `default`; present flags must parse — a typo'd
/// value is an error, never a silent fallback.
fn get_parsed<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key} requires a valid value, got `{raw}`")),
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "flowtimed: FlowTime online-submission daemon\n\n\
             Options:\n  \
             --listen ADDR        listen address (default 127.0.0.1:7171)\n  \
             --scheduler NAME     flowtime|cora|edf|fair|fifo|morpheus (default flowtime)\n  \
             --cores N            cluster cores (default 64)\n  \
             --mem-mb N           cluster memory in MB (default 262144)\n  \
             --slot-seconds F     seconds per scheduling slot (default 10)\n  \
             --max-slots N        virtual-time horizon (default 100000)\n  \
             --trace-capacity N   decision-trace ring size (default 4096)\n  \
             --pods K             shard the cluster into K pods (default 1)\n  \
             --placer NAME        firstfit|worstfit|demand pod placement (needs --pods > 1)\n  \
             --snapshot PATH      snapshot file; restored at startup if present\n  \
             --snapshot-every N   snapshot every N requests (default 256, 0 disables)\n  \
             --wal-dir DIR        write-ahead log directory (crash-consistent mode)\n  \
             --fsync POLICY       always|batch:N|none (default always; needs --wal-dir)\n  \
             --keep-snapshots N   WAL snapshot generations to retain (default 2)\n  \
             --chaos-kill-after N[:BYTES]  abort during the Nth WAL append (chaos harness)"
        );
        return Ok(());
    }
    let flags = parse_flags(&argv)?;
    for key in flags.keys() {
        if !matches!(
            key.as_str(),
            "listen"
                | "scheduler"
                | "cores"
                | "mem-mb"
                | "slot-seconds"
                | "max-slots"
                | "trace-capacity"
                | "pods"
                | "placer"
                | "snapshot"
                | "snapshot-every"
                | "wal-dir"
                | "fsync"
                | "keep-snapshots"
                | "chaos-kill-after"
        ) {
            return Err(format!("unknown flag --{key}"));
        }
    }

    let listen = flags
        .get("listen")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let config = SessionConfig {
        cluster: ClusterConfig::new(
            ResourceVec::new([
                get_parsed(&flags, "cores", 64u64)?,
                get_parsed(&flags, "mem-mb", 262_144u64)?,
            ]),
            get_parsed(&flags, "slot-seconds", 10.0f64)?,
        ),
        scheduler: flags
            .get("scheduler")
            .cloned()
            .unwrap_or_else(|| "flowtime".to_string()),
        max_slots: get_parsed(&flags, "max-slots", 100_000u64)?,
        trace_capacity: get_parsed(&flags, "trace-capacity", 4096u64)?,
        snapshot_path: flags.get("snapshot").cloned(),
        pods: get_parsed(&flags, "pods", 0u64)?,
        placer: flags.get("placer").cloned(),
    };
    let snapshot_every = match get_parsed(&flags, "snapshot-every", 256u64)? {
        0 => None,
        n => Some(n),
    };

    let fsync: FsyncPolicy = get_parsed(&flags, "fsync", FsyncPolicy::Always)?;
    let keep_snapshots = get_parsed(&flags, "keep-snapshots", 2u64)?;
    if keep_snapshots == 0 {
        return Err("--keep-snapshots must be at least 1".to_string());
    }
    let chaos_kill = match flags.get("chaos-kill-after") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|e: String| format!("--chaos-kill-after: {e}"))?,
        ),
    };
    for dependent in ["fsync", "keep-snapshots", "chaos-kill-after"] {
        if flags.contains_key(dependent) && !flags.contains_key("wal-dir") {
            return Err(format!("--{dependent} requires --wal-dir"));
        }
    }

    let session = match flags.get("wal-dir") {
        Some(dir) => {
            let mut wal_config = WalConfig::new(dir);
            wal_config.fsync = fsync;
            wal_config.keep_snapshots = keep_snapshots;
            wal_config.chaos_kill = chaos_kill;
            let (session, report) = Session::recover(config, wal_config, None)
                .map_err(|e| format!("wal recovery failed: {e}"))?;
            if report.fresh {
                eprintln!("flowtimed: started fresh WAL in {dir} (fsync={fsync})");
            } else {
                eprintln!(
                    "flowtimed: recovered from {dir} at virtual slot {} ({} records replayed{}{})",
                    session.now(),
                    report.records_replayed,
                    match &report.snapshot {
                        Some(s) => format!(", snapshot {s}"),
                        None => String::new(),
                    },
                    match &report.tail {
                        Some(t) => format!(
                            ", torn tail truncated at segment {} offset {} ({} bytes dropped: {})",
                            t.segment, t.offset, t.dropped_bytes, t.defect
                        ),
                        None => String::new(),
                    },
                );
            }
            session
        }
        None => match &config.snapshot_path {
            Some(path) if std::path::Path::new(path).exists() => {
                let body = snapshot::load(path).map_err(|e| e.to_string())?;
                let session = Session::restore(body).map_err(|e| e.to_string())?;
                eprintln!(
                    "flowtimed: restored session from {path} at virtual slot {}",
                    session.now()
                );
                session
            }
            _ => Session::new(config).map_err(|e| e.to_string())?,
        },
    };

    let listener = TcpListener::bind(&listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    eprintln!(
        "flowtimed: listening on {}",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    serve(listener, session, snapshot_every).map_err(|e| format!("server error: {e}"))?;
    eprintln!("flowtimed: shutdown requested, exiting");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("flowtimed: error: {e}");
            ExitCode::FAILURE
        }
    }
}
