//! Crash-consistent write-ahead log for daemon sessions.
//!
//! # Format (`flowtime-wal-v1`)
//!
//! A WAL directory holds numbered **segments** (`wal-000001.log`,
//! `wal-000002.log`, ...) and **snapshots** (`snap-000001.snap`, named
//! after the segment they sealed). Each segment begins with a one-line
//! header:
//!
//! ```text
//! flowtime-wal-v1 segment=000001
//! ```
//!
//! followed by length-prefixed, checksummed NDJSON records:
//!
//! ```text
//! <len> <fnv1a 16 hex> <json>\n
//! ```
//!
//! where `len` is the byte length of `<json>` and the checksum is FNV-1a
//! 64 over exactly those bytes. The framing is self-synchronizing from
//! the front only — recovery reads records in order and stops at the
//! first defect. In the **final** segment a defect is a *torn tail*
//! (the crash window): the file is truncated back to the last
//! checksum-valid record and recovery proceeds, reporting what was
//! dropped. A defect in any earlier segment can only be real corruption
//! of already-sealed history and is a typed [`WalError::Corrupt`], never
//! a silent truncation and never a panic.
//!
//! # Records and durability ordering
//!
//! Every state-changing request a [`crate::Session`] accepts —
//! submissions, cancellations, ticks, the drain — is appended here
//! **before** the session mutates its in-memory state and before the
//! reply is written. A reply therefore implies durability (under the
//! configured [`FsyncPolicy`]); a crash can only lose requests that were
//! never acknowledged. Segment 1 opens with a [`WalRecord::Genesis`]
//! carrying the session config, so a WAL with no snapshot is still
//! self-contained.
//!
//! # Snapshots as compaction points
//!
//! A snapshot seals the current segment: the segment is fsynced, the
//! snapshot (whose body records `wal_segment`, the first segment *not*
//! covered by it) is written and **self-checked** by re-loading it, a
//! [`WalRecord::Seal`] is appended, and a fresh segment is opened.
//! Recovery = newest valid snapshot + replay of the segments from
//! `wal_segment` on. Only after a newer snapshot passes its self-check
//! are older snapshots and the segments they cover pruned (keeping
//! [`WalConfig::keep_snapshots`] generations).
//!
//! # Fault injection
//!
//! [`DiskFaultPlan`] wraps every file handle the WAL (and its snapshots)
//! writes through, injecting short writes, `WouldBlock`/`Interrupted`,
//! checksum-corrupting bit flips, disk-full failures, and seeded
//! mid-write crashes at deterministic byte offsets — the substrate of
//! the `daemon_wal` crash corpus and the CI chaos matrix.

use crate::protocol::{codes, ProtocolError};
use crate::snapshot::{self, fnv1a, SnapshotBody, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, ErrorKind, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic prefix of every segment header line.
pub const MAGIC: &str = "flowtime-wal-v1";

/// When to force appended records onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged request survives
    /// power loss. The durability default.
    #[default]
    Always,
    /// `fsync` every N appends: bounded loss window (at most N-1
    /// acknowledged requests) in exchange for amortized sync cost.
    Batch(u64),
    /// Never `fsync`: survives process death (`kill -9`) but not power
    /// loss. `durability=none` must be an explicit operator choice.
    None,
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            FsyncPolicy::None => write!(f, "none"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "none" => Ok(FsyncPolicy::None),
            other => match other.strip_prefix("batch:") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(FsyncPolicy::Batch(n)),
                    _ => Err(format!("batch fsync interval must be >= 1, got `{n}`")),
                },
                None => Err(format!(
                    "fsync policy must be `always`, `batch:N`, or `none`, got `{other}`"
                )),
            },
        }
    }
}

/// Static WAL parameters. Not persisted — recovery is handed the same
/// config the daemon was started with, and the recorded artifacts
/// (genesis record, snapshots) carry the session config.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding segments and snapshots. Created if absent.
    pub dir: PathBuf,
    /// Sync policy for appends.
    pub fsync: FsyncPolicy,
    /// Snapshot generations to retain (>= 1). Older snapshots and the
    /// segments they cover are pruned after a newer snapshot
    /// self-checks.
    pub keep_snapshots: u64,
    /// Rotate to a fresh segment after this many records even without a
    /// snapshot (0 disables size-based rotation; snapshots always
    /// rotate).
    pub segment_max_records: u64,
    /// Deterministic process-abort point for the kill-9 chaos harness:
    /// abort during append number `after_appends` (1-based), after
    /// writing `torn_bytes` bytes of it (`None` = after the full append
    /// and its sync — a crash *between* requests).
    pub chaos_kill: Option<ChaosKill>,
}

impl WalConfig {
    /// A config with the durable defaults: `fsync=always`, two snapshot
    /// generations, 65536-record segments, no chaos.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            keep_snapshots: 2,
            segment_max_records: 65_536,
            chaos_kill: None,
        }
    }
}

/// A real-process crash point (see [`WalConfig::chaos_kill`]).
#[derive(Debug, Clone, Copy)]
pub struct ChaosKill {
    /// Abort during this append (1-based count of appends).
    pub after_appends: u64,
    /// Bytes of the record to write before aborting; `None` aborts
    /// after the append completes (and syncs).
    pub torn_bytes: Option<u64>,
}

impl std::str::FromStr for ChaosKill {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (n, b) = match s.split_once(':') {
            Some((n, b)) => (n, Some(b)),
            None => (s, None),
        };
        let after_appends = n
            .parse::<u64>()
            .map_err(|_| format!("chaos kill point must be N or N:BYTES, got `{s}`"))?;
        let torn_bytes = match b {
            Some(b) => Some(
                b.parse::<u64>()
                    .map_err(|_| format!("chaos kill point must be N or N:BYTES, got `{s}`"))?,
            ),
            None => None,
        };
        if after_appends == 0 {
            return Err("chaos kill append count is 1-based; 0 never fires".to_string());
        }
        Ok(ChaosKill {
            after_appends,
            torn_bytes,
        })
    }
}

/// One durable record. `Entry` wraps the sim crate's [`LogEntry`] —
/// submissions *and* cancels — exactly as the session's replayable
/// [`flowtime_sim::SubmissionLog`] stores them, plus the client's
/// idempotency key so the dedup table survives restart-replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// First record of segment 1: the session config a no-snapshot
    /// recovery rebuilds from.
    Genesis {
        /// The session parameters.
        config: crate::session::SessionConfig,
    },
    /// An accepted submission-affecting request.
    Entry {
        /// The accepted influence (workflow, ad-hoc, or cancel).
        entry: flowtime_sim::LogEntry,
        /// Client-supplied idempotency key, if any.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        request_id: Option<String>,
    },
    /// An accepted clock advance (`tick` request).
    Tick {
        /// Target virtual slot.
        to: u64,
    },
    /// The session was drained; replay re-drains deterministically.
    Drain {
        /// Virtual slot at the time of the drain request.
        at: u64,
    },
    /// A snapshot sealed this segment; everything before this record is
    /// covered by the snapshot whose body says `wal_segment ==
    /// next_segment`.
    Seal {
        /// The segment opened after this seal.
        next_segment: u64,
    },
}

/// Why a WAL operation failed. Every variant maps onto a typed protocol
/// error code (`wal-io` / `wal-corrupt`); nothing in this module panics
/// on bad input or bad disks.
#[derive(Debug)]
pub enum WalError {
    /// An I/O failure (including injected faults).
    Io(io::Error),
    /// A previous append failed and could not be rolled back; the WAL
    /// refuses further appends rather than write after a torn tail.
    Poisoned(String),
    /// Sealed history failed validation — a defect *not* in the crash
    /// window.
    Corrupt {
        /// Segment the defect was found in.
        segment: u64,
        /// Byte offset of the defect within the segment.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The directory layout or a replayed record is structurally
    /// invalid.
    Format(String),
    /// A record failed to serialize or deserialize.
    Serde(String),
    /// Snapshot read/write/validation failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Poisoned(d) => write!(f, "wal poisoned by an earlier failure: {d}"),
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "wal corrupt: segment {segment} offset {offset}: {detail}"
            ),
            WalError::Format(d) => write!(f, "wal format error: {d}"),
            WalError::Serde(d) => write!(f, "wal record error: {d}"),
            WalError::Snapshot(e) => write!(f, "wal snapshot error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl WalError {
    /// Maps onto the protocol's typed error catalogue.
    pub fn to_protocol(&self) -> ProtocolError {
        match self {
            WalError::Corrupt { .. } | WalError::Format(_) | WalError::Serde(_) => {
                ProtocolError::new(codes::WAL_CORRUPT, self.to_string())
            }
            WalError::Snapshot(e) => ProtocolError::new(codes::SNAPSHOT_CORRUPT, e.to_string()),
            _ => ProtocolError::new(codes::WAL_IO, self.to_string()),
        }
    }
}

// ------------------------------------------------------------------ faults

/// What to inject when a planned fault fires.
#[derive(Debug, Clone, Copy)]
pub enum FaultKind {
    /// The write succeeds but moves fewer bytes than asked — exercises
    /// the append loop's continuation.
    ShortWrite,
    /// The write fails with [`ErrorKind::WouldBlock`]; the WAL retries.
    WouldBlock,
    /// The write fails with [`ErrorKind::Interrupted`]; the WAL retries.
    Interrupted,
    /// The write "succeeds" but a bit is flipped on the way to disk —
    /// detected later by the per-record checksum.
    BitFlip {
        /// Which bit of the affected byte to flip.
        bit: u8,
    },
    /// The write fails like a full disk. The append rolls back; the
    /// session reports a typed `wal-io` error and stays consistent.
    DiskFull,
    /// The next `fsync` at or past this byte offset fails; the bytes
    /// already written stay in the file. Exercises the append path's
    /// sync-failure rollback (a rejected request must not be replayed
    /// after a process-only crash).
    FsyncFail,
    /// Simulated `kill -9` mid-write: `keep` bytes of the buffer reach
    /// the file, every later operation on any handle fails. With
    /// `lose_unsynced`, bytes written since the last fsync vanish too
    /// (the power-loss model for `batch`/`none` fsync policies).
    Crash {
        /// Bytes of the current buffer that survive.
        keep: u64,
        /// Whether unsynced earlier bytes are lost as well.
        lose_unsynced: bool,
    },
}

/// One planned fault, triggered when cumulative bytes written through
/// the plan (WAL segments and snapshots alike) reach `at_byte`.
#[derive(Debug, Clone, Copy)]
pub struct PlannedFault {
    /// Cumulative byte offset the fault arms at.
    pub at_byte: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, deterministic I/O fault schedule. Wraps every file handle
/// the WAL opens; faults fire at planned byte offsets in write order.
#[derive(Debug, Clone, Default)]
pub struct DiskFaultPlan {
    /// Faults in ascending `at_byte` order (sorted on build).
    pub faults: Vec<PlannedFault>,
}

impl DiskFaultPlan {
    /// A plan with one fault.
    pub fn single(at_byte: u64, kind: FaultKind) -> Self {
        DiskFaultPlan {
            faults: vec![PlannedFault { at_byte, kind }],
        }
    }

    /// A seeded mixed plan of transient faults (short writes,
    /// `WouldBlock`, `Interrupted`) spread over roughly `span` bytes —
    /// none fatal, so a run under this plan must behave identically to
    /// a clean one.
    pub fn transient(seed: u64, span: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut faults = Vec::new();
        let mut at = 0u64;
        loop {
            at += 64 + splitmix(&mut state) % (span / 8).max(64);
            if at >= span {
                break;
            }
            let kind = match splitmix(&mut state) % 3 {
                0 => FaultKind::ShortWrite,
                1 => FaultKind::WouldBlock,
                _ => FaultKind::Interrupted,
            };
            faults.push(PlannedFault { at_byte: at, kind });
        }
        DiskFaultPlan { faults }
    }

    fn into_state(mut self) -> Arc<Mutex<FaultState>> {
        self.faults.sort_by_key(|f| f.at_byte);
        Arc::new(Mutex::new(FaultState {
            plan: self.faults,
            next: 0,
            bytes_written: 0,
            crashed: false,
            injected: Vec::new(),
        }))
    }
}

/// Splitmix64 — the repo's stock seeded stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared mutable fault-plan state (one per recovered/created WAL).
#[derive(Debug)]
struct FaultState {
    plan: Vec<PlannedFault>,
    next: usize,
    bytes_written: u64,
    crashed: bool,
    injected: Vec<String>,
}

/// A writable file routed through the fault plan (when one is armed).
struct FaultableFile {
    file: fs::File,
    faults: Option<Arc<Mutex<FaultState>>>,
    /// Bytes of this file known to be on stable storage (fsync'd).
    synced_len: u64,
    /// Bytes written to this file.
    written_len: u64,
}

impl FaultableFile {
    fn create(path: &Path, faults: Option<Arc<Mutex<FaultState>>>) -> io::Result<Self> {
        check_crashed(&faults)?;
        Ok(FaultableFile {
            file: fs::File::create(path)?,
            faults,
            synced_len: 0,
            written_len: 0,
        })
    }

    /// One write step: consults the fault plan, then writes. Returns
    /// the number of bytes accepted.
    fn write_step(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(faults) = self.faults.clone() else {
            let n = self.file.write(buf)?;
            self.written_len += n as u64;
            return Ok(n);
        };
        let mut st = faults.lock().expect("fault plan lock");
        if st.crashed {
            return Err(io::Error::other("chaos: process is dead"));
        }
        // Sync-time faults are consumed by `sync`, not here.
        let fires = st.plan.get(st.next).is_some_and(|f| {
            !matches!(f.kind, FaultKind::FsyncFail)
                && st.bytes_written + buf.len() as u64 > f.at_byte
        });
        if !fires {
            let n = self.file.write(buf)?;
            st.bytes_written += n as u64;
            self.written_len += n as u64;
            return Ok(n);
        }
        let fault = st.plan[st.next];
        st.next += 1;
        match fault.kind {
            FaultKind::ShortWrite => {
                let n = ((fault.at_byte - st.bytes_written) as usize).clamp(1, buf.len());
                st.injected.push(format!("short-write@{}", fault.at_byte));
                let n = self.file.write(&buf[..n])?;
                st.bytes_written += n as u64;
                self.written_len += n as u64;
                Ok(n)
            }
            FaultKind::WouldBlock => {
                st.injected.push(format!("would-block@{}", fault.at_byte));
                Err(io::Error::new(ErrorKind::WouldBlock, "injected WouldBlock"))
            }
            FaultKind::Interrupted => {
                st.injected.push(format!("interrupted@{}", fault.at_byte));
                Err(io::Error::new(
                    ErrorKind::Interrupted,
                    "injected Interrupted",
                ))
            }
            FaultKind::BitFlip { bit } => {
                let mut corrupted = buf.to_vec();
                let idx = ((fault.at_byte - st.bytes_written) as usize).min(buf.len() - 1);
                corrupted[idx] ^= 1u8 << (bit % 8);
                let note = format!("bit-flip@{}+{idx}", st.bytes_written);
                st.injected.push(note);
                self.file.write_all(&corrupted)?;
                st.bytes_written += corrupted.len() as u64;
                self.written_len += corrupted.len() as u64;
                Ok(buf.len())
            }
            FaultKind::DiskFull => {
                st.injected.push(format!("disk-full@{}", fault.at_byte));
                Err(io::Error::other("injected disk full (ENOSPC)"))
            }
            // Excluded from `fires`; if reached anyway, write through.
            FaultKind::FsyncFail => {
                let n = self.file.write(buf)?;
                st.bytes_written += n as u64;
                self.written_len += n as u64;
                Ok(n)
            }
            FaultKind::Crash {
                keep,
                lose_unsynced,
            } => {
                st.crashed = true;
                if lose_unsynced {
                    let note = format!("crash@{} (unsynced tail lost)", st.bytes_written);
                    st.injected.push(note);
                    let _ = self.file.set_len(self.synced_len);
                } else {
                    let keep = (keep as usize).min(buf.len());
                    let note = format!("crash@{} (torn, kept {keep})", st.bytes_written);
                    st.injected.push(note);
                    let _ = self.file.write_all(&buf[..keep]);
                    let _ = self.file.sync_all();
                }
                Err(io::Error::other("chaos: simulated crash mid-write"))
            }
        }
    }

    /// Writes the whole buffer, continuing through short writes and
    /// retrying transient `WouldBlock`/`Interrupted` failures (bounded,
    /// so a genuinely stuck file still errors out).
    fn write_all_retry(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut off = 0;
        let mut transient_retries = 0u32;
        while off < buf.len() {
            match self.write_step(&buf[off..]) {
                Ok(0) => return Err(io::Error::from(ErrorKind::WriteZero)),
                Ok(n) => off += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::Interrupted) => {
                    transient_retries += 1;
                    if transient_retries > 1024 {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if let Some(faults) = self.faults.clone() {
            let mut st = faults.lock().expect("fault plan lock");
            if st.crashed {
                return Err(io::Error::other("chaos: process is dead"));
            }
            let fires = st.plan.get(st.next).is_some_and(|f| {
                matches!(f.kind, FaultKind::FsyncFail) && st.bytes_written >= f.at_byte
            });
            if fires {
                let fault = st.plan[st.next];
                st.next += 1;
                st.injected.push(format!("fsync-fail@{}", fault.at_byte));
                return Err(io::Error::other("injected fsync failure"));
            }
        }
        self.file.sync_all()?;
        self.synced_len = self.written_len;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        check_crashed(&self.faults)?;
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.written_len = len;
        self.synced_len = self.synced_len.min(len);
        Ok(())
    }
}

fn check_crashed(faults: &Option<Arc<Mutex<FaultState>>>) -> io::Result<()> {
    if let Some(f) = faults {
        if f.lock().expect("fault plan lock").crashed {
            return Err(io::Error::other("chaos: process is dead"));
        }
    }
    Ok(())
}

// ------------------------------------------------------------------- wal

/// Where recovery found a torn tail and what it dropped.
#[derive(Debug, Clone, Serialize)]
pub struct TailTruncation {
    /// Segment the defect was in (always the final one on disk).
    pub segment: u64,
    /// Byte offset the file was truncated back to.
    pub offset: u64,
    /// Bytes dropped beyond the last valid record.
    pub dropped_bytes: u64,
    /// What the defect was.
    pub defect: String,
}

/// What recovery did, for operators and for the chaos harness's
/// assertions.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryReport {
    /// True when the directory held no artifacts (fresh session).
    pub fresh: bool,
    /// Snapshot file used, if any.
    pub snapshot: Option<String>,
    /// Snapshot files that failed validation and were skipped.
    pub snapshots_rejected: Vec<String>,
    /// Segments whose records were replayed, in order.
    pub segments_replayed: Vec<u64>,
    /// Total records replayed (genesis and seals included).
    pub records_replayed: u64,
    /// Torn-tail truncation, if one happened.
    pub tail: Option<TailTruncation>,
}

/// The append half of the log. Created fresh by [`create`] or handed
/// back by [`recover_dir`] positioned on a new segment.
pub struct Wal {
    config: WalConfig,
    faults: Option<Arc<Mutex<FaultState>>>,
    file: FaultableFile,
    segment: u64,
    segment_records: u64,
    appends: u64,
    unsynced: u64,
    poisoned: Option<String>,
}

fn segment_path(dir: &Path, segment: u64) -> PathBuf {
    dir.join(format!("wal-{segment:06}.log"))
}

fn snapshot_file_path(dir: &Path, segment: u64) -> PathBuf {
    dir.join(format!("snap-{segment:06}.snap"))
}

fn segment_header(segment: u64) -> String {
    format!("{MAGIC} segment={segment:06}\n")
}

/// Frames one record line: `<len> <fnv1a> <json>\n`.
fn frame(json: &str) -> String {
    format!("{} {:016x} {json}\n", json.len(), fnv1a(json.as_bytes()))
}

/// Creates a fresh WAL in an empty (or absent) directory, opening
/// segment 1. Fails if segments or snapshots already exist — recovery
/// of an existing directory must go through [`recover_dir`] so history
/// is never silently overwritten.
pub fn create(config: WalConfig, faults: Option<DiskFaultPlan>) -> Result<Wal, WalError> {
    fs::create_dir_all(&config.dir).map_err(WalError::Io)?;
    let (segments, snapshots) = scan_dir(&config.dir)?;
    if !segments.is_empty() || !snapshots.is_empty() {
        return Err(WalError::Format(format!(
            "{} already holds WAL artifacts; recover instead of creating",
            config.dir.display()
        )));
    }
    let faults = faults.map(DiskFaultPlan::into_state);
    open_segment(config, faults, 1)
}

fn open_segment(
    config: WalConfig,
    faults: Option<Arc<Mutex<FaultState>>>,
    segment: u64,
) -> Result<Wal, WalError> {
    let path = segment_path(&config.dir, segment);
    let mut file = FaultableFile::create(&path, faults.clone()).map_err(WalError::Io)?;
    file.write_all_retry(segment_header(segment).as_bytes())
        .map_err(WalError::Io)?;
    file.sync().map_err(WalError::Io)?;
    Ok(Wal {
        config,
        faults,
        file,
        segment,
        segment_records: 0,
        appends: 0,
        unsynced: 0,
        poisoned: None,
    })
}

impl Wal {
    /// The segment currently being appended to.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// Total records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Human-readable log of injected faults so far (empty without a
    /// plan).
    pub fn injected_faults(&self) -> Vec<String> {
        match &self.faults {
            Some(f) => f.lock().expect("fault plan lock").injected.clone(),
            None => Vec::new(),
        }
    }

    /// Appends one record, making it durable per the fsync policy.
    /// On a write failure the partial tail is rolled back (truncated)
    /// so the next append starts on a clean boundary; if even the
    /// rollback fails the WAL poisons itself rather than ever append
    /// after a torn record. On a *sync* failure the fully written
    /// record is likewise rolled back (best effort) before the poison
    /// takes effect, so a request the client saw rejected is not
    /// replayed after a process-only crash.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] / [`WalError::Poisoned`]. The caller must treat
    /// any error as "not durable": the request must be rejected, not
    /// acknowledged.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        if let Some(why) = &self.poisoned {
            return Err(WalError::Poisoned(why.clone()));
        }
        let json = serde_json::to_string(record).map_err(|e| WalError::Serde(e.to_string()))?;
        let line = frame(&json);
        self.appends += 1;
        if let Some(kill) = self.config.chaos_kill {
            if self.appends == kill.after_appends {
                self.chaos_abort(&line, kill.torn_bytes);
            }
        }
        let start = self.file.written_len;
        match self.file.write_all_retry(line.as_bytes()) {
            Ok(()) => {
                self.segment_records += 1;
                self.unsynced += 1;
                if let Err(e) = self.maybe_sync() {
                    // The record's bytes are in the file but their
                    // durability cannot be promised — `sync` has already
                    // poisoned the WAL. Roll the record back so a
                    // process-only crash does not replay a request the
                    // client saw rejected; if the truncate fails too the
                    // poison already refuses further appends.
                    self.segment_records -= 1;
                    self.unsynced -= 1;
                    let _ = self.file.truncate(start);
                    return Err(e);
                }
                if self.config.segment_max_records > 0
                    && self.segment_records >= self.config.segment_max_records
                {
                    self.rotate()?;
                }
                Ok(())
            }
            Err(e) => {
                if self.file.truncate(start).is_err() {
                    self.poisoned = Some(format!("append failed and rollback failed: {e}"));
                }
                Err(WalError::Io(e))
            }
        }
    }

    /// The deterministic kill-9 point: writes the torn prefix (if any),
    /// forces it to disk, and aborts the process — no destructors, no
    /// flushes, exactly what the chaos harness's restart must recover
    /// from.
    fn chaos_abort(&mut self, line: &str, torn_bytes: Option<u64>) -> ! {
        if let Some(b) = torn_bytes {
            let keep = (b as usize).min(line.len());
            let _ = self.file.write_all_retry(&line.as_bytes()[..keep]);
        }
        let _ = self.file.sync();
        eprintln!(
            "flowtimed: chaos kill point reached (append {}, torn {:?}); aborting",
            self.appends, torn_bytes
        );
        std::process::abort();
    }

    fn maybe_sync(&mut self) -> Result<(), WalError> {
        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => self.unsynced >= n,
            FsyncPolicy::None => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces everything appended so far onto stable storage.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`]; a failed sync poisons the WAL (durability can
    /// no longer be promised for acknowledged requests).
    pub fn sync(&mut self) -> Result<(), WalError> {
        if let Some(why) = &self.poisoned {
            return Err(WalError::Poisoned(why.clone()));
        }
        match self.file.sync() {
            Ok(()) => {
                self.unsynced = 0;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(format!("fsync failed: {e}"));
                Err(WalError::Io(e))
            }
        }
    }

    /// Seals the current segment and opens the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.sync()?;
        let next = self.segment + 1;
        let path = segment_path(&self.config.dir, next);
        let mut file = FaultableFile::create(&path, self.faults.clone()).map_err(WalError::Io)?;
        file.write_all_retry(segment_header(next).as_bytes())
            .map_err(WalError::Io)?;
        file.sync().map_err(WalError::Io)?;
        self.file = file;
        self.segment = next;
        self.segment_records = 0;
        Ok(())
    }

    /// Persists `body` as this WAL's next snapshot (compaction point):
    /// syncs the segment, writes `snap-<segment>.snap` atomically
    /// (through the fault plan), **self-checks it by re-loading**,
    /// appends a [`WalRecord::Seal`], rotates, and prunes old
    /// generations. `body.wal_segment` must already name the segment the
    /// tail will continue in (`self.segment() + 1`).
    ///
    /// # Errors
    ///
    /// Any [`WalError`]; on error no pruning has happened, so the
    /// previous snapshot and its tail remain a complete recovery line.
    pub fn save_snapshot(&mut self, body: &SnapshotBody) -> Result<PathBuf, WalError> {
        if body.wal_segment != self.segment + 1 {
            return Err(WalError::Format(format!(
                "snapshot names wal_segment {} but the seal opens segment {}",
                body.wal_segment,
                self.segment + 1
            )));
        }
        self.sync()?;
        let path = snapshot_file_path(&self.config.dir, self.segment);
        self.write_snapshot_file(&path, body)?;
        // Self-check: a snapshot that does not load back bit-exactly is
        // no compaction point. Only after this may history be pruned.
        snapshot::load(&path).map_err(WalError::Snapshot)?;
        self.append(&WalRecord::Seal {
            next_segment: self.segment + 1,
        })?;
        self.rotate()?;
        self.prune()?;
        Ok(path)
    }

    /// Writes the two-line snapshot document through the fault plan,
    /// atomically (tmp + rename).
    fn write_snapshot_file(&mut self, path: &Path, body: &SnapshotBody) -> Result<(), WalError> {
        let contents = snapshot::render(body).map_err(WalError::Snapshot)?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = FaultableFile::create(&tmp, self.faults.clone()).map_err(WalError::Io)?;
            f.write_all_retry(contents.as_bytes())
                .map_err(WalError::Io)?;
            f.sync().map_err(WalError::Io)?;
        }
        check_crashed(&self.faults).map_err(WalError::Io)?;
        fs::rename(&tmp, path).map_err(WalError::Io)?;
        Ok(())
    }

    /// Removes snapshot generations beyond `keep_snapshots` and every
    /// segment fully covered by the oldest retained snapshot — but only
    /// after re-validating the newest snapshot's checksum. A prune never
    /// deletes the only valid recovery line.
    fn prune(&mut self) -> Result<(), WalError> {
        let (segments, snapshots) = scan_dir(&self.config.dir)?;
        let keep = self.config.keep_snapshots.max(1) as usize;
        if snapshots.len() <= keep {
            return Ok(());
        }
        // Newest first; re-validate the newest before touching anything.
        let newest = *snapshots.last().expect("nonempty");
        if snapshot::load(snapshot_file_path(&self.config.dir, newest)).is_err() {
            return Err(WalError::Format(format!(
                "newest snapshot snap-{newest:06} failed its self-check; refusing to prune"
            )));
        }
        let kept = &snapshots[snapshots.len() - keep..];
        let oldest_kept = kept[0];
        // The oldest retained snapshot covers segments < its wal_segment.
        let body = snapshot::load(snapshot_file_path(&self.config.dir, oldest_kept))
            .map_err(WalError::Snapshot)?;
        for &snap in &snapshots[..snapshots.len() - keep] {
            fs::remove_file(snapshot_file_path(&self.config.dir, snap)).map_err(WalError::Io)?;
        }
        for &seg in &segments {
            if seg < body.wal_segment {
                fs::remove_file(segment_path(&self.config.dir, seg)).map_err(WalError::Io)?;
            }
        }
        Ok(())
    }
}

// -------------------------------------------------------------- recovery

/// Everything [`recover_dir`] hands back: the snapshot to restore from
/// (if any), the tail records to replay, the report, and a [`Wal`]
/// opened on a fresh segment for the recovered session's appends.
pub struct WalRecovered {
    /// Newest valid snapshot body, if one was usable.
    pub snapshot: Option<SnapshotBody>,
    /// Records to replay after the snapshot (from genesis when no
    /// snapshot was usable).
    pub tail: Vec<WalRecord>,
    /// What recovery did.
    pub report: RecoveryReport,
    /// The append handle, positioned on a brand-new segment.
    pub wal: Wal,
}

/// Lists `(segments, snapshots)` by number, ascending. Unknown files are
/// ignored (tmp files from torn snapshot writes included).
fn scan_dir(dir: &Path) -> Result<(Vec<u64>, Vec<u64>), WalError> {
    let mut segments = Vec::new();
    let mut snapshots = Vec::new();
    if !dir.exists() {
        return Ok((segments, snapshots));
    }
    for entry in fs::read_dir(dir).map_err(WalError::Io)? {
        let entry = entry.map_err(WalError::Io)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
        {
            if let Ok(n) = num.parse::<u64>() {
                segments.push(n);
            }
        } else if let Some(num) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".snap"))
        {
            if let Ok(n) = num.parse::<u64>() {
                snapshots.push(n);
            }
        }
    }
    segments.sort_unstable();
    snapshots.sort_unstable();
    Ok((segments, snapshots))
}

/// One scanned segment: records plus where the valid prefix ends.
struct ScannedSegment {
    records: Vec<WalRecord>,
    valid_offset: u64,
    total_len: u64,
    defect: Option<String>,
}

/// Scans one segment's bytes front to back, stopping at the first
/// defect.
fn scan_segment(bytes: &[u8], segment: u64) -> ScannedSegment {
    let header = segment_header(segment);
    let mut records = Vec::new();
    let total_len = bytes.len() as u64;
    if bytes.len() < header.len() || &bytes[..header.len()] != header.as_bytes() {
        return ScannedSegment {
            records,
            valid_offset: 0,
            total_len,
            defect: Some("bad or torn segment header".to_string()),
        };
    }
    let mut pos = header.len();
    loop {
        if pos == bytes.len() {
            return ScannedSegment {
                records,
                valid_offset: pos as u64,
                total_len,
                defect: None,
            };
        }
        let defect = |d: &str| ScannedSegment {
            records: Vec::new(),
            valid_offset: pos as u64,
            total_len,
            defect: Some(d.to_string()),
        };
        // `<len> <16-hex> <json>\n`
        let rest = &bytes[pos..];
        let Some(sp1) = rest.iter().take(21).position(|&b| b == b' ') else {
            let mut s = defect("torn length prefix");
            s.records = records;
            return s;
        };
        let Ok(len) = std::str::from_utf8(&rest[..sp1])
            .map_err(|_| ())
            .and_then(|s| s.parse::<usize>().map_err(|_| ()))
        else {
            let mut s = defect("unparseable length prefix");
            s.records = records;
            return s;
        };
        let body_start = sp1 + 1 + 16 + 1;
        if rest.len() < body_start || rest.get(sp1 + 1 + 16) != Some(&b' ') {
            let mut s = defect("torn checksum field");
            s.records = records;
            return s;
        }
        let Ok(expected) = std::str::from_utf8(&rest[sp1 + 1..sp1 + 1 + 16])
            .map_err(|_| ())
            .and_then(|s| u64::from_str_radix(s, 16).map_err(|_| ()))
        else {
            let mut s = defect("unparseable checksum");
            s.records = records;
            return s;
        };
        if rest.len() < body_start + len + 1 {
            let mut s = defect("torn record body");
            s.records = records;
            return s;
        }
        let body = &rest[body_start..body_start + len];
        if rest[body_start + len] != b'\n' {
            let mut s = defect("missing record terminator");
            s.records = records;
            return s;
        }
        let actual = fnv1a(body);
        if actual != expected {
            let mut s = defect(&format!(
                "checksum mismatch (header {expected:016x}, body {actual:016x})"
            ));
            s.records = records;
            return s;
        }
        let Ok(json) = std::str::from_utf8(body) else {
            let mut s = defect("record body is not utf-8");
            s.records = records;
            return s;
        };
        let record: Result<WalRecord, _> =
            serde_json::parse(json).and_then(|v| serde_json::from_value(&v));
        match record {
            Ok(r) => records.push(r),
            Err(e) => {
                let mut s = defect(&format!("checksum-valid record failed to parse: {e}"));
                s.records = records;
                return s;
            }
        }
        pos += body_start + len + 1;
    }
}

/// Recovers a WAL directory: picks the newest snapshot that validates
/// *and* whose tail segments are all present, scans the tail segments
/// (truncating a torn final segment at the last valid record), and
/// opens a fresh segment for further appends. An empty directory yields
/// a fresh WAL (`report.fresh`).
///
/// # Errors
///
/// [`WalError::Corrupt`] for defects outside the crash window (sealed
/// history), [`WalError::Format`] for unrecoverable layouts, I/O errors
/// otherwise. Never panics.
pub fn recover_dir(
    config: &WalConfig,
    faults: Option<DiskFaultPlan>,
) -> Result<WalRecovered, WalError> {
    fs::create_dir_all(&config.dir).map_err(WalError::Io)?;
    let (segments, snapshots) = scan_dir(&config.dir)?;
    let fault_state = faults.map(DiskFaultPlan::into_state);
    if segments.is_empty() && snapshots.is_empty() {
        let wal = open_segment(config.clone(), fault_state, 1)?;
        return Ok(WalRecovered {
            snapshot: None,
            tail: Vec::new(),
            report: RecoveryReport {
                fresh: true,
                ..Default::default()
            },
            wal,
        });
    }
    let max_segment = segments.last().copied().unwrap_or(0);

    // Choose a snapshot: newest valid one whose tail is fully on disk.
    let mut report = RecoveryReport::default();
    let mut chosen: Option<(u64, SnapshotBody)> = None;
    for &snap in snapshots.iter().rev() {
        let path = snapshot_file_path(&config.dir, snap);
        match snapshot::load(&path) {
            Ok(body) => {
                // Every segment in (wal_segment ..= max) must exist;
                // a tail that never got its first segment (crash before
                // rotation) is also complete.
                let complete =
                    (body.wal_segment..=max_segment).all(|s| segments.binary_search(&s).is_ok());
                if complete {
                    report.snapshot = Some(path.display().to_string());
                    chosen = Some((snap, body));
                    break;
                }
                report
                    .snapshots_rejected
                    .push(format!("{} (missing tail segments)", path.display()));
            }
            Err(e) => report
                .snapshots_rejected
                .push(format!("{} ({e})", path.display())),
        }
    }

    let replay_from = match &chosen {
        Some((_, body)) => body.wal_segment,
        None => {
            if !snapshots.is_empty() && segments.binary_search(&1).is_err() {
                return Err(WalError::Format(
                    "no snapshot validates and segment 1 is pruned; the directory is \
                     unrecoverable"
                        .to_string(),
                ));
            }
            1
        }
    };

    // Appends continue in a brand-new segment — never after a truncated
    // tail, and never into sealed history. `replay_from - 1`, not
    // `replay_from`: a snapshot may name a `wal_segment` that was never
    // created (crash between the snapshot-file write and the rotate),
    // and skipping that number would leave a permanent hole that makes
    // every later recovery reject the snapshot for missing tail
    // segments.
    let mut open_at = max_segment.max(replay_from.saturating_sub(1)) + 1;

    // Replay segments `replay_from..=max_segment`, in order, contiguous.
    let mut tail = Vec::new();
    let replayed: Vec<u64> = (replay_from..=max_segment)
        .filter(|_| !segments.is_empty())
        .collect();
    for (i, &seg) in replayed.iter().enumerate() {
        if segments.binary_search(&seg).is_err() {
            return Err(WalError::Format(format!(
                "segment wal-{seg:06} is missing from the replay range"
            )));
        }
        let path = segment_path(&config.dir, seg);
        let bytes = fs::read(&path).map_err(WalError::Io)?;
        let scanned = scan_segment(&bytes, seg);
        let last = i + 1 == replayed.len();
        if let Some(defect) = scanned.defect {
            if !last {
                return Err(WalError::Corrupt {
                    segment: seg,
                    offset: scanned.valid_offset,
                    detail: defect,
                });
            }
            if scanned.valid_offset == 0 {
                // The crash hit `open_segment`'s header write: nothing
                // in the file was ever valid. Truncating it to empty
                // would leave a segment the *next* recovery classifies
                // as sealed-history corruption — delete it and reuse
                // its number instead.
                fs::remove_file(&path).map_err(WalError::Io)?;
                report.tail = Some(TailTruncation {
                    segment: seg,
                    offset: 0,
                    dropped_bytes: scanned.total_len,
                    defect,
                });
                open_at = seg;
                // A torn header on the only segment, with no snapshots,
                // means nothing valid (not even a genesis) was ever
                // written: the directory is fresh.
                if seg == 1 && replayed.len() == 1 && snapshots.is_empty() {
                    report.fresh = true;
                }
                continue;
            }
            // Torn tail: truncate back to the last valid record.
            fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(scanned.valid_offset))
                .map_err(WalError::Io)?;
            report.tail = Some(TailTruncation {
                segment: seg,
                offset: scanned.valid_offset,
                dropped_bytes: scanned.total_len - scanned.valid_offset,
                defect,
            });
        }
        report.records_replayed += scanned.records.len() as u64;
        report.segments_replayed.push(seg);
        tail.extend(scanned.records);
    }

    let wal = open_segment(config.clone(), fault_state, open_at)?;
    Ok(WalRecovered {
        snapshot: chosen.map(|(_, body)| body),
        tail,
        report,
        wal,
    })
}

/// The dedup table type shared by sessions and snapshots: idempotency
/// key → the sequence number originally assigned.
pub type RequestIds = BTreeMap<String, u64>;

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flowtime-wal-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(
            "always".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!("none".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::None);
        assert_eq!(
            "batch:64".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::Batch(64)
        );
        assert!("batch:0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::Batch(8).to_string(), "batch:8");
    }

    #[test]
    fn chaos_kill_parses() {
        let k: ChaosKill = "5".parse().unwrap();
        assert_eq!(k.after_appends, 5);
        assert!(k.torn_bytes.is_none());
        let k: ChaosKill = "5:17".parse().unwrap();
        assert_eq!(k.torn_bytes, Some(17));
        assert!("0".parse::<ChaosKill>().is_err());
        assert!("x:y".parse::<ChaosKill>().is_err());
    }

    #[test]
    fn append_scan_round_trip_with_torn_tail() {
        let dir = temp_dir("roundtrip");
        let mut wal = create(WalConfig::new(&dir), None).unwrap();
        for to in [3u64, 7, 9] {
            wal.append(&WalRecord::Tick { to }).unwrap();
        }
        drop(wal);
        // Tear the tail mid-record.
        let path = segment_path(&dir, 1);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert_eq!(rec.tail.len(), 2, "last record is torn, first two valid");
        let t = rec.report.tail.expect("tail truncation reported");
        assert_eq!(t.segment, 1);
        assert!(t.dropped_bytes > 0);
        // The file was physically truncated at the valid boundary.
        assert_eq!(fs::metadata(&path).unwrap().len(), t.offset);
        assert_eq!(rec.wal.segment(), 2, "appends continue in a new segment");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_in_tail_truncates_and_reports() {
        let dir = temp_dir("bitflip");
        let mut wal = create(WalConfig::new(&dir), None).unwrap();
        wal.append(&WalRecord::Tick { to: 1 }).unwrap();
        wal.append(&WalRecord::Tick { to: 2 }).unwrap();
        drop(wal);
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x40; // corrupt the last record's json
        fs::write(&path, &bytes).unwrap();
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert_eq!(rec.tail.len(), 1);
        let t = rec.report.tail.expect("defect reported");
        assert!(t.defect.contains("checksum mismatch"), "{}", t.defect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_artifacts() {
        let dir = temp_dir("norecreate");
        let mut wal = create(WalConfig::new(&dir), None).unwrap();
        wal.append(&WalRecord::Tick { to: 1 }).unwrap();
        drop(wal);
        assert!(matches!(
            create(WalConfig::new(&dir), None),
            Err(WalError::Format(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_invisible() {
        let dir = temp_dir("transient");
        let plan = DiskFaultPlan::transient(42, 4096);
        assert!(!plan.faults.is_empty());
        let mut wal = create(WalConfig::new(&dir), Some(plan)).unwrap();
        for to in 0..40u64 {
            wal.append(&WalRecord::Tick { to }).unwrap();
        }
        assert!(!wal.injected_faults().is_empty(), "plan must have fired");
        drop(wal);
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert_eq!(rec.tail.len(), 40);
        assert!(
            rec.report.tail.is_none(),
            "no defects under transient faults"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_rolls_back_the_rejected_record() {
        let dir = temp_dir("fsyncfail");
        // The segment header (~31 bytes) syncs clean; the first append
        // crosses byte 40 and its fsync fails.
        let mut wal = create(
            WalConfig::new(&dir),
            Some(DiskFaultPlan::single(40, FaultKind::FsyncFail)),
        )
        .unwrap();
        let header_len = fs::metadata(segment_path(&dir, 1)).unwrap().len();
        let err = wal
            .append(&WalRecord::Tick { to: 1 })
            .expect_err("fsync failure must surface");
        assert!(matches!(err, WalError::Io(_)));
        // The written-but-unsynced record was rolled back...
        assert_eq!(fs::metadata(segment_path(&dir, 1)).unwrap().len(), header_len);
        // ...and the WAL is poisoned against further appends.
        assert!(matches!(
            wal.append(&WalRecord::Tick { to: 2 }),
            Err(WalError::Poisoned(_))
        ));
        drop(wal);
        // A process-only crash must not replay the rejected record.
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert!(rec.tail.is_empty(), "rejected record must not replay");
        assert!(rec.report.tail.is_none(), "rollback left no torn tail");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_final_segment_is_deleted_and_its_number_reused() {
        let dir = temp_dir("tornheader");
        let mut wal = create(WalConfig::new(&dir), None).unwrap();
        wal.append(&WalRecord::Tick { to: 1 }).unwrap();
        drop(wal);
        // Crash during the next segment's header write.
        fs::write(segment_path(&dir, 2), b"flowtime-w").unwrap();
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert_eq!(rec.tail, vec![WalRecord::Tick { to: 1 }]);
        let t = rec.report.tail.expect("torn header reported");
        assert_eq!((t.segment, t.offset), (2, 0));
        assert!(
            !segment_path(&dir, 2).exists() || rec.wal.segment() == 2,
            "the dead file must not linger as an empty segment"
        );
        assert_eq!(rec.wal.segment(), 2, "the never-valid number is reused");
        drop(rec.wal);
        // The second restart must not classify the remnant as sealed-
        // history corruption.
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert_eq!(rec.tail, vec![WalRecord::Tick { to: 1 }]);
        assert!(rec.report.tail.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_on_the_only_segment_recovers_fresh() {
        let dir = temp_dir("tornfirst");
        fs::create_dir_all(&dir).unwrap();
        fs::write(segment_path(&dir, 1), b"flowtime-w").unwrap();
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert!(rec.tail.is_empty());
        assert!(rec.report.fresh, "nothing valid was ever written");
        assert_eq!(rec.wal.segment(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_rolls_back_and_later_appends_succeed() {
        let dir = temp_dir("diskfull");
        // The header is ~30 bytes; arm the fault inside the second record.
        let mut wal = create(
            WalConfig::new(&dir),
            Some(DiskFaultPlan::single(80, FaultKind::DiskFull)),
        )
        .unwrap();
        wal.append(&WalRecord::Tick { to: 1 }).unwrap();
        let err = wal
            .append(&WalRecord::Tick { to: 2 })
            .expect_err("disk full must surface");
        assert!(matches!(err, WalError::Io(_)));
        // Rolled back: the next append lands cleanly.
        wal.append(&WalRecord::Tick { to: 3 }).unwrap();
        drop(wal);
        let rec = recover_dir(&WalConfig::new(&dir), None).unwrap();
        assert!(rec.report.tail.is_none(), "rollback left no torn tail");
        assert_eq!(
            rec.tail,
            vec![WalRecord::Tick { to: 1 }, WalRecord::Tick { to: 3 }]
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
