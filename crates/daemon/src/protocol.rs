//! The `flowtimed` wire protocol: newline-delimited JSON.
//!
//! Every request is one JSON object on one line with a `"req"` field
//! naming the operation; every response is one JSON object on one line,
//! either `{"ok": ...}` or `{"err": {"code": "...", "detail": "..."}}`.
//! Error codes are a closed, typed catalogue ([`codes`]) mirroring the
//! CLI's `get_parsed` discipline: malformed input is always a typed
//! error, never a silent default and never a panic.
//!
//! # Requests
//!
//! | `req`             | fields                                   |
//! |-------------------|------------------------------------------|
//! | `submit_workflow` | `submission`: a workflow submission; optional `request_id` idempotency key |
//! | `submit_adhoc`    | `submission`: `{spec, arrival_slot}`; optional `request_id` idempotency key |
//! | `cancel`          | `sub`: sequence number to cancel         |
//! | `tick`            | `to`: advance virtual time to this slot  |
//! | `status`          | —                                        |
//! | `query`           | `sub`: sequence number to inspect        |
//! | `trace`           | `limit` (optional): tail length          |
//! | `drain`           | — (run everything to completion)         |
//! | `outcome`         | — (after drain: the final `SimOutcome`)  |
//! | `explain`         | — (after drain: per-missed-workflow E00x causal chains) |
//! | `snapshot`        | — (persist session state now)            |
//! | `shutdown`        | — (respond, then close the server)       |
//!
//! Submission payloads are the serde forms of
//! [`flowtime_sim::WorkflowSubmission`] and
//! [`flowtime_sim::AdhocSubmission`] — the exact structures batch
//! scenario files use, so a scenario line can be replayed against a live
//! daemon unchanged.
//!
//! # Durability ordering contract
//!
//! When the daemon runs with a write-ahead log (`--wal-dir`), every
//! state-changing request — `submit_workflow`, `submit_adhoc`, `cancel`,
//! `tick`, `drain` — is appended to the WAL and made durable under the
//! configured fsync policy **before** the session mutates its in-memory
//! state and before the `{"ok":...}` reply is written. The reply is the
//! durability receipt: an acknowledged request survives a crash, and a
//! crash can only lose requests that were never acknowledged (plus, under
//! `--fsync batch:N` or `none`, acknowledged requests whose batch had not
//! yet synced — a window the operator opted into). If the append fails,
//! the request is rejected with [`codes::WAL_IO`] and the session state
//! is untouched — a rejected request never leaves a partial record
//! durable. Without `--wal-dir` the daemon runs in the legacy
//! `durability=none` mode: replies promise nothing beyond process
//! lifetime, exactly as before.
//!
//! # Idempotency keys
//!
//! `submit_workflow` and `submit_adhoc` accept an optional string field
//! `request_id`. The first accepted submission carrying a given key wins;
//! any later submission with the same key — same connection, a client
//! retry after a timeout, or a replay after daemon restart (the table is
//! persisted in the WAL and in snapshots) — is answered with a typed
//! [`codes::DUPLICATE`] error whose `data` field carries
//! `{"sub":<original sequence number>}`. Clients treat `duplicate` as
//! success: the work is already accepted under that sequence number.

use flowtime_sim::{AdhocSubmission, WorkflowSubmission};
use serde_json::Value;

/// Maximum accepted request-line length in bytes (newline excluded).
/// Longer lines are rejected with [`codes::OVERSIZED_PAYLOAD`] without
/// being parsed.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The typed error-code catalogue. Closed: clients may match on these.
pub mod codes {
    /// The request line is not valid JSON.
    pub const MALFORMED_JSON: &str = "malformed-json";
    /// The request object is valid JSON but not a valid request (missing
    /// or ill-typed fields).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The `req` field names no known operation.
    pub const UNKNOWN_REQUEST: &str = "unknown-request";
    /// The request line exceeds [`super::MAX_LINE_BYTES`].
    pub const OVERSIZED_PAYLOAD: &str = "oversized-payload";
    /// A submission's arrival slot lies in already-simulated virtual time.
    pub const LATE_ARRIVAL: &str = "late-arrival";
    /// The submission payload is internally inconsistent.
    pub const MALFORMED_SUBMISSION: &str = "malformed-submission";
    /// The referenced submission sequence number does not exist.
    pub const UNKNOWN_SUBMISSION: &str = "unknown-submission";
    /// The submission was already materialized (or already cancelled)
    /// and can no longer be cancelled.
    pub const CANCEL_TOO_LATE: &str = "cancel-too-late";
    /// The session has been drained; no further mutation is accepted.
    pub const ALREADY_DRAINED: &str = "already-drained";
    /// The outcome was requested before the session was drained.
    pub const NOT_DRAINED: &str = "not-drained";
    /// Virtual time cannot advance: the slot horizon is exhausted.
    pub const HORIZON_EXHAUSTED: &str = "horizon-exhausted";
    /// Snapshot persistence failed (no path configured, or I/O error).
    pub const SNAPSHOT_IO: &str = "snapshot-io";
    /// A snapshot file failed validation (format or checksum).
    pub const SNAPSHOT_CORRUPT: &str = "snapshot-corrupt";
    /// The engine rejected a scheduler decision or invariant mid-run.
    pub const ENGINE_ERROR: &str = "engine-error";
    /// A submission repeated an already-accepted `request_id`; the
    /// error's `data` field carries `{"sub":N}`, the sequence number the
    /// original submission was assigned. Clients treat this as success.
    pub const DUPLICATE: &str = "duplicate";
    /// The write-ahead log could not make the request durable (I/O
    /// failure, disk full, or a poisoned WAL). The request was rejected
    /// and session state is unchanged.
    pub const WAL_IO: &str = "wal-io";
    /// The write-ahead log's sealed history failed validation during
    /// recovery or replay (checksum mismatch outside the crash window,
    /// or a replayed record inconsistent with the session).
    pub const WAL_CORRUPT: &str = "wal-corrupt";
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit a workflow (arrival = its `submit_slot`), with an optional
    /// client idempotency key.
    SubmitWorkflow(Box<WorkflowSubmission>, Option<String>),
    /// Submit an ad-hoc job, with an optional client idempotency key.
    SubmitAdhoc(AdhocSubmission, Option<String>),
    /// Cancel a still-pending submission by sequence number.
    Cancel(u64),
    /// Advance virtual time up to the given slot.
    Tick(u64),
    /// Session status snapshot.
    Status,
    /// Inspect one submission by sequence number.
    Query(u64),
    /// Decision-trace tail (default 32 events).
    Trace(usize),
    /// Run everything to completion and freeze the session.
    Drain,
    /// The final serialized `SimOutcome` (after drain).
    Outcome,
    /// Per-missed-workflow diagnostic chains over the drained session's
    /// certified artifacts (after drain).
    Explain,
    /// Persist a snapshot now.
    Snapshot,
    /// Acknowledge, then close the server loop.
    Shutdown,
}

/// A typed protocol error: a stable code plus human-readable detail,
/// plus optional machine-readable `data` (a complete JSON value) for
/// codes like [`codes::DUPLICATE`] that carry a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable context; never needed for dispatch.
    pub detail: String,
    /// Optional machine-readable payload, embedded verbatim as the
    /// error object's `data` field.
    pub data: Option<String>,
}

impl ProtocolError {
    /// Builds an error from a code and detail.
    pub fn new(code: &'static str, detail: impl Into<String>) -> Self {
        ProtocolError {
            code,
            detail: detail.into(),
            data: None,
        }
    }

    /// Attaches a machine-readable payload (must be complete JSON).
    pub fn with_data(mut self, data: impl Into<String>) -> Self {
        self.data = Some(data.into());
        self
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for ProtocolError {}

/// Extracts a `u64` field, accepting only non-negative integers.
fn u64_field(v: &Value, key: &str) -> Result<u64, ProtocolError> {
    match v.get(key) {
        Some(Value::U64(n)) => Ok(*n),
        Some(Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Some(other) => Err(ProtocolError::new(
            codes::BAD_REQUEST,
            format!(
                "field `{key}` must be a non-negative integer, got {}",
                other.kind()
            ),
        )),
        None => Err(ProtocolError::new(
            codes::BAD_REQUEST,
            format!("missing field `{key}`"),
        )),
    }
}

/// Extracts the optional `request_id` idempotency key: a non-empty
/// string of at most 256 bytes when present.
fn request_id_field(v: &Value) -> Result<Option<String>, ProtocolError> {
    match v.get("request_id") {
        None => Ok(None),
        Some(Value::Str(s)) if !s.is_empty() && s.len() <= 256 => Ok(Some(s.clone())),
        Some(Value::Str(_)) => Err(ProtocolError::new(
            codes::BAD_REQUEST,
            "field `request_id` must be a non-empty string of at most 256 bytes",
        )),
        Some(other) => Err(ProtocolError::new(
            codes::BAD_REQUEST,
            format!("field `request_id` must be a string, got {}", other.kind()),
        )),
    }
}

/// Parses one request line. Enforces the size cap before parsing.
///
/// # Errors
///
/// [`ProtocolError`] with [`codes::OVERSIZED_PAYLOAD`],
/// [`codes::MALFORMED_JSON`], [`codes::BAD_REQUEST`], or
/// [`codes::UNKNOWN_REQUEST`].
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::new(
            codes::OVERSIZED_PAYLOAD,
            format!(
                "request line is {} bytes, cap is {}",
                line.len(),
                MAX_LINE_BYTES
            ),
        ));
    }
    let value = serde_json::parse(line)
        .map_err(|e| ProtocolError::new(codes::MALFORMED_JSON, e.to_string()))?;
    let req = value
        .get("req")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::new(codes::BAD_REQUEST, "missing string field `req`"))?;
    match req {
        "submit_workflow" => {
            let request_id = request_id_field(&value)?;
            let sub = value.get("submission").ok_or_else(|| {
                ProtocolError::new(codes::BAD_REQUEST, "missing field `submission`")
            })?;
            let submission: WorkflowSubmission = serde_json::from_value(sub)
                .map_err(|e| ProtocolError::new(codes::MALFORMED_SUBMISSION, e.to_string()))?;
            Ok(Request::SubmitWorkflow(Box::new(submission), request_id))
        }
        "submit_adhoc" => {
            let request_id = request_id_field(&value)?;
            let sub = value.get("submission").ok_or_else(|| {
                ProtocolError::new(codes::BAD_REQUEST, "missing field `submission`")
            })?;
            let submission: AdhocSubmission = serde_json::from_value(sub)
                .map_err(|e| ProtocolError::new(codes::MALFORMED_SUBMISSION, e.to_string()))?;
            Ok(Request::SubmitAdhoc(submission, request_id))
        }
        "cancel" => Ok(Request::Cancel(u64_field(&value, "sub")?)),
        "tick" => Ok(Request::Tick(u64_field(&value, "to")?)),
        "status" => Ok(Request::Status),
        "query" => Ok(Request::Query(u64_field(&value, "sub")?)),
        "trace" => {
            let limit = match value.get("limit") {
                None => 32,
                Some(_) => u64_field(&value, "limit")? as usize,
            };
            Ok(Request::Trace(limit))
        }
        "drain" => Ok(Request::Drain),
        "outcome" => Ok(Request::Outcome),
        "explain" => Ok(Request::Explain),
        "snapshot" => Ok(Request::Snapshot),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            codes::UNKNOWN_REQUEST,
            format!("unknown request `{other}`"),
        )),
    }
}

/// Renders a success response line (no trailing newline). `body` must be
/// a complete JSON value; it is embedded verbatim, which is what lets
/// the `outcome` endpoint return the engine's serialized `SimOutcome`
/// byte-for-byte.
pub fn ok_line(body: &str) -> String {
    format!("{{\"ok\":{body}}}")
}

/// Renders an error response line (no trailing newline). When the error
/// carries `data`, it is embedded verbatim as a third field.
pub fn err_line(err: &ProtocolError) -> String {
    let detail = serde_json::to_string(&err.detail).expect("string serializes");
    match &err.data {
        Some(data) => format!(
            "{{\"err\":{{\"code\":\"{}\",\"detail\":{},\"data\":{}}}}}",
            err.code, detail, data
        ),
        None => format!(
            "{{\"err\":{{\"code\":\"{}\",\"detail\":{}}}}}",
            err.code, detail
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_bad_lines_typed() {
        let e = parse_request("{not json").unwrap_err();
        assert_eq!(e.code, codes::MALFORMED_JSON);
        let e = parse_request("{\"req\":\"launch_missiles\"}").unwrap_err();
        assert_eq!(e.code, codes::UNKNOWN_REQUEST);
        let e = parse_request("{\"no_req\":1}").unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let e = parse_request("{\"req\":\"tick\"}").unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let e = parse_request("{\"req\":\"tick\",\"to\":-3}").unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let big = format!(
            "{{\"req\":\"status\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_LINE_BYTES)
        );
        let e = parse_request(&big).unwrap_err();
        assert_eq!(e.code, codes::OVERSIZED_PAYLOAD);
    }

    #[test]
    fn parse_accepts_core_requests() {
        assert!(matches!(
            parse_request("{\"req\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            parse_request("{\"req\":\"tick\",\"to\":7}"),
            Ok(Request::Tick(7))
        ));
        assert!(matches!(
            parse_request("{\"req\":\"cancel\",\"sub\":2}"),
            Ok(Request::Cancel(2))
        ));
        assert!(matches!(
            parse_request("{\"req\":\"explain\"}"),
            Ok(Request::Explain)
        ));
    }

    #[test]
    fn request_id_is_validated() {
        let e = parse_request("{\"req\":\"submit_adhoc\",\"submission\":{},\"request_id\":7}")
            .unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let e = parse_request("{\"req\":\"submit_adhoc\",\"submission\":{},\"request_id\":\"\"}")
            .unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let long = format!(
            "{{\"req\":\"submit_adhoc\",\"submission\":{{}},\"request_id\":\"{}\"}}",
            "k".repeat(257)
        );
        let e = parse_request(&long).unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
    }

    #[test]
    fn error_data_is_embedded_verbatim() {
        let e = ProtocolError::new(codes::DUPLICATE, "seen before").with_data("{\"sub\":4}");
        let line = err_line(&e);
        let v = serde_json::parse(&line).unwrap();
        let err = v.get("err").unwrap();
        assert_eq!(err.get("code").unwrap().as_str().unwrap(), "duplicate");
        assert!(matches!(
            err.get("data").unwrap().get("sub").unwrap(),
            Value::U64(4)
        ));
    }

    #[test]
    fn response_lines_are_json() {
        assert_eq!(ok_line("{\"now\":3}"), "{\"ok\":{\"now\":3}}");
        let e = ProtocolError::new(codes::BAD_REQUEST, "missing `to`");
        let line = err_line(&e);
        let v = serde_json::parse(&line).unwrap();
        assert_eq!(
            v.get("err").unwrap().get("code").unwrap().as_str().unwrap(),
            "bad-request"
        );
    }
}
