//! Transports for a [`Session`]: the in-process loopback used by the
//! deterministic test harness, and the real single-threaded TCP event
//! loop behind `flowtimed`.
//!
//! Both transports funnel every request line through the same
//! [`handle_line`], so a loopback-driven session and a TCP-driven session
//! given the same lines produce byte-identical responses — the protocol
//! test suites exercise loopback for determinism and TCP only for
//! socket-level behavior (framing, oversized lines, mid-request
//! disconnects).

use crate::protocol::{self, ProtocolError, Request, MAX_LINE_BYTES};
use crate::session::Session;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Dispatches one request line against a session and renders the
/// response line (no trailing newline). The second value is `true` when
/// the request was `shutdown` and the server loop should exit.
pub fn handle_line(session: &mut Session, line: &str) -> (String, bool) {
    match protocol::parse_request(line) {
        Err(e) => (protocol::err_line(&e), false),
        Ok(request) => {
            let shutdown = matches!(request, Request::Shutdown);
            match session.handle(request) {
                Ok(body) => (protocol::ok_line(&body), shutdown),
                Err(e) => (protocol::err_line(&e), shutdown),
            }
        }
    }
}

/// An in-process transport: the same request/response byte stream as the
/// TCP server, with no sockets, threads, or wall-clock anywhere — fully
/// deterministic, which is what lets the differential and property
/// suites compare daemon sessions against batch runs byte-for-byte.
pub struct Loopback {
    session: Session,
}

impl Loopback {
    /// Wraps a session in the loopback transport.
    pub fn new(session: Session) -> Self {
        Loopback { session }
    }

    /// Sends one request line and returns the response line.
    pub fn request_line(&mut self, line: &str) -> String {
        handle_line(&mut self.session, line).0
    }

    /// Read access to the session (tests pull outcome bytes and traces
    /// out directly rather than re-parsing them off the wire).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Unwraps back into the session.
    pub fn into_session(self) -> Session {
        self.session
    }
}

/// One live TCP connection with its partial-line read buffer.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Runs the single-threaded event loop until a `shutdown` request
/// arrives. Connections are served round-robin with non-blocking reads;
/// requests are processed whole-line-at-a-time in arrival order, so the
/// engine only ever advances between requests — exactly the loopback
/// discipline, plus sockets.
///
/// `snapshot_every`: after every N handled requests, persist a snapshot
/// (if the session has a snapshot path configured). Snapshot failures
/// are reported to stderr but never take the daemon down.
///
/// # Errors
///
/// Only fatal listener errors; per-connection errors (resets,
/// mid-request disconnects) just drop that connection.
pub fn serve(
    listener: TcpListener,
    mut session: Session,
    snapshot_every: Option<u64>,
) -> std::io::Result<Session> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<Conn> = Vec::new();
    let mut handled: u64 = 0;
    'outer: loop {
        // Accept everything pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true)?;
                    conns.push(Conn {
                        stream,
                        buf: Vec::new(),
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        let mut made_progress = false;
        let mut i = 0;
        while i < conns.len() {
            match pump_conn(&mut conns[i], &mut session, &mut handled, snapshot_every) {
                PumpResult::Idle => i += 1,
                PumpResult::Progress => {
                    made_progress = true;
                    i += 1;
                }
                PumpResult::Closed => {
                    // A dropped connection — mid-request or not — only
                    // affects that client; buffered partial lines die
                    // with it.
                    conns.swap_remove(i);
                }
                PumpResult::Shutdown => break 'outer,
            }
        }
        if !made_progress {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(session)
}

enum PumpResult {
    Idle,
    Progress,
    Closed,
    Shutdown,
}

/// Reads whatever the connection has, processes every complete line, and
/// enforces the line-length cap mid-stream (a client streaming an
/// unbounded line is cut off at the cap, not buffered forever).
fn pump_conn(
    conn: &mut Conn,
    session: &mut Session,
    handled: &mut u64,
    snapshot_every: Option<u64>,
) -> PumpResult {
    let mut chunk = [0u8; 4096];
    let mut progress = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return PumpResult::Closed,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                progress = true;
                // Process complete lines as they land.
                while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = conn.buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes[..pos]).into_owned();
                    let (response, shutdown) = handle_line(session, line.trim_end_matches('\r'));
                    if write_line(&mut conn.stream, &response).is_err() {
                        return PumpResult::Closed;
                    }
                    *handled += 1;
                    maybe_snapshot(session, *handled, snapshot_every);
                    if shutdown {
                        return PumpResult::Shutdown;
                    }
                }
                if conn.buf.len() > MAX_LINE_BYTES {
                    let e = ProtocolError::new(
                        protocol::codes::OVERSIZED_PAYLOAD,
                        format!("request line exceeded {MAX_LINE_BYTES} bytes before a newline"),
                    );
                    let _ = write_line(&mut conn.stream, &protocol::err_line(&e));
                    return PumpResult::Closed;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                return if progress {
                    PumpResult::Progress
                } else {
                    PumpResult::Idle
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return PumpResult::Closed,
        }
    }
}

/// Writes `line` plus newline, retrying short/blocked writes — the
/// stream is non-blocking, and outcome payloads can exceed one socket
/// buffer.
fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(100));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn maybe_snapshot(session: &mut Session, handled: u64, snapshot_every: Option<u64>) {
    let Some(every) = snapshot_every else { return };
    if every == 0 || !handled.is_multiple_of(every) || session.drained() {
        return;
    }
    if let Err(e) = session.write_snapshot() {
        // `snapshot-io` with no path configured is expected when the
        // operator enabled periodic snapshots without a path; anything
        // else is worth a warning.
        if e.code != protocol::codes::SNAPSHOT_IO || !e.detail.contains("no snapshot path") {
            eprintln!("flowtimed: periodic snapshot failed: {e}");
        }
    }
}
