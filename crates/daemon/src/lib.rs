//! `flowtimed`: a long-running FlowTime scheduling daemon.
//!
//! The daemon turns the batch simulation engine into an online service:
//! clients submit deadline-aware workflows and ad-hoc jobs over
//! newline-delimited JSON while the engine advances in **virtual time**,
//! replanning through the FlowTime scheduler stack on every slot
//! boundary exactly as a batch run would.
//!
//! # Layers
//!
//! * [`protocol`] — the wire grammar: requests, typed error codes,
//!   response framing, the line-length cap.
//! * [`session`] — the state machine: pending-queue submission
//!   discipline, virtual-clock advancement, cancellation, drain.
//! * [`snapshot`] — checksummed crash-recovery snapshots; restore
//!   replays the submission log deterministically.
//! * [`wal`] — the crash-consistent write-ahead log: every accepted
//!   influence is durable (under a configurable fsync policy) before
//!   its reply is written; snapshots become compaction points; seeded
//!   I/O fault injection drives the kill-9 chaos suites.
//! * [`server`] — transports: the in-process [`server::Loopback`] used
//!   by the deterministic test harness, and the single-threaded
//!   non-blocking TCP loop behind the `flowtimed` binary.
//! * [`client`] — the blocking client used by `flowtime-cli
//!   submit|status|drain`.
//!
//! # Determinism contract
//!
//! A session is a pure function of its request-line sequence: no
//! wall-clock, no threads, no randomness. The submission log a session
//! records replays through [`flowtime_sim::Engine::from_log`] to a
//! byte-identical [`flowtime_sim::SimOutcome`], auditor-certified on
//! both sides — the property the `daemon_differential` and
//! `daemon_props` suites enforce across every scheduler and fault seed.

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;
pub mod snapshot;
pub mod wal;

pub use client::{Client, ClientError};
pub use protocol::{codes, ProtocolError, Request, MAX_LINE_BYTES};
pub use server::{handle_line, serve, Loopback};
pub use session::{Session, SessionConfig};
pub use snapshot::{SnapshotBody, SnapshotError};
pub use wal::{
    ChaosKill, DiskFaultPlan, FaultKind, FsyncPolicy, RecoveryReport, Wal, WalConfig, WalError,
    WalRecord,
};
