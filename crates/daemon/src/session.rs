//! A daemon session: one online engine run driven by protocol requests.
//!
//! # Virtual-time model
//!
//! The session owns a virtual clock (the engine's `now`) that advances
//! **only** through explicit `tick` and `drain` requests — never from
//! wall-clock time — so a session is a deterministic function of its
//! request sequence. Submissions are accepted for any arrival slot at or
//! after `now`, parked in a pending queue, and injected into the engine
//! exactly when virtual time reaches their arrival slot; until then they
//! can be cancelled. This queued-injection discipline is what makes the
//! recorded [`SubmissionLog`] replayable: a batch
//! [`flowtime_sim::Engine::from_log`] run over the same log materializes
//! the identical dense job table and produces a byte-identical
//! [`SimOutcome`].
//!
//! # Lifecycle
//!
//! `accepting` (submissions + ticks) → `drain` (runs everything to
//! completion, freezes the outcome and trace) → `drained` (read-only:
//! `status` / `trace` / `outcome` still served; mutations are typed
//! errors).

use crate::protocol::{codes, ProtocolError, Request};
use crate::snapshot::{self, SnapshotBody};
use flowtime::{
    CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler,
    MorpheusScheduler,
};
use flowtime_dag::JobId;
use flowtime_sim::{
    AdhocSubmission, ClusterConfig, DecisionTrace, LogEntry, OnlineEngine, Scheduler, SimError,
    SimOutcome, StepOutcome, SubmissionLog, TraceHandle, WorkflowSubmission,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Immutable session parameters, persisted in snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Cluster the engine simulates.
    pub cluster: ClusterConfig,
    /// Scheduler name, resolved through the `Algo` registry
    /// (`flowtime`, `edf`, `fifo`, `fair`, `cora`, `morpheus`, ...).
    pub scheduler: String,
    /// Slot horizon for the underlying engine.
    pub max_slots: u64,
    /// Decision-trace ring capacity (events).
    pub trace_capacity: u64,
    /// Where `snapshot` requests persist state; `None` disables them.
    #[serde(default)]
    pub snapshot_path: Option<String>,
}

/// A submission accepted but not yet materialized into the engine.
#[derive(Debug, Clone)]
enum PendingEntry {
    Workflow(WorkflowSubmission),
    Adhoc(AdhocSubmission),
}

/// Where a logged sequence number currently stands.
#[derive(Debug, Clone)]
enum SeqState {
    /// Accepted, waiting for virtual time to reach `arrival`.
    Pending(u64),
    /// Cancelled while pending; will never materialize.
    Cancelled,
    /// Materialized into the engine as these job ids.
    Injected(Vec<JobId>),
    /// The sequence number belongs to a cancel request itself.
    CancelRequest,
}

/// The frozen result of a drained session.
struct Finished {
    /// `serde_json::to_string(&outcome)` — the canonical bytes the
    /// differential harness compares against a batch run.
    outcome_json: String,
    outcome: SimOutcome,
    trace: DecisionTrace,
}

/// One protocol-driven online run. See the module docs.
pub struct Session {
    config: SessionConfig,
    scheduler: Box<dyn Scheduler>,
    /// `None` once drained (the engine was consumed by `finish`).
    online: Option<OnlineEngine>,
    trace: TraceHandle,
    /// Pending submissions keyed by `(arrival, seq)` — iteration order is
    /// exactly the injection (and batch materialization) order.
    pending: BTreeMap<(u64, u64), PendingEntry>,
    seq_state: BTreeMap<u64, SeqState>,
    log: SubmissionLog,
    next_seq: u64,
    finished: Option<Finished>,
}

impl Session {
    /// Builds a fresh session.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] with [`codes::BAD_REQUEST`] for an unknown
    /// scheduler name.
    pub fn new(config: SessionConfig) -> Result<Self, ProtocolError> {
        let scheduler = make_scheduler(&config.scheduler, &config.cluster)?;
        let (online, trace) = OnlineEngine::new(config.cluster.clone(), config.max_slots)
            .with_trace(config.trace_capacity as usize);
        Ok(Session {
            config,
            scheduler,
            online: Some(online),
            trace,
            pending: BTreeMap::new(),
            seq_state: BTreeMap::new(),
            log: SubmissionLog::new(),
            next_seq: 0,
            finished: None,
        })
    }

    /// Rebuilds a session from a snapshot body: replays the recorded log
    /// through a fresh engine, then advances virtual time to the
    /// snapshotted slot. Determinism makes this exact crash recovery —
    /// the restored session continues byte-identically.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] if the config is invalid or the replay fails
    /// (which means the snapshot does not describe a reachable state).
    pub fn restore(body: SnapshotBody) -> Result<Self, ProtocolError> {
        let mut session = Session::new(body.config)?;
        for entry in &body.log.entries {
            match entry {
                LogEntry::Workflow {
                    seq, submission, ..
                } => {
                    let arrival = submission.workflow.submit_slot();
                    session
                        .pending
                        .insert((arrival, *seq), PendingEntry::Workflow(submission.clone()));
                    session.seq_state.insert(*seq, SeqState::Pending(arrival));
                }
                LogEntry::Adhoc {
                    seq, submission, ..
                } => {
                    let arrival = submission.arrival_slot;
                    session
                        .pending
                        .insert((arrival, *seq), PendingEntry::Adhoc(submission.clone()));
                    session.seq_state.insert(*seq, SeqState::Pending(arrival));
                }
                LogEntry::Cancel { seq, target, .. } => {
                    let arrival = match session.seq_state.get(target) {
                        Some(SeqState::Pending(a)) => *a,
                        _ => {
                            return Err(ProtocolError::new(
                                codes::SNAPSHOT_CORRUPT,
                                format!("cancel of non-pending submission {target} in log"),
                            ))
                        }
                    };
                    session.pending.remove(&(arrival, *target));
                    session.seq_state.insert(*target, SeqState::Cancelled);
                    session.seq_state.insert(*seq, SeqState::CancelRequest);
                }
            }
        }
        session.log = body.log;
        session.next_seq = body.next_seq;
        session.run_to(body.now)?;
        if session.now() != body.now {
            return Err(ProtocolError::new(
                codes::SNAPSHOT_CORRUPT,
                format!(
                    "replay reached slot {} but snapshot was taken at {}",
                    session.now(),
                    body.now
                ),
            ));
        }
        Ok(session)
    }

    /// Current virtual slot.
    pub fn now(&self) -> u64 {
        match &self.online {
            Some(online) => online.now(),
            None => self
                .finished
                .as_ref()
                .map_or(0, |f| f.outcome.slots_elapsed),
        }
    }

    /// True once the session has been drained.
    pub fn drained(&self) -> bool {
        self.finished.is_some()
    }

    /// The serialized `SimOutcome` of a drained session — the canonical
    /// bytes the differential harness compares.
    pub fn outcome_json(&self) -> Option<&str> {
        self.finished.as_ref().map(|f| f.outcome_json.as_str())
    }

    /// The frozen decision trace of a drained session.
    pub fn final_trace(&self) -> Option<&DecisionTrace> {
        self.finished.as_ref().map(|f| &f.trace)
    }

    /// The recorded submission log (the replay artifact).
    pub fn log(&self) -> &SubmissionLog {
        &self.log
    }

    /// Dispatches one parsed request, returning the `ok`-body JSON.
    /// `Shutdown` is acknowledged here; closing the transport is the
    /// server loop's job.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for every failure mode; the session
    /// never panics on bad input.
    pub fn handle(&mut self, request: Request) -> Result<String, ProtocolError> {
        match request {
            Request::SubmitWorkflow(sub) => self.submit_workflow(*sub),
            Request::SubmitAdhoc(sub) => self.submit_adhoc(sub),
            Request::Cancel(seq) => self.cancel(seq),
            Request::Tick(to) => self.tick(to),
            Request::Status => self.status(),
            Request::Query(seq) => self.query(seq),
            Request::Trace(limit) => self.trace_tail(limit),
            Request::Drain => self.drain(),
            Request::Outcome => self.outcome(),
            Request::Snapshot => self.write_snapshot(),
            Request::Shutdown => Ok("{\"shutdown\":true}".to_string()),
        }
    }

    fn require_accepting(&self) -> Result<(), ProtocolError> {
        if self.finished.is_some() {
            return Err(ProtocolError::new(
                codes::ALREADY_DRAINED,
                "session is drained; no further mutation is accepted",
            ));
        }
        Ok(())
    }

    fn check_arrival(&self, arrival: u64) -> Result<(), ProtocolError> {
        if arrival < self.now() {
            return Err(ProtocolError::new(
                codes::LATE_ARRIVAL,
                format!(
                    "arrival slot {arrival} is in the past (virtual time is {})",
                    self.now()
                ),
            ));
        }
        Ok(())
    }

    fn submit_workflow(&mut self, submission: WorkflowSubmission) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        let arrival = submission.workflow.submit_slot();
        self.check_arrival(arrival)?;
        let n = submission.workflow.len();
        if submission
            .actual_work
            .as_ref()
            .is_some_and(|v| v.len() != n)
            || submission
                .job_deadlines
                .as_ref()
                .is_some_and(|v| v.len() != n)
        {
            return Err(ProtocolError::new(
                codes::MALFORMED_SUBMISSION,
                "per-node vector length differs from workflow size",
            ));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.entries.push(LogEntry::Workflow {
            seq,
            at: self.now(),
            submission: submission.clone(),
        });
        self.pending
            .insert((arrival, seq), PendingEntry::Workflow(submission));
        self.seq_state.insert(seq, SeqState::Pending(arrival));
        Ok(format!(
            "{{\"sub\":{seq},\"arrival\":{arrival},\"jobs\":{n}}}"
        ))
    }

    fn submit_adhoc(&mut self, submission: AdhocSubmission) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        let arrival = submission.arrival_slot;
        self.check_arrival(arrival)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.entries.push(LogEntry::Adhoc {
            seq,
            at: self.now(),
            submission: submission.clone(),
        });
        self.pending
            .insert((arrival, seq), PendingEntry::Adhoc(submission));
        self.seq_state.insert(seq, SeqState::Pending(arrival));
        Ok(format!(
            "{{\"sub\":{seq},\"arrival\":{arrival},\"jobs\":1}}"
        ))
    }

    fn cancel(&mut self, target: u64) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        match self.seq_state.get(&target) {
            Some(SeqState::Pending(arrival)) => {
                let arrival = *arrival;
                self.pending.remove(&(arrival, target));
                self.seq_state.insert(target, SeqState::Cancelled);
                let seq = self.next_seq;
                self.next_seq += 1;
                self.log.entries.push(LogEntry::Cancel {
                    seq,
                    at: self.now(),
                    target,
                });
                Ok(format!("{{\"cancelled\":{target}}}"))
            }
            Some(SeqState::Cancelled) => Err(ProtocolError::new(
                codes::CANCEL_TOO_LATE,
                format!("submission {target} was already cancelled"),
            )),
            Some(SeqState::Injected(_)) => Err(ProtocolError::new(
                codes::CANCEL_TOO_LATE,
                format!("submission {target} already materialized into the engine"),
            )),
            Some(SeqState::CancelRequest) | None => Err(ProtocolError::new(
                codes::UNKNOWN_SUBMISSION,
                format!("no submission with sequence number {target}"),
            )),
        }
    }

    /// Materializes every pending submission whose arrival slot equals
    /// the current virtual slot, in `(arrival, seq)` order.
    fn flush_arrivals(&mut self) -> Result<(), ProtocolError> {
        let online = self
            .online
            .as_mut()
            .expect("flush only runs while accepting");
        let now = online.now();
        while let Some((&(arrival, seq), _)) = self.pending.iter().next() {
            if arrival > now {
                break;
            }
            let entry = self
                .pending
                .remove(&(arrival, seq))
                .expect("key just observed");
            let ids = match entry {
                PendingEntry::Workflow(sub) => online.submit_workflow(sub),
                PendingEntry::Adhoc(sub) => online.submit_adhoc(sub).map(|id| vec![id]),
            }
            .map_err(engine_error)?;
            self.seq_state.insert(seq, SeqState::Injected(ids));
        }
        Ok(())
    }

    /// Advances virtual time to `target`, injecting arrivals on the way
    /// and burning idle gap slots while future submissions are queued.
    /// Parks (stops early) when no work remains — the batch run would
    /// have ended there too.
    fn run_to(&mut self, target: u64) -> Result<(), ProtocolError> {
        while self.online.as_ref().expect("running session").now() < target {
            self.flush_arrivals()?;
            let online = self.online.as_mut().expect("running session");
            let step = if online.incomplete() == 0 {
                if self.pending.is_empty() {
                    break; // Parked: nothing to simulate until new work.
                }
                online.step_idle(&mut *self.scheduler)
            } else {
                online.step(&mut *self.scheduler)
            }
            .map_err(engine_error)?;
            match step {
                StepOutcome::Advanced => {}
                StepOutcome::Complete => break,
                StepOutcome::HorizonExhausted => {
                    return Err(ProtocolError::new(
                        codes::HORIZON_EXHAUSTED,
                        format!("slot horizon {} exhausted", self.config.max_slots),
                    ))
                }
            }
        }
        Ok(())
    }

    fn tick(&mut self, to: u64) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        self.run_to(to)?;
        let online = self.online.as_ref().expect("running session");
        Ok(format!(
            "{{\"now\":{},\"incomplete\":{},\"pending\":{}}}",
            online.now(),
            online.incomplete(),
            self.pending.len()
        ))
    }

    /// Runs everything — pending and injected — to completion, then
    /// freezes the outcome and trace. Idempotent: draining a drained
    /// session returns the same summary.
    fn drain(&mut self) -> Result<String, ProtocolError> {
        if self.finished.is_none() {
            loop {
                self.flush_arrivals()?;
                let online = self.online.as_mut().expect("running session");
                let step = if online.incomplete() == 0 && !self.pending.is_empty() {
                    online.step_idle(&mut *self.scheduler)
                } else {
                    online.step(&mut *self.scheduler)
                }
                .map_err(engine_error)?;
                match step {
                    StepOutcome::Advanced => {}
                    StepOutcome::Complete if self.pending.is_empty() => break,
                    StepOutcome::Complete => {}
                    StepOutcome::HorizonExhausted => break, // partial outcome
                }
            }
            let online = self.online.take().expect("running session");
            let outcome = online.finish(&mut *self.scheduler);
            let outcome_json = serde_json::to_string(&outcome)
                .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?;
            let trace = self.trace.take();
            self.finished = Some(Finished {
                outcome_json,
                outcome,
                trace,
            });
        }
        let f = self.finished.as_ref().expect("just set");
        Ok(format!(
            "{{\"now\":{},\"completed_jobs\":{},\"complete\":{}}}",
            f.outcome.slots_elapsed,
            f.outcome.metrics.jobs.len(),
            f.outcome.is_complete()
        ))
    }

    fn status(&mut self) -> Result<String, ProtocolError> {
        if let Some(f) = &self.finished {
            return Ok(format!(
                "{{\"phase\":\"drained\",\"now\":{},\"completed_jobs\":{},\"complete\":{}}}",
                f.outcome.slots_elapsed,
                f.outcome.metrics.jobs.len(),
                f.outcome.is_complete()
            ));
        }
        let online = self.online.as_ref().expect("running session");
        let st = online.status();
        let status_json = serde_json::to_string(&st)
            .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?;
        let solver = match self.scheduler.telemetry() {
            Some(t) => serde_json::to_string(&t)
                .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
            None => "null".to_string(),
        };
        Ok(format!(
            "{{\"phase\":\"accepting\",\"engine\":{status_json},\"solver\":{solver},\"pending\":{},\"logged\":{}}}",
            self.pending.len(),
            self.log.len()
        ))
    }

    fn query(&mut self, seq: u64) -> Result<String, ProtocolError> {
        match self.seq_state.get(&seq) {
            None => Err(ProtocolError::new(
                codes::UNKNOWN_SUBMISSION,
                format!("no submission with sequence number {seq}"),
            )),
            Some(SeqState::CancelRequest) => {
                Ok(format!("{{\"sub\":{seq},\"state\":\"cancel-request\"}}"))
            }
            Some(SeqState::Pending(arrival)) => Ok(format!(
                "{{\"sub\":{seq},\"state\":\"pending\",\"arrival\":{arrival}}}"
            )),
            Some(SeqState::Cancelled) => Ok(format!("{{\"sub\":{seq},\"state\":\"cancelled\"}}")),
            Some(SeqState::Injected(ids)) => {
                let mut jobs = Vec::new();
                for id in ids {
                    if let Some(online) = &self.online {
                        if let Some(p) = online.job_progress(*id) {
                            jobs.push(serde_json::to_string(&p).map_err(|e| {
                                ProtocolError::new(codes::ENGINE_ERROR, e.to_string())
                            })?);
                        }
                    } else {
                        jobs.push(format!("{{\"id\":{}}}", id.as_u64()));
                    }
                }
                Ok(format!(
                    "{{\"sub\":{seq},\"state\":\"materialized\",\"jobs\":[{}]}}",
                    jobs.join(",")
                ))
            }
        }
    }

    fn trace_tail(&mut self, limit: usize) -> Result<String, ProtocolError> {
        let trace = match &self.finished {
            Some(f) => f.trace.clone(),
            None => self.trace.snapshot(),
        };
        let events: Vec<&flowtime_sim::TraceEvent> = trace.events().collect();
        let skip = events.len().saturating_sub(limit);
        let mut tail = Vec::new();
        for ev in &events[skip..] {
            tail.push(
                serde_json::to_string(ev)
                    .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
            );
        }
        Ok(format!(
            "{{\"recorded\":{},\"dropped\":{},\"tail\":[{}]}}",
            trace.recorded(),
            trace.dropped(),
            tail.join(",")
        ))
    }

    fn outcome(&self) -> Result<String, ProtocolError> {
        match &self.finished {
            Some(f) => Ok(format!("{{\"outcome\":{}}}", f.outcome_json)),
            None => Err(ProtocolError::new(
                codes::NOT_DRAINED,
                "outcome is only available after `drain`",
            )),
        }
    }

    /// Persists the session's replayable state to the configured path.
    pub fn write_snapshot(&self) -> Result<String, ProtocolError> {
        let path =
            self.config.snapshot_path.as_ref().ok_or_else(|| {
                ProtocolError::new(codes::SNAPSHOT_IO, "no snapshot path configured")
            })?;
        if self.finished.is_some() {
            return Err(ProtocolError::new(
                codes::ALREADY_DRAINED,
                "drained sessions have nothing left to snapshot",
            ));
        }
        let body = SnapshotBody {
            config: self.config.clone(),
            log: self.log.clone(),
            now: self.now(),
            next_seq: self.next_seq,
        };
        let bytes = snapshot::save(path, &body)
            .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?;
        let path_json = serde_json::to_string(path)
            .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?;
        Ok(format!("{{\"path\":{path_json},\"bytes\":{bytes}}}"))
    }
}

/// Resolves a scheduler name, ignoring case and separators, constructing
/// it exactly as the bench harness's `Algo::make` does — the daemon and
/// a batch comparison run must start from identical scheduler state for
/// the differential byte-parity contract to hold.
fn make_scheduler(
    name: &str,
    cluster: &ClusterConfig,
) -> Result<Box<dyn Scheduler>, ProtocolError> {
    let norm: String = name
        .chars()
        .filter(char::is_ascii_alphanumeric)
        .collect::<String>()
        .to_ascii_lowercase();
    Ok(match norm.as_str() {
        "flowtime" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig::default(),
        )),
        "flowtimenods" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig {
                slack_slots: 0,
                ..Default::default()
            },
        )),
        "cora" => Box::new(CoraScheduler::new(cluster.clone())),
        "edf" => Box::new(EdfScheduler::new()),
        "fair" => Box::new(FairScheduler::new()),
        "fifo" => Box::new(FifoScheduler::new()),
        "morpheus" => Box::new(MorpheusScheduler::new(cluster.clone())),
        _ => {
            return Err(ProtocolError::new(
                codes::BAD_REQUEST,
                format!("unknown scheduler `{name}`"),
            ))
        }
    })
}

/// Maps an engine error into the protocol's typed form.
fn engine_error(e: SimError) -> ProtocolError {
    match e {
        SimError::MalformedSubmission { .. } => {
            ProtocolError::new(codes::MALFORMED_SUBMISSION, e.to_string())
        }
        SimError::HorizonExhausted { .. } => {
            ProtocolError::new(codes::HORIZON_EXHAUSTED, e.to_string())
        }
        other => ProtocolError::new(codes::ENGINE_ERROR, other.to_string()),
    }
}
