//! A daemon session: one online engine run driven by protocol requests.
//!
//! # Virtual-time model
//!
//! The session owns a virtual clock that advances **only** through
//! explicit `tick` and `drain` requests — never from wall-clock time — so
//! a session is a deterministic function of its request sequence.
//! Submissions are accepted for any arrival slot at or after the clock,
//! parked in a pending queue, and injected into an engine exactly when
//! virtual time reaches their arrival slot; until then they can be
//! cancelled. This queued-injection discipline is what makes the recorded
//! [`SubmissionLog`] replayable: a batch [`flowtime_sim::Engine::from_log`]
//! run over the same log materializes the identical dense job table and
//! produces a byte-identical [`SimOutcome`].
//!
//! # Sharding
//!
//! With [`SessionConfig::pods`] > 1 the session runs one engine per pod
//! over the pod's capacity slice ([`flowtime_sim::pod_cluster`]), each with
//! its own scheduler instance (and plan cache). Submissions are placed at
//! injection time through the same [`PlacerState`] policy the batch layer
//! uses, in `(arrival, seq)` order — exactly the order
//! [`flowtime_sim::place_log`] replays — so a batch run over each per-pod
//! sub-log reproduces the per-pod outcomes byte-for-byte. A pod with no
//! work parks (its local clock lags the session clock) and resumes when a
//! placement lands on it; its local timeline therefore matches the batch
//! engine's, which also simulates idle gaps only up to its own last
//! completion. With one pod every code path collapses to the pre-sharding
//! behavior and all protocol responses are byte-identical to it.
//!
//! # Lifecycle
//!
//! `accepting` (submissions + ticks) → `drain` (runs everything to
//! completion, freezes the outcome and trace) → `drained` (read-only:
//! `status` / `trace` / `outcome` still served; mutations are typed
//! errors).

use crate::protocol::{codes, ProtocolError, Request};
use crate::snapshot::{self, SnapshotBody};
use crate::wal::{self, DiskFaultPlan, RecoveryReport, Wal, WalConfig, WalRecord};
use flowtime::{
    CoraScheduler, EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler,
    MorpheusScheduler,
};
use flowtime_dag::JobId;
use flowtime_sim::{
    pod_cluster, AdhocSubmission, ClusterConfig, DecisionTrace, LogEntry, OnlineEngine, Placer,
    PlacerState, Scheduler, ShardSpec, SimError, SimOutcome, SolverTelemetry, StepOutcome,
    SubmissionLog, TraceHandle, WorkflowSubmission,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Immutable session parameters, persisted in snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Cluster the engine simulates.
    pub cluster: ClusterConfig,
    /// Scheduler name, resolved through the `Algo` registry
    /// (`flowtime`, `edf`, `fifo`, `fair`, `cora`, `morpheus`, ...).
    pub scheduler: String,
    /// Slot horizon for the underlying engine.
    pub max_slots: u64,
    /// Decision-trace ring capacity (events).
    pub trace_capacity: u64,
    /// Where `snapshot` requests persist state; `None` disables them.
    #[serde(default)]
    pub snapshot_path: Option<String>,
    /// Number of pods to shard the cluster into; `0` and `1` both mean the
    /// unsharded single engine. Serialized only when sharded, so unsharded
    /// snapshots keep their pre-sharding bytes.
    #[serde(default, skip_serializing_if = "flowtime_sim::serde_skip::zero_u64")]
    pub pods: u64,
    /// Placement policy name (`firstfit`, `worstfit`, `demand`); only
    /// meaningful — and only accepted — with `pods > 1`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub placer: Option<String>,
}

/// A submission accepted but not yet materialized into an engine.
#[derive(Debug, Clone)]
enum PendingEntry {
    Workflow(WorkflowSubmission),
    Adhoc(AdhocSubmission),
}

/// Where a logged sequence number currently stands.
#[derive(Debug, Clone)]
enum SeqState {
    /// Accepted, waiting for virtual time to reach `arrival`.
    Pending(u64),
    /// Cancelled while pending; will never materialize.
    Cancelled,
    /// Materialized into pod `pod`'s engine as these job ids.
    Injected { pod: usize, ids: Vec<JobId> },
    /// The sequence number belongs to a cancel request itself.
    CancelRequest,
}

/// The frozen result of a drained session.
struct Finished {
    /// For one pod, `serde_json::to_string(&outcome)` — the canonical
    /// bytes the differential harness compares against a batch run. For
    /// several pods, `{"pods":[...]}` over the per-pod outcomes (each of
    /// which is individually batch-comparable).
    outcome_json: String,
    outcomes: Vec<SimOutcome>,
    traces: Vec<DecisionTrace>,
}

impl Finished {
    fn now(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.slots_elapsed)
            .max()
            .unwrap_or(0)
    }

    fn completed_jobs(&self) -> usize {
        self.outcomes.iter().map(|o| o.metrics.jobs.len()).sum()
    }

    fn complete(&self) -> bool {
        self.outcomes.iter().all(SimOutcome::is_complete)
    }
}

/// One pod's engine, scheduler, and trace recorder.
struct PodRuntime {
    scheduler: Box<dyn Scheduler>,
    /// `None` once drained (the engine was consumed by `finish`).
    online: Option<OnlineEngine>,
    trace: TraceHandle,
}

/// One protocol-driven online run. See the module docs.
pub struct Session {
    config: SessionConfig,
    /// One entry per pod; a single entry is the unsharded engine.
    pods: Vec<PodRuntime>,
    /// Placement state, present only when sharded (`pods.len() > 1`).
    placer: Option<PlacerState>,
    /// The session's virtual clock. With one pod this always equals the
    /// engine's `now`; with several it bounds every pod's local clock
    /// from above (parked pods lag it).
    clock: u64,
    /// Pending submissions keyed by `(arrival, seq)` — iteration order is
    /// exactly the injection (and batch materialization) order.
    pending: BTreeMap<(u64, u64), PendingEntry>,
    seq_state: BTreeMap<u64, SeqState>,
    log: SubmissionLog,
    next_seq: u64,
    finished: Option<Finished>,
    /// Write-ahead log; when present, every accepted mutation is made
    /// durable here *before* the session state changes and the reply is
    /// written (the protocol's durability ordering contract).
    wal: Option<Wal>,
    /// Idempotency keys already accepted → the seq each was assigned.
    request_ids: BTreeMap<String, u64>,
}

impl Session {
    /// Builds a fresh session.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] with [`codes::BAD_REQUEST`] for an unknown
    /// scheduler name, an unknown placer name, or a placer configured
    /// without `pods > 1`.
    pub fn new(config: SessionConfig) -> Result<Self, ProtocolError> {
        let pod_count = config.pods.max(1) as usize;
        let policy = match &config.placer {
            None => Placer::Demand,
            Some(name) if pod_count > 1 => Placer::parse(name).ok_or_else(|| {
                ProtocolError::new(
                    codes::BAD_REQUEST,
                    format!("unknown placer `{name}` (firstfit, worstfit, demand)"),
                )
            })?,
            Some(_) => {
                return Err(ProtocolError::new(
                    codes::BAD_REQUEST,
                    "a placer only makes sense with pods > 1",
                ))
            }
        };
        let mut pods = Vec::with_capacity(pod_count);
        for i in 0..pod_count {
            let pc = pod_cluster(&config.cluster, pod_count, i);
            let scheduler = make_scheduler(&config.scheduler, &pc)?;
            let (online, trace) =
                OnlineEngine::new(pc, config.max_slots).with_trace(config.trace_capacity as usize);
            pods.push(PodRuntime {
                scheduler,
                online: Some(online),
                trace,
            });
        }
        let placer = (pod_count > 1).then(|| {
            PlacerState::for_cluster(
                &ShardSpec::new(pod_count).with_placer(policy),
                &config.cluster,
            )
        });
        Ok(Session {
            config,
            pods,
            placer,
            clock: 0,
            pending: BTreeMap::new(),
            seq_state: BTreeMap::new(),
            log: SubmissionLog::new(),
            next_seq: 0,
            finished: None,
            wal: None,
            request_ids: BTreeMap::new(),
        })
    }

    /// Attaches a write-ahead log. From here on every accepted mutation
    /// is appended (and synced per the WAL's fsync policy) before the
    /// session state changes.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// Whether a write-ahead log is attached.
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// The idempotency-key table (key → assigned seq), for tests.
    pub fn request_ids(&self) -> &BTreeMap<String, u64> {
        &self.request_ids
    }

    /// Recovers a session from a WAL directory: newest valid snapshot
    /// plus a replay of the WAL tail (or, without a snapshot, a replay
    /// from the genesis record). A fresh directory starts a new session
    /// from `fallback` and writes its genesis record. Recorded
    /// configuration always wins over `fallback`, mirroring the
    /// snapshot-restore precedent.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] (`wal-io` / `wal-corrupt` /
    /// `snapshot-corrupt`) — a damaged directory is never a panic.
    pub fn recover(
        fallback: SessionConfig,
        wal_config: WalConfig,
        faults: Option<DiskFaultPlan>,
    ) -> Result<(Self, RecoveryReport), ProtocolError> {
        let recovered = wal::recover_dir(&wal_config, faults).map_err(|e| e.to_protocol())?;
        let wal::WalRecovered {
            snapshot,
            tail,
            report,
            mut wal,
        } = recovered;
        let mut records = tail.into_iter();
        let mut session = match snapshot {
            Some(body) => Session::restore(body)?,
            None if report.fresh => {
                let mut session = Session::new(fallback)?;
                wal.append(&WalRecord::Genesis {
                    config: session.config.clone(),
                })
                .map_err(|e| e.to_protocol())?;
                session.wal = Some(wal);
                return Ok((session, report));
            }
            None => match records.next() {
                Some(WalRecord::Genesis { config }) => Session::new(config)?,
                _ => {
                    return Err(ProtocolError::new(
                        codes::WAL_CORRUPT,
                        "wal segment 1 must open with a genesis record",
                    ))
                }
            },
        };
        for record in records {
            session.apply_wal_record(record)?;
        }
        session.wal = Some(wal);
        Ok((session, report))
    }

    /// Replays one recovered WAL record into the session. `Tick` and
    /// `Drain` swallow their (deterministic) runtime errors: the live
    /// session also replied with an error and kept going, so the
    /// replayed state still matches it exactly.
    fn apply_wal_record(&mut self, record: WalRecord) -> Result<(), ProtocolError> {
        match record {
            WalRecord::Genesis { .. } => Err(ProtocolError::new(
                codes::WAL_CORRUPT,
                "genesis record outside the head of segment 1",
            )),
            WalRecord::Entry { entry, request_id } => self.apply_entry(entry, request_id),
            WalRecord::Tick { to } => {
                let _ = self.run_to(to, false);
                Ok(())
            }
            WalRecord::Drain { .. } => {
                if self.finished.is_none() {
                    let _ = self.drain_inner();
                }
                Ok(())
            }
            WalRecord::Seal { .. } => Ok(()),
        }
    }

    /// Rebuilds a session from a snapshot body: replays the recorded log
    /// through a fresh engine, then advances virtual time to the
    /// snapshotted slot. Determinism makes this exact crash recovery —
    /// the restored session continues byte-identically.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] if the config is invalid or the replay fails
    /// (which means the snapshot does not describe a reachable state).
    pub fn restore(body: SnapshotBody) -> Result<Self, ProtocolError> {
        let mut session = Session::new(body.config)?;
        for entry in &body.log.entries {
            match entry {
                LogEntry::Workflow {
                    seq, submission, ..
                } => {
                    let arrival = submission.workflow.submit_slot();
                    session
                        .pending
                        .insert((arrival, *seq), PendingEntry::Workflow(submission.clone()));
                    session.seq_state.insert(*seq, SeqState::Pending(arrival));
                }
                LogEntry::Adhoc {
                    seq, submission, ..
                } => {
                    let arrival = submission.arrival_slot;
                    session
                        .pending
                        .insert((arrival, *seq), PendingEntry::Adhoc(submission.clone()));
                    session.seq_state.insert(*seq, SeqState::Pending(arrival));
                }
                LogEntry::Cancel { seq, target, .. } => {
                    let arrival = match session.seq_state.get(target) {
                        Some(SeqState::Pending(a)) => *a,
                        _ => {
                            return Err(ProtocolError::new(
                                codes::SNAPSHOT_CORRUPT,
                                format!("cancel of non-pending submission {target} in log"),
                            ))
                        }
                    };
                    session.pending.remove(&(arrival, *target));
                    session.seq_state.insert(*target, SeqState::Cancelled);
                    session.seq_state.insert(*seq, SeqState::CancelRequest);
                }
            }
        }
        session.log = body.log;
        session.next_seq = body.next_seq;
        session.request_ids = body.request_ids;
        session.run_to(body.now, true)?;
        if session.now() != body.now {
            return Err(ProtocolError::new(
                codes::SNAPSHOT_CORRUPT,
                format!(
                    "replay reached slot {} but snapshot was taken at {}",
                    session.now(),
                    body.now
                ),
            ));
        }
        Ok(session)
    }

    /// Current virtual slot.
    pub fn now(&self) -> u64 {
        match &self.finished {
            Some(f) => f.now(),
            None => self.clock,
        }
    }

    /// True once the session has been drained.
    pub fn drained(&self) -> bool {
        self.finished.is_some()
    }

    /// The serialized outcome of a drained session — the canonical bytes
    /// the differential harness compares (see [`Finished::outcome_json`]).
    pub fn outcome_json(&self) -> Option<&str> {
        self.finished.as_ref().map(|f| f.outcome_json.as_str())
    }

    /// The frozen pod-0 decision trace of a drained session.
    pub fn final_trace(&self) -> Option<&DecisionTrace> {
        self.finished.as_ref().map(|f| &f.traces[0])
    }

    /// All frozen per-pod decision traces of a drained session.
    pub fn final_traces(&self) -> Option<&[DecisionTrace]> {
        self.finished.as_ref().map(|f| f.traces.as_slice())
    }

    /// All per-pod outcomes of a drained session, in pod order.
    pub fn final_outcomes(&self) -> Option<&[SimOutcome]> {
        self.finished.as_ref().map(|f| f.outcomes.as_slice())
    }

    /// The recorded submission log (the replay artifact).
    pub fn log(&self) -> &SubmissionLog {
        &self.log
    }

    /// Dispatches one parsed request, returning the `ok`-body JSON.
    /// `Shutdown` is acknowledged here; closing the transport is the
    /// server loop's job.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for every failure mode; the session
    /// never panics on bad input.
    pub fn handle(&mut self, request: Request) -> Result<String, ProtocolError> {
        match request {
            Request::SubmitWorkflow(sub, rid) => self.submit_workflow(*sub, rid),
            Request::SubmitAdhoc(sub, rid) => self.submit_adhoc(sub, rid),
            Request::Cancel(seq) => self.cancel(seq),
            Request::Tick(to) => self.tick(to),
            Request::Status => self.status(),
            Request::Query(seq) => self.query(seq),
            Request::Trace(limit) => self.trace_tail(limit),
            Request::Drain => self.drain(),
            Request::Outcome => self.outcome(),
            Request::Explain => self.explain_report(),
            Request::Snapshot => self.write_snapshot(),
            Request::Shutdown => Ok("{\"shutdown\":true}".to_string()),
        }
    }

    fn require_accepting(&self) -> Result<(), ProtocolError> {
        if self.finished.is_some() {
            return Err(ProtocolError::new(
                codes::ALREADY_DRAINED,
                "session is drained; no further mutation is accepted",
            ));
        }
        Ok(())
    }

    fn check_arrival(&self, arrival: u64) -> Result<(), ProtocolError> {
        if arrival < self.now() {
            return Err(ProtocolError::new(
                codes::LATE_ARRIVAL,
                format!(
                    "arrival slot {arrival} is in the past (virtual time is {})",
                    self.now()
                ),
            ));
        }
        Ok(())
    }

    /// Rejects a repeated idempotency key with the typed `duplicate`
    /// reply carrying the original sequence number (clients treat it as
    /// success — the work is already accepted).
    fn check_duplicate(&self, request_id: Option<&String>) -> Result<(), ProtocolError> {
        if let Some(rid) = request_id {
            if let Some(orig) = self.request_ids.get(rid) {
                return Err(ProtocolError::new(
                    codes::DUPLICATE,
                    format!("request_id already accepted as submission {orig}"),
                )
                .with_data(format!("{{\"sub\":{orig}}}")));
            }
        }
        Ok(())
    }

    /// Makes an accepted influence durable. Without a WAL this is a
    /// no-op (legacy `durability=none` mode); with one, an append
    /// failure rejects the request before any state has changed.
    fn persist(&mut self, record: &WalRecord) -> Result<(), ProtocolError> {
        match &mut self.wal {
            Some(wal) => wal.append(record).map_err(|e| e.to_protocol()),
            None => Ok(()),
        }
    }

    /// Applies one validated log entry to the in-memory state — the
    /// single mutation path shared by live accepts and WAL replay, so a
    /// recovered session is state-identical to the live one by
    /// construction.
    fn apply_entry(
        &mut self,
        entry: LogEntry,
        request_id: Option<String>,
    ) -> Result<(), ProtocolError> {
        let seq = entry.seq();
        if seq != self.next_seq {
            return Err(ProtocolError::new(
                codes::WAL_CORRUPT,
                format!("entry seq {seq} but session expects {}", self.next_seq),
            ));
        }
        match &entry {
            LogEntry::Workflow { submission, .. } => {
                let arrival = submission.workflow.submit_slot();
                self.pending
                    .insert((arrival, seq), PendingEntry::Workflow(submission.clone()));
                self.seq_state.insert(seq, SeqState::Pending(arrival));
            }
            LogEntry::Adhoc { submission, .. } => {
                let arrival = submission.arrival_slot;
                self.pending
                    .insert((arrival, seq), PendingEntry::Adhoc(submission.clone()));
                self.seq_state.insert(seq, SeqState::Pending(arrival));
            }
            LogEntry::Cancel { target, .. } => {
                let arrival = match self.seq_state.get(target) {
                    Some(SeqState::Pending(a)) => *a,
                    _ => {
                        return Err(ProtocolError::new(
                            codes::WAL_CORRUPT,
                            format!("cancel of non-pending submission {target} in log"),
                        ))
                    }
                };
                self.pending.remove(&(arrival, *target));
                self.seq_state.insert(*target, SeqState::Cancelled);
                self.seq_state.insert(seq, SeqState::CancelRequest);
            }
        }
        self.log.entries.push(entry);
        self.next_seq = seq + 1;
        if let Some(rid) = request_id {
            self.request_ids.insert(rid, seq);
        }
        Ok(())
    }

    fn submit_workflow(
        &mut self,
        submission: WorkflowSubmission,
        request_id: Option<String>,
    ) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        self.check_duplicate(request_id.as_ref())?;
        let arrival = submission.workflow.submit_slot();
        self.check_arrival(arrival)?;
        let n = submission.workflow.len();
        if submission
            .actual_work
            .as_ref()
            .is_some_and(|v| v.len() != n)
            || submission
                .job_deadlines
                .as_ref()
                .is_some_and(|v| v.len() != n)
        {
            return Err(ProtocolError::new(
                codes::MALFORMED_SUBMISSION,
                "per-node vector length differs from workflow size",
            ));
        }
        let seq = self.next_seq;
        let entry = LogEntry::Workflow {
            seq,
            at: self.now(),
            submission,
        };
        // Durable before any state change, durable before the reply.
        self.persist(&WalRecord::Entry {
            entry: entry.clone(),
            request_id: request_id.clone(),
        })?;
        self.apply_entry(entry, request_id)?;
        Ok(format!(
            "{{\"sub\":{seq},\"arrival\":{arrival},\"jobs\":{n}}}"
        ))
    }

    fn submit_adhoc(
        &mut self,
        submission: AdhocSubmission,
        request_id: Option<String>,
    ) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        self.check_duplicate(request_id.as_ref())?;
        let arrival = submission.arrival_slot;
        self.check_arrival(arrival)?;
        let seq = self.next_seq;
        let entry = LogEntry::Adhoc {
            seq,
            at: self.now(),
            submission,
        };
        self.persist(&WalRecord::Entry {
            entry: entry.clone(),
            request_id: request_id.clone(),
        })?;
        self.apply_entry(entry, request_id)?;
        Ok(format!(
            "{{\"sub\":{seq},\"arrival\":{arrival},\"jobs\":1}}"
        ))
    }

    fn cancel(&mut self, target: u64) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        match self.seq_state.get(&target) {
            Some(SeqState::Pending(_)) => {
                let entry = LogEntry::Cancel {
                    seq: self.next_seq,
                    at: self.now(),
                    target,
                };
                self.persist(&WalRecord::Entry {
                    entry: entry.clone(),
                    request_id: None,
                })?;
                self.apply_entry(entry, None)?;
                Ok(format!("{{\"cancelled\":{target}}}"))
            }
            Some(SeqState::Cancelled) => Err(ProtocolError::new(
                codes::CANCEL_TOO_LATE,
                format!("submission {target} was already cancelled"),
            )),
            Some(SeqState::Injected { .. }) => Err(ProtocolError::new(
                codes::CANCEL_TOO_LATE,
                format!("submission {target} already materialized into the engine"),
            )),
            Some(SeqState::CancelRequest) | None => Err(ProtocolError::new(
                codes::UNKNOWN_SUBMISSION,
                format!("no submission with sequence number {target}"),
            )),
        }
    }

    /// Materializes every pending submission whose arrival slot has been
    /// reached by the session clock, in `(arrival, seq)` order — the order
    /// [`flowtime_sim::place_log`] replays — placing each through the
    /// sharded placer when one is configured.
    fn flush_arrivals(&mut self) -> Result<(), ProtocolError> {
        while let Some((&(arrival, seq), _)) = self.pending.iter().next() {
            if arrival > self.clock {
                break;
            }
            let entry = self
                .pending
                .remove(&(arrival, seq))
                .expect("key just observed");
            let pod = match (&mut self.placer, &entry) {
                (None, _) => 0,
                (Some(ps), PendingEntry::Workflow(sub)) => ps.place_workflow(sub),
                (Some(ps), PendingEntry::Adhoc(sub)) => ps.place_adhoc(sub),
            };
            let runtime = &mut self.pods[pod];
            let online = runtime
                .online
                .as_mut()
                .expect("flush only runs while accepting");
            let ids = match entry {
                PendingEntry::Workflow(sub) => online.submit_workflow(sub),
                PendingEntry::Adhoc(sub) => online.submit_adhoc(sub).map(|id| vec![id]),
            }
            .map_err(engine_error)?;
            self.seq_state.insert(seq, SeqState::Injected { pod, ids });
        }
        Ok(())
    }

    /// Advances every pod toward the (just-incremented) session clock by
    /// one round: a pod with incomplete work simulates its next local
    /// slot; an idle pod burns the gap slot only when it is the sole pod
    /// and future submissions are queued (the pre-sharding engine's exact
    /// behavior, and what a batch run whose table holds that future
    /// arrival would do). Idle pods of a sharded session park instead —
    /// their local clock lags until a placement lands on them, keeping
    /// their timeline identical to a batch run over their sub-log.
    ///
    /// `force_burn` makes a sole idle pod burn the gap even with an empty
    /// queue — snapshot replay only (see [`Session::run_to`]).
    ///
    /// Returns `false` when a pod hit its slot horizon (nothing was
    /// simulated for it); the caller decides whether that is an error
    /// (`tick`) or a partial-outcome stop (`drain`).
    fn advance_clock_tick(&mut self, force_burn: bool) -> Result<bool, ProtocolError> {
        let single = self.pods.len() == 1;
        let burn_gap = force_burn || !self.pending.is_empty();
        for runtime in &mut self.pods {
            let online = runtime.online.as_mut().expect("running session");
            while online.now() < self.clock {
                let step = if online.incomplete() > 0 {
                    online.step(&mut *runtime.scheduler)
                } else if single && burn_gap {
                    online.step_idle(&mut *runtime.scheduler)
                } else {
                    break; // Parked: local time lags until new work arrives.
                }
                .map_err(engine_error)?;
                match step {
                    StepOutcome::Advanced => {}
                    StepOutcome::Complete => break,
                    StepOutcome::HorizonExhausted => return Ok(false),
                }
            }
        }
        Ok(true)
    }

    /// Advances virtual time to `target`, injecting arrivals on the way.
    /// Parks (stops early) when no work remains anywhere — the batch run
    /// would have ended there too.
    ///
    /// `replay` disables parking: during snapshot restore the recorded
    /// `now` proves the live session reached `target`, even though a
    /// logged cancel (applied up front on replay) may have emptied the
    /// queue that justified burning the gap live. The replayed engine
    /// calls are still identical — a burned slot never observes the
    /// queue — so the restored session continues byte-identically.
    fn run_to(&mut self, target: u64, replay: bool) -> Result<(), ProtocolError> {
        while self.clock < target {
            self.flush_arrivals()?;
            let all_idle = self
                .pods
                .iter()
                .all(|p| p.online.as_ref().expect("running session").incomplete() == 0);
            if !replay && all_idle && self.pending.is_empty() {
                break; // Parked: nothing to simulate until new work.
            }
            self.clock += 1;
            if !self.advance_clock_tick(replay)? {
                self.clock -= 1;
                return Err(ProtocolError::new(
                    codes::HORIZON_EXHAUSTED,
                    format!("slot horizon {} exhausted", self.config.max_slots),
                ));
            }
        }
        Ok(())
    }

    fn tick(&mut self, to: u64) -> Result<String, ProtocolError> {
        self.require_accepting()?;
        // The clock advance is durable before it happens: a failing
        // advance (horizon exhaustion) is deterministic, so replaying
        // the record reproduces the same partial state and same error.
        self.persist(&WalRecord::Tick { to })?;
        self.run_to(to, false)?;
        let incomplete: usize = self
            .pods
            .iter()
            .map(|p| p.online.as_ref().expect("running session").incomplete())
            .sum();
        Ok(format!(
            "{{\"now\":{},\"incomplete\":{},\"pending\":{}}}",
            self.clock,
            incomplete,
            self.pending.len()
        ))
    }

    /// Runs everything — pending and injected — to completion, then
    /// freezes the outcome and trace. Idempotent: draining a drained
    /// session returns the same summary (and appends no second WAL
    /// record).
    fn drain(&mut self) -> Result<String, ProtocolError> {
        if self.finished.is_none() {
            self.persist(&WalRecord::Drain { at: self.clock })?;
        }
        self.drain_inner()
    }

    /// The WAL-free drain body, shared by the live path (which persists
    /// first) and recovery replay (which must not re-persist).
    fn drain_inner(&mut self) -> Result<String, ProtocolError> {
        if self.finished.is_none() {
            loop {
                self.flush_arrivals()?;
                let all_idle = self
                    .pods
                    .iter()
                    .all(|p| p.online.as_ref().expect("running session").incomplete() == 0);
                if all_idle && self.pending.is_empty() {
                    // Mirror the batch engine's final step: observing
                    // `Complete` runs the exact-conservation final check
                    // on every pod (a violation is an engine bug and
                    // surfaces as a typed error, exactly as before).
                    for runtime in &mut self.pods {
                        let online = runtime.online.as_mut().expect("running session");
                        online.step(&mut *runtime.scheduler).map_err(engine_error)?;
                    }
                    break;
                }
                self.clock += 1;
                if !self.advance_clock_tick(false)? {
                    self.clock -= 1;
                    break; // Horizon exhausted: freeze the partial outcome.
                }
            }
            let mut outcomes = Vec::with_capacity(self.pods.len());
            let mut traces = Vec::with_capacity(self.pods.len());
            for runtime in &mut self.pods {
                let online = runtime.online.take().expect("running session");
                outcomes.push(online.finish(&mut *runtime.scheduler));
                traces.push(runtime.trace.take());
            }
            let outcome_json = if outcomes.len() == 1 {
                serde_json::to_string(&outcomes[0])
                    .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?
            } else {
                let mut per = Vec::with_capacity(outcomes.len());
                for o in &outcomes {
                    per.push(
                        serde_json::to_string(o)
                            .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
                    );
                }
                format!("{{\"pods\":[{}]}}", per.join(","))
            };
            self.finished = Some(Finished {
                outcome_json,
                outcomes,
                traces,
            });
        }
        let f = self.finished.as_ref().expect("just set");
        Ok(format!(
            "{{\"now\":{},\"completed_jobs\":{},\"complete\":{}}}",
            f.now(),
            f.completed_jobs(),
            f.complete()
        ))
    }

    fn status(&mut self) -> Result<String, ProtocolError> {
        if let Some(f) = &self.finished {
            return Ok(format!(
                "{{\"phase\":\"drained\",\"now\":{},\"completed_jobs\":{},\"complete\":{}}}",
                f.now(),
                f.completed_jobs(),
                f.complete()
            ));
        }
        if self.pods.len() == 1 {
            let runtime = &self.pods[0];
            let online = runtime.online.as_ref().expect("running session");
            let st = online.status();
            let status_json = serde_json::to_string(&st)
                .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?;
            let solver = match runtime.scheduler.telemetry() {
                Some(t) => serde_json::to_string(&t)
                    .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
                None => "null".to_string(),
            };
            return Ok(format!(
                "{{\"phase\":\"accepting\",\"engine\":{status_json},\"solver\":{solver},\"pending\":{},\"logged\":{}}}",
                self.pending.len(),
                self.log.len()
            ));
        }
        // Sharded: an aggregate `engine` header (so clients that only read
        // `engine.now` keep working) plus one full status per pod.
        let mut incomplete = 0usize;
        let mut pod_statuses = Vec::with_capacity(self.pods.len());
        let mut solver: Option<SolverTelemetry> = None;
        for runtime in &self.pods {
            let online = runtime.online.as_ref().expect("running session");
            incomplete += online.incomplete();
            pod_statuses.push(
                serde_json::to_string(&online.status())
                    .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
            );
            if let Some(t) = runtime.scheduler.telemetry() {
                match &mut solver {
                    Some(agg) => agg.accumulate(&t),
                    None => solver = Some(t),
                }
            }
        }
        let solver_json = match &solver {
            Some(t) => serde_json::to_string(t)
                .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
            None => "null".to_string(),
        };
        Ok(format!(
            "{{\"phase\":\"accepting\",\"engine\":{{\"now\":{},\"incomplete\":{incomplete}}},\"pods\":[{}],\"solver\":{solver_json},\"pending\":{},\"logged\":{}}}",
            self.clock,
            pod_statuses.join(","),
            self.pending.len(),
            self.log.len()
        ))
    }

    fn query(&mut self, seq: u64) -> Result<String, ProtocolError> {
        match self.seq_state.get(&seq) {
            None => Err(ProtocolError::new(
                codes::UNKNOWN_SUBMISSION,
                format!("no submission with sequence number {seq}"),
            )),
            Some(SeqState::CancelRequest) => {
                Ok(format!("{{\"sub\":{seq},\"state\":\"cancel-request\"}}"))
            }
            Some(SeqState::Pending(arrival)) => Ok(format!(
                "{{\"sub\":{seq},\"state\":\"pending\",\"arrival\":{arrival}}}"
            )),
            Some(SeqState::Cancelled) => Ok(format!("{{\"sub\":{seq},\"state\":\"cancelled\"}}")),
            Some(SeqState::Injected { pod, ids }) => {
                let mut jobs = Vec::new();
                for id in ids {
                    if let Some(online) = &self.pods[*pod].online {
                        if let Some(p) = online.job_progress(*id) {
                            jobs.push(serde_json::to_string(&p).map_err(|e| {
                                ProtocolError::new(codes::ENGINE_ERROR, e.to_string())
                            })?);
                        }
                    } else {
                        jobs.push(format!("{{\"id\":{}}}", id.as_u64()));
                    }
                }
                Ok(format!(
                    "{{\"sub\":{seq},\"state\":\"materialized\",\"jobs\":[{}]}}",
                    jobs.join(",")
                ))
            }
        }
    }

    fn trace_tail(&mut self, limit: usize) -> Result<String, ProtocolError> {
        // Sharded sessions serve pod 0's trace here; the full per-pod set
        // is available through [`Session::final_traces`] after drain.
        let trace = match &self.finished {
            Some(f) => f.traces[0].clone(),
            None => self.pods[0].trace.snapshot(),
        };
        let events: Vec<&flowtime_sim::TraceEvent> = trace.events().collect();
        let skip = events.len().saturating_sub(limit);
        let mut tail = Vec::new();
        for ev in &events[skip..] {
            tail.push(
                serde_json::to_string(ev)
                    .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?,
            );
        }
        Ok(format!(
            "{{\"recorded\":{},\"dropped\":{},\"tail\":[{}]}}",
            trace.recorded(),
            trace.dropped(),
            tail.join(",")
        ))
    }

    fn outcome(&self) -> Result<String, ProtocolError> {
        match &self.finished {
            Some(f) => Ok(format!("{{\"outcome\":{}}}", f.outcome_json)),
            None => Err(ProtocolError::new(
                codes::NOT_DRAINED,
                "outcome is only available after `drain`",
            )),
        }
    }

    /// `explain` over a drained session: re-certifies the frozen outcome
    /// and trace against the recorded submission log, then emits the
    /// per-missed-workflow E00x causal chains
    /// ([`flowtime_sim::explain_log`]). Only unsharded sessions can be
    /// explained in place — the log-replay certifier has no per-pod
    /// workload slices; sharded sessions export their per-pod traces
    /// (whose headers carry the pod provenance) for the offline
    /// `flowtime-cli explain` path instead.
    fn explain_report(&self) -> Result<String, ProtocolError> {
        let finished = self.finished.as_ref().ok_or_else(|| {
            ProtocolError::new(
                codes::NOT_DRAINED,
                "explain is only available after `drain`",
            )
        })?;
        if self.pods.len() > 1 {
            return Err(ProtocolError::new(
                codes::BAD_REQUEST,
                "explain serves unsharded sessions; export the per-pod traces and use \
                 `flowtime-cli explain` (the trace headers carry the pod provenance)",
            ));
        }
        let outcome = finished
            .outcomes
            .first()
            .expect("drained session has an outcome");
        let trace = finished
            .traces
            .first()
            .expect("drained session has a trace");
        let report = flowtime_sim::explain_log(&self.config.cluster, &self.log, outcome, trace)
            .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?;
        let json = serde_json::to_string(&report)
            .map_err(|e| ProtocolError::new(codes::ENGINE_ERROR, e.to_string()))?;
        Ok(format!("{{\"explain\":{json}}}"))
    }

    /// Persists the session's replayable state. With a WAL attached the
    /// snapshot is a compaction point in the WAL directory (segment
    /// sealed and rotated, old generations pruned after the new
    /// snapshot self-checks); otherwise it goes to the legacy
    /// `snapshot_path`.
    pub fn write_snapshot(&mut self) -> Result<String, ProtocolError> {
        if self.finished.is_some() {
            return Err(ProtocolError::new(
                codes::ALREADY_DRAINED,
                "drained sessions have nothing left to snapshot",
            ));
        }
        let mut body = SnapshotBody {
            config: self.config.clone(),
            log: self.log.clone(),
            now: self.now(),
            next_seq: self.next_seq,
            wal_segment: 0,
            request_ids: self.request_ids.clone(),
        };
        if let Some(wal) = &mut self.wal {
            body.wal_segment = wal.segment() + 1;
            let bytes = snapshot::render(&body)
                .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?
                .len();
            let path = wal.save_snapshot(&body).map_err(|e| e.to_protocol())?;
            let path_json = serde_json::to_string(&path.display().to_string())
                .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?;
            return Ok(format!("{{\"path\":{path_json},\"bytes\":{bytes}}}"));
        }
        let path =
            self.config.snapshot_path.as_ref().ok_or_else(|| {
                ProtocolError::new(codes::SNAPSHOT_IO, "no snapshot path configured")
            })?;
        let bytes = snapshot::save(path, &body)
            .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?;
        let path_json = serde_json::to_string(path)
            .map_err(|e| ProtocolError::new(codes::SNAPSHOT_IO, e.to_string()))?;
        Ok(format!("{{\"path\":{path_json},\"bytes\":{bytes}}}"))
    }
}

/// Resolves a scheduler name, ignoring case and separators, constructing
/// it exactly as the bench harness's `Algo::make` does — the daemon and
/// a batch comparison run must start from identical scheduler state for
/// the differential byte-parity contract to hold.
fn make_scheduler(
    name: &str,
    cluster: &ClusterConfig,
) -> Result<Box<dyn Scheduler>, ProtocolError> {
    let norm: String = name
        .chars()
        .filter(char::is_ascii_alphanumeric)
        .collect::<String>()
        .to_ascii_lowercase();
    Ok(match norm.as_str() {
        "flowtime" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig::default(),
        )),
        "flowtimenods" => Box::new(FlowTimeScheduler::new(
            cluster.clone(),
            FlowTimeConfig {
                slack_slots: 0,
                ..Default::default()
            },
        )),
        "cora" => Box::new(CoraScheduler::new(cluster.clone())),
        "edf" => Box::new(EdfScheduler::new()),
        "fair" => Box::new(FairScheduler::new()),
        "fifo" => Box::new(FifoScheduler::new()),
        "morpheus" => Box::new(MorpheusScheduler::new(cluster.clone())),
        _ => {
            return Err(ProtocolError::new(
                codes::BAD_REQUEST,
                format!("unknown scheduler `{name}`"),
            ))
        }
    })
}

/// Maps an engine error into the protocol's typed form.
fn engine_error(e: SimError) -> ProtocolError {
    match e {
        SimError::MalformedSubmission { .. } => {
            ProtocolError::new(codes::MALFORMED_SUBMISSION, e.to_string())
        }
        SimError::HorizonExhausted { .. } => {
            ProtocolError::new(codes::HORIZON_EXHAUSTED, e.to_string())
        }
        other => ProtocolError::new(codes::ENGINE_ERROR, other.to_string()),
    }
}
