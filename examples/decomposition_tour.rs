//! A tour of deadline decomposition (paper Section IV, Fig. 3).
//!
//! Builds the fork-join workflow of the paper's Fig. 3 and contrasts the
//! traditional critical-path split (the middle set gets 1/3 of the window
//! regardless of its width) with FlowTime's resource-demand split (the
//! middle set's share grows with the number of parallel jobs), then shows
//! the effect of deadline slack.
//!
//! Run with: `cargo run --release --example decomposition_tour`

use flowtime::decompose::{decompose, slack::slacked_windows, DecomposeConfig, Decomposer};
use flowtime_dag::prelude::*;

fn fork_join(n_mid: usize, window: u64) -> Workflow {
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "fig3");
    let spec = JobSpec::new("job", 20, 2, ResourceVec::new([1, 2048]));
    let head = b.add_job(spec.clone());
    let mids: Vec<_> = (0..n_mid).map(|_| b.add_job(spec.clone())).collect();
    let tail = b.add_job(spec.clone());
    for &m in &mids {
        b.add_dep(head, m).expect("valid");
        b.add_dep(m, tail).expect("valid");
    }
    b.window(0, window).build().expect("valid workflow")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = ResourceVec::new([200, 409_600]);
    let window = 600;

    println!("fork-join 1 -> {{2..n}} -> n+1, window {window} slots, equal jobs\n");
    println!(
        "{:>4} {:>28} {:>28}",
        "n", "critical-path middle share", "demand-based middle share"
    );
    for n_mid in [2usize, 5, 9, 15, 30] {
        let wf = fork_join(n_mid, window);
        let cp = decompose(
            &wf,
            &DecomposeConfig::new(capacity).with_decomposer(Decomposer::CriticalPath),
        )?;
        let dd = decompose(&wf, &DecomposeConfig::new(capacity))?;
        let share = |d: &flowtime::Decomposition| d.set_windows[1].len() as f64 / window as f64;
        println!(
            "{:>4} {:>27.0}% {:>27.0}%",
            n_mid,
            share(&cp) * 100.0,
            share(&dd) * 100.0
        );
    }
    println!("\npaper: traditional gives the middle 1/3; demand-based gives (n-1)/(n+1).");

    // Deadline slack: pull scheduling deadlines earlier.
    let wf = fork_join(9, window);
    let d = decompose(&wf, &DecomposeConfig::new(capacity))?;
    let slacked = slacked_windows(&d, 6);
    println!("\nwith a 6-slot (60 s) deadline slack:");
    for (set_idx, set) in d.sets.iter().enumerate() {
        let j = set[0];
        println!(
            "  set {}: milestone {} -> scheduling deadline {}",
            set_idx, d.windows[j].deadline, slacked[j].deadline
        );
    }
    Ok(())
}
