//! Time-varying capacity (the paper's `C_t^r`, Eq. (4)): most of the
//! cluster goes down for maintenance mid-experiment. FlowTime's per-slot
//! capacity caps make the planner route deadline work around the outage,
//! the engine enforces the reduced cap on every scheduler, and the
//! deadline is still met with residual capacity left for queries.
//!
//! Run with: `cargo run --release --example maintenance_window`

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::prelude::*;
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;

fn cluster() -> ClusterConfig {
    // 16 cores normally; slots 30..60 run at quarter capacity.
    ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0).with_capacity_window(
        30,
        60,
        ResourceVec::new([4, 16_384]),
    )
}

fn workload() -> SimWorkload {
    // A workflow whose window straddles the maintenance window: 480
    // task-slots of work due by slot 100. Enough capacity exists overall,
    // but only if the scheduler front-loads before the outage.
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "pre-maintenance-etl");
    let a = b.add_job(JobSpec::new("stage-a", 120, 2, ResourceVec::new([1, 2048])));
    let c = b.add_job(JobSpec::new("stage-b", 120, 2, ResourceVec::new([1, 2048])));
    b.add_dep(a, c).expect("valid");
    let wf = b.window(0, 100).build().expect("valid workflow");
    let mut wl = SimWorkload::default();
    wl.workflows.push(WorkflowSubmission::new(wf));
    wl.adhoc.push(AdhocSubmission::new(
        JobSpec::new("query", 8, 1, ResourceVec::new([1, 2048])).with_max_parallel(4),
        40, // arrives *during* the outage
    ));
    wl
}

fn run(name: &str, s: &mut dyn Scheduler) {
    let out = Engine::new(cluster(), workload(), 100_000)
        .expect("valid")
        .run(s)
        .expect("completes");
    let m = &out.metrics;
    let phase_load = |range: std::ops::Range<usize>| -> f64 {
        let slots: Vec<u64> = range
            .filter_map(|t| m.slot_loads.get(t).map(|l| l.dim(0)))
            .collect();
        if slots.is_empty() {
            0.0
        } else {
            slots.iter().sum::<u64>() as f64 / slots.len() as f64
        }
    };
    println!(
        "{name:<9} workflow missed: {:<5}  adhoc turnaround: {:>4.0} s           cores used before/during/after outage: {:>4.1} / {:>4.1} / {:>4.1}",
        m.workflow_deadline_misses() > 0,
        m.avg_adhoc_turnaround_seconds().unwrap_or(0.0),
        phase_load(0..30),
        phase_load(30..60),
        phase_load(60..100),
    );
}

fn main() {
    println!("cluster: 16 cores, reduced to 4 during slots 30..60\n");
    run("EDF", &mut EdfScheduler::new());
    run(
        "FlowTime",
        &mut FlowTimeScheduler::new(cluster(), FlowTimeConfig::default()),
    );
    println!(
        "\nthe engine enforces the reduced cap on everyone; FlowTime's planner sees\n         the window in its per-slot caps (C_t^r) and still meets the deadline."
    );
}
