//! Quickstart: schedule one deadline workflow and a stream of ad-hoc jobs
//! with FlowTime, then read the metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use flowtime::prelude::*;
use flowtime_dag::prelude::*;
use flowtime_sim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Describe the cluster: 16 cores, 64 GiB, 10-second slots. ----
    let cluster = ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0);

    // --- 2. Describe a recurring workflow: extract -> {clean, enrich} ---
    //        -> report, due 30 minutes (180 slots) after submission.
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "nightly-report");
    let extract = b.add_job(JobSpec::new("extract", 48, 2, ResourceVec::new([1, 2048])));
    let clean = b.add_job(JobSpec::new("clean", 32, 3, ResourceVec::new([1, 2048])));
    let enrich = b.add_job(JobSpec::new("enrich", 40, 2, ResourceVec::new([1, 4096])));
    let report = b.add_job(JobSpec::new("report", 8, 2, ResourceVec::new([1, 2048])));
    b.add_dep(extract, clean)?;
    b.add_dep(extract, enrich)?;
    b.add_dep(clean, report)?;
    b.add_dep(enrich, report)?;
    let workflow = b.window(0, 180).build()?;

    // Peek at what FlowTime's decomposer will do with that deadline.
    let decomposition =
        flowtime::decompose::decompose(&workflow, &DecomposeConfig::new(cluster.capacity()))?;
    println!("decomposed per-job deadlines (slots):");
    for (job, window) in workflow.jobs().iter().zip(&decomposition.windows) {
        println!(
            "  {:<8} window [{:>3}, {:>3})  demand {}",
            job.name(),
            window.start,
            window.deadline,
            job.total_demand()
        );
    }

    // --- 3. Add best-effort ad-hoc jobs arriving while it runs. --------
    let mut workload = SimWorkload::default();
    workload
        .workflows
        .push(WorkflowSubmission::new(workflow).with_job_deadlines(decomposition.job_deadlines()));
    for (i, arrival) in [5u64, 40, 90].into_iter().enumerate() {
        workload.adhoc.push(AdhocSubmission::new(
            JobSpec::new(format!("query-{i}"), 12, 1, ResourceVec::new([1, 2048]))
                .with_max_parallel(4),
            arrival,
        ));
    }

    // --- 4. Run FlowTime. -----------------------------------------------
    let mut scheduler = FlowTimeScheduler::new(cluster.clone(), FlowTimeConfig::default());
    let outcome = Engine::new(cluster, workload, 10_000)?.run(&mut scheduler)?;
    let m = &outcome.metrics;
    println!("\nafter {} slots:", outcome.slots_elapsed);
    println!(
        "  deadline jobs missed : {}/{}",
        m.job_deadline_misses(),
        m.deadline_jobs().count()
    );
    println!("  workflows missed     : {}", m.workflow_deadline_misses());
    println!(
        "  avg ad-hoc turnaround: {:.0} s",
        m.avg_adhoc_turnaround_seconds().unwrap_or(0.0)
    );
    println!("  placement solves     : {}", scheduler.solves());
    Ok(())
}
