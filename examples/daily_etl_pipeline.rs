//! A realistic multi-day scenario: a recurring daily ETL workflow with a
//! loose deadline shares the cluster with interactive ad-hoc queries.
//!
//! Demonstrates workflow recurrence (`Workflow::recur_at`), estimation
//! error, and a head-to-head of FlowTime vs. EDF on exactly the trade-off
//! the paper targets: meet every deadline *and* keep queries fast.
//!
//! Run with: `cargo run --release --example daily_etl_pipeline`

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::prelude::*;
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;
use flowtime_workload::{AdhocStream, ArrivalPattern};

/// One simulated "day" = 360 slots (1 hour at 10 s/slot, compressed).
const DAY_SLOTS: u64 = 360;
const DAYS: u64 = 3;

fn etl_template() -> Workflow {
    let mut b = WorkflowBuilder::new(WorkflowId::new(0), "daily-etl");
    let ingest = b.add_job(JobSpec::new("ingest", 150, 2, ResourceVec::new([1, 2048])));
    let sessions = b.add_job(JobSpec::new(
        "sessionize",
        120,
        3,
        ResourceVec::new([1, 4096]),
    ));
    let features = b.add_job(JobSpec::new(
        "features",
        120,
        3,
        ResourceVec::new([1, 4096]),
    ));
    let train = b.add_job(JobSpec::new("train", 60, 4, ResourceVec::new([1, 8192])));
    let publish = b.add_job(JobSpec::new("publish", 8, 1, ResourceVec::new([1, 2048])));
    b.add_dep(ingest, sessions).expect("valid");
    b.add_dep(ingest, features).expect("valid");
    b.add_dep(sessions, train).expect("valid");
    b.add_dep(features, train).expect("valid");
    b.add_dep(train, publish).expect("valid");
    // The business deadline is the whole day, though the pipeline needs a
    // fraction of it — the loose-deadline regime of the paper's traces.
    b.window(0, DAY_SLOTS).build().expect("valid workflow")
}

fn workload() -> SimWorkload {
    let template = etl_template();
    let mut wl = SimWorkload::default();
    for day in 0..DAYS {
        let wf = template.recur_at(WorkflowId::new(day), day * DAY_SLOTS);
        // Reality deviates from the recurring estimate by a few percent.
        let actual: Vec<u64> = wf
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| j.work() + (j.work() * ((i as u64 + day) % 3)) / 20)
            .collect();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_actual_work(actual));
    }
    let queries = AdhocStream {
        rate_per_slot: 0.15,
        max_parallel: 6,
        // Interactive traffic swings with the (simulated) working day.
        pattern: ArrivalPattern::Diurnal {
            amplitude: 0.8,
            period: DAY_SLOTS as f64,
        },
        ..Default::default()
    };
    wl.adhoc = queries.generate(DAYS * DAY_SLOTS, 2024);
    wl
}

fn run(name: &str, scheduler: &mut dyn Scheduler) {
    let cluster = ClusterConfig::new(ResourceVec::new([32, 262_144]), 10.0);
    let outcome = Engine::new(cluster, workload(), 100_000)
        .expect("valid workload")
        .run(scheduler)
        .expect("completes");
    let m = &outcome.metrics;
    println!(
        "{name:<9} workflows missed: {}/{}  avg query turnaround: {:>6.0} s  peak util: {:.2}",
        m.workflow_deadline_misses(),
        m.workflows.len(),
        m.avg_adhoc_turnaround_seconds().unwrap_or(0.0),
        m.max_peak_utilization(),
    );
}

fn main() {
    println!(
        "{} days x {} slots, daily ETL + {} interactive queries\n",
        DAYS,
        DAY_SLOTS,
        workload().adhoc.len()
    );
    let cluster = ClusterConfig::new(ResourceVec::new([32, 262_144]), 10.0);
    run("EDF", &mut EdfScheduler::new());
    run(
        "FlowTime",
        &mut FlowTimeScheduler::new(cluster, FlowTimeConfig::default()),
    );
    println!("\nFlowTime should match EDF on deadlines while serving queries far sooner.");
}
