//! The paper's Fig. 1 motivating example, narrated.
//!
//! One workflow `W1` of two chained jobs (each needs the whole cluster for
//! 100 time units) with deadline 200, plus ad-hoc jobs `A1` (arrives at 0)
//! and `A2` (arrives at 100), each half-cluster-wide for 100 time units.
//!
//! EDF runs `W1` first at full width: `A1` waits 100 units, average ad-hoc
//! turnaround (200 + 100) / 2 = 150. FlowTime knows the deadline is loose,
//! stretches each workflow job to half width across its decomposed window,
//! and serves both ad-hoc jobs immediately: average (100 + 100) / 2 = 100.
//!
//! Run with: `cargo run --release --example motivating_example`

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;

/// One slot = 10 time units of the figure; cluster width = 4 task slots.
fn workload() -> SimWorkload {
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "W1");
    let j1 = b.add_job(JobSpec::new("job1", 20, 1, ResourceVec::new([1, 1024])));
    let j2 = b.add_job(JobSpec::new("job2", 20, 1, ResourceVec::new([1, 1024])));
    b.add_dep(j1, j2).expect("valid dependency");
    let w1 = b.window(0, 20).build().expect("valid workflow");

    let mut wl = SimWorkload::default();
    wl.workflows.push(WorkflowSubmission::new(w1));
    let adhoc = JobSpec::new("a", 20, 1, ResourceVec::new([1, 1024])).with_max_parallel(2);
    wl.adhoc.push(AdhocSubmission::new(adhoc.clone(), 0));
    wl.adhoc.push(AdhocSubmission::new(adhoc, 10));
    wl
}

fn report(name: &str, scheduler: &mut dyn Scheduler) {
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let outcome = Engine::new(cluster, workload(), 1_000)
        .expect("valid workload")
        .with_timeline()
        .run(scheduler)
        .expect("scheduler completes");
    let m = &outcome.metrics;
    println!("{name}:");
    println!(
        "  workflow deadline met: {}",
        m.workflow_deadline_misses() == 0
    );
    for job in m.adhoc_jobs() {
        println!(
            "  ad-hoc {} arrived t={} finished t={} (turnaround {})",
            job.id,
            job.arrival_slot * 10,
            job.completion_slot * 10,
            job.turnaround_slots() * 10
        );
    }
    println!(
        "  average ad-hoc turnaround: {:.0} time units",
        m.avg_adhoc_turnaround_seconds().unwrap_or(0.0)
    );
    if let Some(tl) = &outcome.timeline {
        print!("{}", flowtime_sim::timeline::render_gantt(tl, Some(m), 40));
    }
    println!();
}

fn main() {
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    report("EDF (Fig. 1a)", &mut EdfScheduler::new());
    report(
        "FlowTime (Fig. 1b)",
        &mut FlowTimeScheduler::new(
            cluster,
            FlowTimeConfig {
                slack_slots: 0,
                ..Default::default()
            },
        ),
    );
    println!("paper: EDF averages 150, FlowTime 100 — both meet the deadline.");
}
