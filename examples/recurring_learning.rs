//! Closing the loop on recurring workflows: estimates come from history.
//!
//! The paper assumes recurring workflows arrive with runtime estimates;
//! in production those estimates are *learned* from prior runs. This
//! example simulates five consecutive days of a pipeline whose true work
//! differs from the original template by up to +30%. Day 1 schedules on
//! the stale template estimates; later days schedule on the p75 of the
//! recorded history (`flowtime::RunHistory`), and the deadline deltas
//! tighten accordingly.
//!
//! Run with: `cargo run --release --example recurring_learning`

use flowtime::decompose::{decompose, DecomposeConfig};
use flowtime::{FlowTimeConfig, FlowTimeScheduler, RunHistory};
use flowtime_dag::prelude::*;
use flowtime_sim::prelude::*;

const DAY_SLOTS: u64 = 250;

fn template(day: u64) -> Workflow {
    let mut b = WorkflowBuilder::new(WorkflowId::new(day), "revenue-report");
    let ingest = b.add_job(JobSpec::new("ingest", 80, 2, ResourceVec::new([1, 2048])));
    let join = b.add_job(JobSpec::new("join", 60, 3, ResourceVec::new([1, 2048])));
    let report = b.add_job(JobSpec::new("report", 20, 2, ResourceVec::new([1, 2048])));
    b.add_dep(ingest, join).expect("valid");
    b.add_dep(join, report).expect("valid");
    b.window(day * DAY_SLOTS, day * DAY_SLOTS + 95)
        .build()
        .expect("valid workflow")
}

/// The true work each day: consistently heavier than the template thinks.
fn actual_work(day: u64) -> Vec<u64> {
    let bump = |w: u64, pct: u64| w + w * pct / 100;
    vec![
        bump(160, 20 + (day * 7) % 10), // ingest: ~+20-29%
        bump(180, 25 + (day * 3) % 6),  // join:   ~+25-30%
        bump(40, 10),                   // report: +10%
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterConfig::new(ResourceVec::new([6, 24_576]), 10.0);
    let mut history = RunHistory::new(7);

    println!("day | estimates source | est. error | worst job delta (s) | misses");
    for day in 0..5u64 {
        let base = template(day);
        // Re-spec the submission from history once we have any.
        let (wf, source) = match history.estimate_quantile("revenue-report", 0.75) {
            Some(est) => (RunHistory::respec(&base, &est)?, "learned p75"),
            None => (base.clone(), "stale template"),
        };
        let milestones = decompose(&wf, &DecomposeConfig::new(cluster.capacity()))?.job_deadlines();
        let actual = actual_work(day);
        let est_err: f64 = wf
            .jobs()
            .iter()
            .zip(&actual)
            .map(|(j, &a)| ((j.work() as f64 - a as f64) / a as f64).abs())
            .sum::<f64>()
            / wf.len() as f64;
        let mut workload = SimWorkload::default();
        workload.workflows.push(
            WorkflowSubmission::new(wf)
                .with_actual_work(actual.clone())
                .with_job_deadlines(milestones),
        );
        let mut scheduler = FlowTimeScheduler::new(cluster.clone(), FlowTimeConfig::default());
        let metrics = Engine::new(cluster.clone(), workload, 1_000_000)?
            .run(&mut scheduler)?
            .metrics;
        let worst = metrics
            .job_deadline_deltas_seconds()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>3} | {:<16} | {:>9.1}% | {:>19.0} | {}",
            day + 1,
            source,
            est_err * 100.0,
            worst,
            metrics.job_deadline_misses()
        );
        // Learn from what actually happened.
        history.record("revenue-report", &actual);
    }
    println!("\nafter one observed run, the estimate error collapses: the learned p75 absorbs\nthe systematic overrun that the stale template missed.");
    Ok(())
}
