//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], and [`option::of`].
//!
//! Cases are generated from a deterministic RNG seeded by the test name, so
//! failures reproduce run-to-run. Unlike upstream there is no shrinking: a
//! failing case reports its inputs' case index and message only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a generated case did not count.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Error produced by a property body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the runner panics with this message.
    Fail(String),
    /// The case was rejected (`prop_assume!`); the runner retries.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Source of randomness handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic seed derived from the test's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    pub fn gen_usize(&mut self, lo: usize, hi_excl: usize) -> usize {
        self.inner.gen_range(lo..hi_excl)
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let v = self.inner.generate(rng)?;
        if (self.f)(&v) {
            Ok(v)
        } else {
            Err(Rejection(self.whence.clone()))
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                Ok(rng.rng().gen_range(self.clone()))
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start() <= self.end(), "empty range strategy");
                Ok(rng.rng().gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
impl_tuple_strategy!(A, B, C, D, E, G, H);
impl_tuple_strategy!(A, B, C, D, E, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, G, H, I, J, K, L);
impl_tuple_strategy!(A, B, C, D, E, G, H, I, J, K, L, M);

pub mod collection {
    use super::{Rejection, Strategy, TestRng};

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let len = rng.gen_usize(self.size.lo, self.size.hi_incl + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Rejection, Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Option<S::Value>, Rejection> {
            if rng.gen_usize(0, 4) == 0 {
                Ok(None)
            } else {
                Ok(Some(self.inner.generate(rng)?))
            }
        }
    }
}

pub mod runner {
    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Drive one property: generate `config.cases` accepted inputs and apply
    /// the body to each, panicking on the first failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::for_test(name);
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = (config.cases as u64) * 200 + 1_000;
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "property '{name}': too many rejected cases ({attempts} attempts \
                 for {accepted}/{} accepted)",
                config.cases
            );
            let value = match strategy.generate(&mut rng) {
                Ok(v) => v,
                Err(_) => continue,
            };
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property '{name}' failed at case {accepted}: {msg}")
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::runner::run(
                &config,
                stringify!($name),
                strategy,
                |($($pat,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    #[allow(unreachable_code)]
                    {
                        $body
                        Ok(())
                    }
                },
            );
        }
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}
