//! Offline stand-in for `serde`.
//!
//! The build environment bundled with this repository has no access to
//! crates.io, so this crate provides the small serialization surface the
//! workspace actually uses: `Serialize`/`Deserialize` traits over an
//! order-preserving JSON-like [`Value`] model, plus derive macros
//! (re-exported from the in-tree `serde_derive` proc-macro crate).
//!
//! Design notes:
//! * [`Value::Map`] preserves insertion order, so struct serialization is
//!   deterministic and byte-stable — a requirement of the simulator's
//!   determinism regression tests.
//! * `HashMap` values are serialized in sorted key order for the same
//!   reason.
//! * Enum representation matches serde's externally-tagged default:
//!   unit variants as strings, data variants as single-key maps.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An order-preserving JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| find(m, key))
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Finds `key` in an ordered map slice.
pub fn find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Resolves a missing map key for field deserialization: `Option` fields
/// default to `None`, everything else errors.
pub fn missing<T: Deserialize>(what: &str) -> Result<T, DeError> {
    T::from_missing().ok_or_else(|| DeError::custom(format!("missing field `{what}`")))
}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// The value to use when a struct field's key is absent; `None` means
    /// the field is required. Overridden by `Option<T>`.
    fn from_missing() -> Option<Self> {
        None
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::U64(x) => x,
                    Value::I64(x) if x >= 0 => x as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v)
            .and_then(|x| usize::try_from(x).map_err(|_| DeError::custom("integer out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::from(*self);
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::I64(x) => x,
                    Value::U64(x) => {
                        i64::try_from(x).map_err(|_| DeError::custom("integer out of range"))?
                    }
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(raw).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v)
            .and_then(|x| isize::try_from(x).map_err(|_| DeError::custom("integer out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(x) => Ok(x as f64),
            Value::I64(x) => Ok(x as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a single character")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| DeError::custom(format!("expected {N} elements, got {}", got.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("array", v))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_value(x)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&5u64.to_value()).unwrap(), 5);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"x".to_value()).unwrap(), "x");
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <[u64; 2]>::from_value(&[1u64, 2].to_value()).unwrap(),
            [1, 2]
        );
        assert_eq!(
            Vec::<u64>::from_value(&vec![3u64].to_value()).unwrap(),
            vec![3]
        );
    }

    #[test]
    fn missing_fields_only_default_for_option() {
        assert_eq!(missing::<Option<u64>>("f").unwrap(), None);
        assert!(missing::<u64>("f").is_err());
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u64);
        m.insert("a".to_string(), 2u64);
        let Value::Map(entries) = m.to_value() else {
            panic!()
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
