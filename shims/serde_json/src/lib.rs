//! Offline stand-in for `serde_json`: deterministic JSON emission and a
//! recursive-descent parser over the in-tree `serde` shim's [`Value`].
//!
//! Output formatting is stable across runs and platforms (insertion-order
//! maps, shortest-round-trip float formatting via `{:?}`), which the
//! simulator's byte-identity regression tests rely on.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// -------------------------------------------------------------- emission

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        // serde_json rejects non-finite floats; emitting null is the
        // closest lossy behaviour and keeps emission infallible.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => push_f64(out, *x),
        Value::Str(s) => push_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                push_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut w: W,
    value: &T,
) -> Result<()> {
    w.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Serializes to the intermediate [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from the intermediate [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(x) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(x) {
                        return Ok(Value::I64(-neg));
                    }
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into the intermediate [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    Ok(T::from_value(&parse(s)?)?)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    from_str(std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?)
}

/// Deserializes a `T` from a reader.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut r: R) -> Result<T> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::F64(1.5)),
            ("d".into(), Value::Str("x\n\"y".into())),
            ("e".into(), Value::I64(-3)),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null],"c":1.5,"d":"x\n\"y","e":-3}"#);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn floats_keep_fraction() {
        assert_eq!(to_string(&10.0f64).unwrap(), "10.0");
        assert_eq!(from_str::<f64>("10.0").unwrap(), 10.0);
        assert_eq!(from_str::<f64>("10").unwrap(), 10.0);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = Value::Map(vec![(
            "k".into(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": [\n"));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }
}
