//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: a seedable
//! [`rngs::StdRng`] plus [`Rng::gen_range`] / [`Rng::gen_bool`] over
//! half-open and inclusive integer and float ranges. The generator is a
//! SplitMix64-seeded xoshiro256++, so streams are deterministic across
//! platforms for a given `seed_from_u64` value (they do not match the
//! upstream `rand` crate's streams, which is fine: every caller in this
//! repo treats the RNG as an opaque deterministic source).

use std::ops::{Range, RangeInclusive};

/// Core source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform in [0, 1) from the high 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style unbiased bounded sampling in [0, span).
fn bounded_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the sample unbiased.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every u64 is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        let v: f64 = (self.start as f64..self.end as f64).sample(rng);
        v as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
