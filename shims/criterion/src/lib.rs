//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a small, fixed number of timed iterations and prints
//! mean wall-clock time per iteration. No statistics, plots, or baselines —
//! just enough to keep `harness = false` benches compiling and producing
//! readable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one case inside a benchmark group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_case(group: &str, label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.checked_div(iterations as u32).unwrap_or_default();
    println!("bench {group}/{label}: {per_iter:?}/iter over {iterations} iters");
}

/// A named set of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case(&self.name, &id.to_string(), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_case(&self.name, &id.to_string(), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness state.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_case("bench", &id.to_string(), self.default_sample_size, &mut f);
        self
    }

    /// Upstream compatibility no-op.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}
