//! Derive macros for the in-tree `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item
//! is parsed directly from its token stream, and the generated impl is
//! rendered as a string and re-parsed. Supports the shapes this workspace
//! uses: named-field structs, tuple structs (newtype included), and enums
//! with unit, tuple, and struct variants — matching serde's
//! externally-tagged representation. The field attributes honoured are
//! `#[serde(default)]` and `#[serde(skip_serializing_if = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    /// Predicate path from `skip_serializing_if`: when it returns true for
    /// the field value, serialization omits the entry entirely.
    skip_if: Option<String>,
}

#[derive(Debug)]
enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    data: VariantData,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derives do not support generic types (on `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => panic!("unsupported struct shape for `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("expected enum body for `{name}`"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Consumes leading attributes, reporting whether any is `#[serde(default)]`
/// and the predicate path of a `#[serde(skip_serializing_if = "path")]`, if
/// present. The path sits inside a string literal token, so `::` separators
/// survive `to_string()` verbatim.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let body = g.stream().to_string();
            if body.starts_with("serde") {
                if body.contains("default") {
                    default = true;
                }
                if let Some(pos) = body.find("skip_serializing_if") {
                    let rest = &body[pos..];
                    if let Some(start) = rest.find('"') {
                        if let Some(len) = rest[start + 1..].find('"') {
                            skip_if = Some(rest[start + 1..start + 1 + len].to_string());
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    (default, skip_if)
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (default, skip_if) = take_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "expected field name, found `{:?}`",
                tokens.get(i).map(ToString::to_string)
            );
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "expected `:` after field `{name}`, found `{:?}`",
                other.map(ToString::to_string)
            ),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            default,
            skip_if,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tt in &tokens {
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!(
                "expected variant name, found `{:?}`",
                tokens.get(i).map(ToString::to_string)
            );
        };
        let name = id.to_string();
        i += 1;
        let data = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantData::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantData::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantData::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the separator.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, data });
    }
    variants
}

// --------------------------------------------------------------- codegen

fn named_fields_to_map(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("{ let mut __m = ::std::vec::Vec::new(); ");
    for f in fields {
        let push = format!(
            "__m.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value(&{p}{n}))); ",
            n = f.name,
            p = access_prefix,
        );
        match &f.skip_if {
            Some(path) => out.push_str(&format!(
                "if !{path}(&{p}{n}) {{ {push} }} ",
                n = f.name,
                p = access_prefix,
            )),
            None => out.push_str(&push),
        }
    }
    out.push_str("::serde::Value::Map(__m) }");
    out
}

fn named_fields_from_map(fields: &[Field], map_expr: &str, ctx: &str) -> String {
    // Renders a `{ field: ..., }` struct-literal body reading from `map_expr`.
    let mut out = String::from("{ ");
    for f in fields {
        let on_missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("::serde::missing(\"{ctx}.{}\")?", f.name)
        };
        out.push_str(&format!(
            "{n}: match ::serde::find({m}, \"{n}\") {{ \
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
             ::std::option::Option::None => {on_missing}, }}, ",
            n = f.name,
            m = map_expr,
        ));
    }
    out.push('}');
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => named_fields_to_map(fields, "self."),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")), "
                    )),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__t{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__t0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {inner})]), ",
                            binds.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_map(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {inner})]), ",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => format!(
            "let __m = __v.as_map().ok_or_else(|| \
             ::serde::DeError::expected(\"object\", __v))?; \
             ::std::result::Result::Ok({name} {})",
            named_fields_from_map(fields, "__m", name)
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", __v))?; \
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple length for {name}\")); }} \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}), "
                    )),
                    VariantData::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __s = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", __inner))?; \
                                 if __s.len() != {n} {{ return \
                                 ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"wrong tuple length for {name}::{vn}\")); }} \
                                 {name}::{vn}({}) }}",
                                elems.join(", ")
                            )
                        };
                        data_arms
                            .push_str(&format!("\"{vn}\" => ::std::result::Result::Ok({build}), "));
                    }
                    VariantData::Named(fields) => {
                        let build = named_fields_from_map(fields, "__im", &format!("{name}::{vn}"));
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __im = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", __inner))?; \
                             ::std::result::Result::Ok({name}::{vn} {build}) }} ",
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                 let (__tag, __inner) = &__m[0]; \
                 match __tag.as_str() {{ {data_arms} \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum value\", __other)), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
