//! Warm-start equivalence harness (this PR's headline test): warm-started
//! simplex, cold simplex, and the parametric-flow backend must produce
//! plans with identical lexicographic load profiles and objective vectors,
//! both on randomized standalone instances and along replayed replan
//! sequences of the kind fault injection produces (completions shrinking
//! demands, elapsed time shifting the horizon, capacity churn).
//!
//! The equivalence argument being checked: every lexmin round's **main**
//! solve is cold in both configurations, and warm-started necessity trials
//! only compare the optimal *objective* against a threshold — a quantity
//! warm and cold solves provably share — so freezing decisions, and with
//! them the final allocation, must be bit-identical.

use flowtime::lp_sched::{
    backend::plan_peak, lexmin, rounding, LevelingProblem, PlanJob, SolveStats, SolverBackend,
};
use flowtime_dag::{JobId, ResourceVec, NUM_RESOURCES};
use proptest::prelude::*;

/// Freeze/re-solve budget deep enough to exercise several necessity-trial
/// rounds on the generated instances.
const LEX_ROUNDS: usize = 6;

/// A random feasible leveling instance with uniform task shape (so the
/// parametric-flow backend applies); jobs may carry per-slot caps.
fn leveling_instance() -> impl Strategy<Value = LevelingProblem> {
    let horizon = 4usize..12;
    horizon.prop_flat_map(|h| {
        let job = (
            0..h - 1usize,
            1usize..=6,
            1u64..=30,
            proptest::option::of(2u64..=8),
        )
            .prop_map(move |(start, len, demand, slot_cap)| {
                let end = (start + len).min(h);
                (start.min(end - 1), end, demand, slot_cap)
            });
        proptest::collection::vec(job, 1..6).prop_map(move |jobs| LevelingProblem {
            slot_caps: vec![ResourceVec::new([10, 10_240]); h],
            jobs: jobs
                .into_iter()
                .enumerate()
                .map(|(i, (start, end, demand, slot_cap))| {
                    let cap = slot_cap.unwrap_or(10).min(10);
                    let demand = demand.min(cap * (end - start) as u64).max(1);
                    PlanJob {
                        id: JobId::new(i as u64),
                        window: (start, end),
                        demand,
                        per_task: ResourceVec::new([1, 1024]),
                        per_slot_cap: slot_cap,
                    }
                })
                .collect(),
        })
    })
}

/// Per-slot normalized loads of a fractional allocation — the vector the
/// lexicographic objective orders.
fn load_profile(p: &LevelingProblem, x: &[Vec<f64>]) -> Vec<[f64; NUM_RESOURCES]> {
    let mut loads = vec![[0.0f64; NUM_RESOURCES]; p.horizon()];
    for (i, job) in p.jobs.iter().enumerate() {
        for t in job.window.0..job.window.1 {
            for (r, load) in loads[t].iter_mut().enumerate() {
                let cap = p.slot_caps[t].dim(r) as f64;
                if cap > 0.0 {
                    *load += x[i][t] * job.per_task.dim(r) as f64 / cap;
                }
            }
        }
    }
    loads
}

/// SplitMix64-style mixer: deterministic pseudo-random streams from
/// proptest-generated seeds without depending on a test-side RNG.
fn mix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the full three-way equivalence check on one instance. Returns
/// `false` when the instance is infeasible (both configurations must agree
/// on that too), so sequence replays know to stop.
fn check_equivalence(p: &LevelingProblem) -> Result<bool, TestCaseError> {
    let mut warm_stats = SolveStats::default();
    let mut cold_stats = SolveStats::default();
    let warm = lexmin::solve_with_stats(p, LEX_ROUNDS, true, &mut warm_stats);
    let cold = lexmin::solve_with_stats(p, LEX_ROUNDS, false, &mut cold_stats);
    let (warm, cold) = match (warm, cold) {
        (Ok(w), Ok(c)) => (w, c),
        (Err(_), Err(_)) => return Ok(false),
        (w, c) => {
            return Err(TestCaseError::fail(format!(
                "warm/cold disagree on feasibility: {w:?} vs {c:?}"
            )))
        }
    };

    // Warm-started and cold simplex: bit-identical allocations, objective
    // vectors, and (therefore) lexicographic load profiles.
    prop_assert_eq!(&warm.x, &cold.x, "allocations diverged");
    prop_assert_eq!(&warm.thetas, &cold.thetas, "objective vectors diverged");
    prop_assert_eq!(warm.rounds_used, cold.rounds_used);
    prop_assert_eq!(
        load_profile(p, &warm.x),
        load_profile(p, &cold.x),
        "lexicographic load profiles diverged"
    );
    // The cold configuration must never warm-start; both do the same
    // number of LP solves.
    prop_assert_eq!(cold_stats.warm_solves, 0);
    prop_assert_eq!(cold_stats.warm_fallbacks, 0);
    prop_assert_eq!(
        warm_stats.cold_solves + warm_stats.warm_solves,
        cold_stats.cold_solves,
        "solve counts diverged: {:?} vs {:?}",
        warm_stats,
        cold_stats
    );

    // The parametric-flow backend (uniform shapes by construction) agrees
    // on the integral min-max objective, with a feasible,
    // demand-conserving plan — and the simplex path's rounded plan matches
    // that same peak.
    let flow = p.solve(SolverBackend::ParametricFlow);
    let simplex = p.solve(SolverBackend::Simplex {
        lex_rounds: LEX_ROUNDS,
    });
    match (flow, simplex) {
        (Ok(f), Ok(s)) => {
            prop_assert!(rounding::is_feasible(p, &f), "flow plan infeasible");
            prop_assert!(rounding::is_feasible(p, &s), "simplex plan infeasible");
            for job in &p.jobs {
                prop_assert_eq!(f.tasks[&job.id].iter().sum::<u64>(), job.demand);
                prop_assert_eq!(s.tasks[&job.id].iter().sum::<u64>(), job.demand);
            }
            let pf = plan_peak(p, &f);
            let ps = plan_peak(p, &s);
            // The fractional optimum lower-bounds every integral plan, and
            // the flow backend's first round is integrally min-max optimal,
            // so no integral plan (the rounded LP included) beats it.
            prop_assert!(cold.thetas[0] <= pf + 1e-6, "flow {pf} beat the LP bound");
            prop_assert!(pf <= ps + 1e-6, "flow peak {pf} beaten by rounded LP {ps}");
            // On uniform slot caps, rounding preserves the peak exactly and
            // the two integral optima coincide; heterogeneous caps (from
            // capacity-churn events) admit a one-task rounding gap.
            if p.slot_caps.windows(2).all(|w| w[0] == w[1]) {
                prop_assert!((pf - ps).abs() < 1e-6, "flow peak {pf} vs simplex {ps}");
            }
        }
        (Err(_), Err(_)) => {}
        (f, s) => {
            return Err(TestCaseError::fail(format!(
                "backends disagree on feasibility: {f:?} vs {s:?}"
            )))
        }
    }
    Ok(true)
}

/// One replayed replan event, derived deterministically from a seed: the
/// same mutation kinds fault injection feeds the scheduler.
fn apply_replan_event(p: &mut LevelingProblem, seed: u64) {
    match seed % 3 {
        // Completions between replans: demands shrink, structure unchanged
        // (the realistic warm-start case fig7 measures).
        0 => {
            for (i, job) in p.jobs.iter_mut().enumerate() {
                let cut = mix(seed, i as u64) % (job.demand / 4 + 1);
                job.demand = (job.demand - cut).max(1);
            }
        }
        // One slot of elapsed time: the horizon's first slot falls off and
        // every window relabels down by one (the PlanCache shift case).
        1 => {
            if p.horizon() <= 2 {
                return;
            }
            p.slot_caps.remove(0);
            p.jobs.retain(|j| j.window.1 > 1);
            for job in &mut p.jobs {
                job.window = (job.window.0.saturating_sub(1), job.window.1 - 1);
                // Work that had to run in the dropped slot counts as done.
                let len = (job.window.1 - job.window.0) as u64;
                let cap = job.per_slot_cap.unwrap_or(10).min(10);
                job.demand = job.demand.min(cap * len).max(1);
            }
        }
        // Capacity churn: one slot degrades to a smaller cluster.
        _ => {
            let t = (mix(seed, 77) as usize) % p.horizon();
            let cores = 5 + mix(seed, 78) % 6;
            p.slot_caps[t] = ResourceVec::new([cores, cores * 1024]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized standalone instances: warm-started simplex, cold simplex
    /// and parametric flow are plan-equivalent.
    #[test]
    fn warm_cold_and_flow_agree_on_random_instances(p in leveling_instance()) {
        check_equivalence(&p)?;
    }

    /// Replayed replan sequences: starting from a random instance, a
    /// deterministic stream of completion / elapsed-time / capacity-churn
    /// events is applied, and every step of the resulting replan sequence
    /// must preserve the three-way equivalence. A step that turns the
    /// instance infeasible ends the sequence (warm and cold must agree on
    /// the infeasibility, which `check_equivalence` asserts).
    #[test]
    fn equivalence_holds_along_replayed_replan_sequences(
        p in leveling_instance(),
        events in proptest::collection::vec(0u64..u64::MAX, 3..8),
    ) {
        let mut current = p;
        if !check_equivalence(&current)? {
            return Ok(());
        }
        for &seed in &events {
            apply_replan_event(&mut current, seed);
            if current.jobs.is_empty() {
                break;
            }
            if !check_equivalence(&current)? {
                break;
            }
        }
    }
}
