//! Property-based tests of the max-flow substrate: max-flow/min-cut
//! duality, conservation, and leveling optimality bounds.

use flowtime_flow::leveling::{LevelingInstance, LevelingJob};
use flowtime_flow::{Dinic, FlowNetwork};
use proptest::prelude::*;

/// Random small directed network with source 0 and sink n-1.
fn network() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64)>)> {
    (3usize..9).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1u64..30).prop_filter("no self-loop", |(a, b, _)| a != b);
        proptest::collection::vec(edge, 1..25).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Max-flow equals the capacity of the discovered minimum cut.
    #[test]
    fn max_flow_equals_min_cut((n, edges) in network()) {
        let mut net = FlowNetwork::new(n);
        let handles: Vec<_> = edges
            .iter()
            .map(|&(a, b, c)| ((a, b, c), net.add_edge(a, b, c).unwrap()))
            .collect();
        let mut dinic = Dinic::new(&mut net);
        let flow = dinic.max_flow(0, n - 1);
        let source_side = dinic.min_cut_source_side(0);
        prop_assert!(source_side[0]);
        prop_assert!(!source_side[n - 1]);
        let cut_capacity: u64 = handles
            .iter()
            .filter(|&&((a, b, _), _)| source_side[a] && !source_side[b])
            .map(|&((_, _, c), _)| c)
            .sum();
        prop_assert_eq!(flow, cut_capacity);
    }

    /// Flow conservation holds at every internal node, and per-edge flow
    /// respects capacity.
    #[test]
    fn conservation_and_capacity((n, edges) in network()) {
        let mut net = FlowNetwork::new(n);
        let handles: Vec<_> = edges
            .iter()
            .map(|&(a, b, c)| ((a, b, c), net.add_edge(a, b, c).unwrap()))
            .collect();
        let flow = Dinic::new(&mut net).max_flow(0, n - 1);
        let mut balance = vec![0i64; n];
        for ((a, b, c), e) in handles {
            let f = net.flow(e);
            prop_assert!(f <= c, "edge over capacity");
            balance[a] -= f as i64;
            balance[b] += f as i64;
        }
        prop_assert_eq!(balance[0], -(flow as i64));
        prop_assert_eq!(balance[n - 1], flow as i64);
        for (v, &b) in balance.iter().enumerate().take(n - 1).skip(1) {
            prop_assert_eq!(b, 0, "conservation at {}", v);
        }
    }
}

/// Random feasible leveling instances.
fn leveling() -> impl Strategy<Value = LevelingInstance> {
    (3usize..10, 2u64..12).prop_flat_map(|(h, cap)| {
        let job = (0..h, 1usize..h, 1u64..40).prop_map(move |(s, len, d)| {
            let start = s.min(h - 1);
            let end = (start + len).min(h).max(start + 1);
            let demand = d.min(cap * (end - start) as u64);
            LevelingJob {
                start,
                end,
                demand,
                per_slot_cap: None,
            }
        });
        proptest::collection::vec(job, 1..5).prop_map(move |jobs| LevelingInstance {
            slot_caps: vec![cap; h],
            jobs,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexmin peak is optimal: no feasible allocation has a lower max
    /// load, verified against the average-load lower bound and the
    /// single-job density lower bound.
    #[test]
    fn lexmin_peak_respects_lower_bounds(inst in leveling()) {
        let cap = inst.slot_caps[0];
        let Ok(sol) = inst.solve_lexmin() else { return Ok(()); };
        // Demands are all satisfied within windows and caps.
        for (job, alloc) in inst.jobs.iter().zip(&sol.allocation) {
            let total: u64 = alloc.iter().sum();
            prop_assert_eq!(total, job.demand);
        }
        // Lower bound 1: densest single job (demand / window / cap).
        for job in &inst.jobs {
            let density = job.demand as f64 / ((job.end - job.start) as f64 * cap as f64);
            prop_assert!(sol.peak_ratio >= density - 1e-9);
        }
        // Upper bound sanity: a peak ratio is at most 1.
        prop_assert!(sol.peak_ratio <= 1.0 + 1e-9);
        // Minmax round can never beat lexmin's first level.
        let minmax = inst.solve_minmax().unwrap();
        prop_assert!((minmax.peak_ratio - sol.peak_ratio).abs() < 1e-6);
    }

    /// Leveling solutions never violate slot capacities.
    #[test]
    fn leveling_respects_capacity(inst in leveling()) {
        if let Ok(sol) = inst.solve_lexmin() {
            for (t, &load) in sol.slot_loads.iter().enumerate() {
                prop_assert!(load <= inst.slot_caps[t]);
            }
        }
    }
}
