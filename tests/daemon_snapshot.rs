//! Snapshot/restore: a session killed mid-run and restored from its
//! snapshot, then fed the same remaining requests, drains to a
//! `SimOutcome` byte-identical to the uninterrupted session — and every
//! form of snapshot corruption is a typed error, never a silently-wrong
//! session (mutation-negative coverage).

mod daemon_util;

use daemon_util::{adhoc_line, drain, loopback_with_snapshot, ok, trace_bytes, workflow_line};
use flowtime_bench::experiments::{faulted_instance, testbed_cluster, WorkflowExperiment};
use flowtime_daemon::{snapshot, Loopback, Session, SnapshotError};
use flowtime_sim::FaultConfig;
use std::fs;

fn scripted_requests() -> (flowtime_sim::ClusterConfig, Vec<String>) {
    let cluster = testbed_cluster();
    let (workload, faulted_cluster) = faulted_instance(
        &WorkflowExperiment {
            workflows: 2,
            jobs_per_workflow: 5,
            adhoc_horizon: 50,
            seed: 42,
            ..Default::default()
        },
        &cluster,
        FaultConfig::mixed(42),
    );
    let mut lines = Vec::new();
    for sub in &workload.workflows {
        lines.push(workflow_line(sub));
    }
    let mut adhoc = workload.adhoc.clone();
    adhoc.sort_by_key(|s| s.arrival_slot);
    // Interleave ticks so the kill point lands genuinely mid-run, and a
    // cancellation so the log's cancel path crosses the snapshot too.
    for (i, sub) in adhoc.iter().enumerate() {
        if i == adhoc.len() / 2 {
            lines.push("{\"req\":\"tick\",\"to\":12}".to_string());
        }
        lines.push(adhoc_line(sub));
        if i == adhoc.len() / 2 + 2 {
            // Cancel the submission made two requests ago if still pending
            // (workflows consumed the first seqs).
            let seq = workload.workflows.len() + i - 1;
            lines.push(format!("{{\"req\":\"cancel\",\"sub\":{seq}}}"));
        }
    }
    (faulted_cluster, lines)
}

#[test]
fn restore_from_mid_run_snapshot_is_byte_identical() {
    let dir = std::env::temp_dir().join("flowtime-daemon-snap-test");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid_run.snap").to_string_lossy().into_owned();
    let (cluster, lines) = scripted_requests();
    let kill_at = lines.len() * 2 / 3;

    // Uninterrupted session: all requests, then drain.
    let mut uninterrupted = loopback_with_snapshot(cluster.clone(), "flowtime", Some(path.clone()));
    for line in &lines {
        let r = uninterrupted.request_line(line);
        assert!(
            !r.contains("engine-error"),
            "unexpected engine error for {line}: {r}"
        );
    }
    let (expect_bytes, _, expect_trace) = drain(uninterrupted);

    // Killed session: first two-thirds of the requests, snapshot, drop.
    let mut killed = loopback_with_snapshot(cluster.clone(), "flowtime", Some(path.clone()));
    for line in &lines[..kill_at] {
        killed.request_line(line);
    }
    ok(&mut killed, "{\"req\":\"snapshot\"}");
    drop(killed); // The "crash": no drain, session state gone.

    // Restore and feed the remaining requests.
    let body = snapshot::load(&path).expect("snapshot loads");
    let restored = Session::restore(body).expect("snapshot restores");
    let mut resumed = Loopback::new(restored);
    for line in &lines[kill_at..] {
        resumed.request_line(line);
    }
    let (got_bytes, _, got_trace) = drain(resumed);

    assert_eq!(
        got_bytes, expect_bytes,
        "restored session must drain to the uninterrupted outcome bytes"
    );
    assert_eq!(
        trace_bytes(&got_trace),
        trace_bytes(&expect_trace),
        "restored session must reproduce the decision trace"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshots_are_typed_errors() {
    let dir = std::env::temp_dir().join("flowtime-daemon-snap-corrupt");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("s.snap").to_string_lossy().into_owned();
    let (cluster, lines) = scripted_requests();

    let mut lb = loopback_with_snapshot(cluster, "edf", Some(path.clone()));
    for line in &lines[..4] {
        lb.request_line(line);
    }
    ok(&mut lb, "{\"req\":\"snapshot\"}");
    let good = fs::read_to_string(&path).unwrap();
    let body_line = good.lines().nth(1).unwrap().to_string();

    // Bit-flipped body: checksum mismatch.
    fs::write(&path, good.replace("\"next_seq\":", "\"next_seq\": ")).unwrap();
    assert!(matches!(
        snapshot::load(&path),
        Err(SnapshotError::Checksum { .. })
    ));

    // Mangled header: format error.
    fs::write(
        &path,
        format!("flowtime-snapshot-v2 fnv1a=0\n{body_line}\n"),
    )
    .unwrap();
    assert!(matches!(
        snapshot::load(&path),
        Err(SnapshotError::Format(_))
    ));

    // Truncated file: format error.
    fs::write(&path, good.lines().next().unwrap()).unwrap();
    assert!(matches!(
        snapshot::load(&path),
        Err(SnapshotError::Format(_))
    ));

    // Valid frame, nonsense body: parse error.
    let nonsense = "{\"not\":\"a snapshot\"}";
    fs::write(
        &path,
        format!(
            "flowtime-snapshot-v1 fnv1a={:016x}\n{nonsense}\n",
            snapshot::fnv1a(nonsense.as_bytes())
        ),
    )
    .unwrap();
    assert!(matches!(
        snapshot::load(&path),
        Err(SnapshotError::Parse(_))
    ));

    // Valid frame and body, but an unreachable state (a `now` the log
    // cannot replay to): restore rejects it.
    fs::write(&path, &good).unwrap();
    let mut body = snapshot::load(&path).expect("good snapshot loads");
    body.now = 1_000_000_000;
    assert!(Session::restore(body).is_err());

    let _ = fs::remove_dir_all(&dir);
}
