//! End-to-end runs of all six schedulers on one shared workload, checking
//! the paper's qualitative claims hold and the engine's invariants are
//! never violated.

use flowtime::decompose::{decompose, DecomposeConfig};
use flowtime::prelude::*;
use flowtime_dag::{ResourceVec, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::{Metrics, Scheduler};
use flowtime_workload::{AdhocStream, ScientificShape};

fn cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([48, 196_608]), 10.0)
}

/// Two overlapping scientific workflows with loose-but-real deadlines plus
/// a steady ad-hoc stream — a scaled-down Fig. 4.
fn workload() -> SimWorkload {
    let cluster = cluster();
    let mut wl = SimWorkload::default();
    for (i, shape) in [ScientificShape::Montage, ScientificShape::Sipht]
        .iter()
        .enumerate()
    {
        let submit = i as u64 * 40;
        let probe = shape
            .workflow(
                WorkflowId::new(i as u64),
                10,
                4,
                8,
                submit,
                submit + 1_000_000,
                77 + i as u64,
            )
            .unwrap();
        let demand_slots = probe
            .total_demand()
            .max_normalized_by(&cluster.capacity())
            .ceil() as u64;
        let window = (probe.min_makespan_slots().max(demand_slots)) * 5;
        let wf = probe.recur_at(WorkflowId::new(i as u64), submit);
        let wf = {
            let mut b = flowtime_dag::WorkflowBuilder::new(wf.id(), wf.name().to_string());
            for j in wf.jobs() {
                b.add_job(j.clone());
            }
            for (a, b2) in wf.dag().edges() {
                b.add_dep(a, b2).unwrap();
            }
            b.window(submit, submit + window).build().unwrap()
        };
        let milestones = decompose(&wf, &DecomposeConfig::new(cluster.capacity()))
            .unwrap()
            .job_deadlines();
        wl.workflows
            .push(WorkflowSubmission::new(wf).with_job_deadlines(milestones));
    }
    wl.adhoc = AdhocStream {
        rate_per_slot: 0.2,
        ..Default::default()
    }
    .generate(150, 5);
    wl
}

fn run(scheduler: &mut dyn Scheduler) -> Metrics {
    Engine::new(cluster(), workload(), 100_000)
        .unwrap()
        .run(scheduler)
        .unwrap()
        .metrics
}

fn all_metrics() -> Vec<(&'static str, Metrics)> {
    let c = cluster();
    vec![
        (
            "FlowTime",
            run(&mut FlowTimeScheduler::new(
                c.clone(),
                FlowTimeConfig::default(),
            )),
        ),
        ("EDF", run(&mut EdfScheduler::new())),
        ("FIFO", run(&mut FifoScheduler::new())),
        ("Fair", run(&mut FairScheduler::new())),
        ("CORA", run(&mut CoraScheduler::new(c.clone()))),
        ("Morpheus", run(&mut MorpheusScheduler::new(c))),
    ]
}

#[test]
fn every_scheduler_completes_everything_within_capacity() {
    let cap = cluster().capacity();
    for (name, m) in all_metrics() {
        assert!(
            m.completed_jobs() > 20,
            "{name} completed {}",
            m.completed_jobs()
        );
        for (slot, load) in m.slot_loads.iter().enumerate() {
            assert!(
                load.fits_within(&cap),
                "{name} violated capacity at slot {slot}"
            );
        }
        // Every ad-hoc job eventually finished.
        assert!(m.adhoc_jobs().count() > 0, "{name} lost the ad-hoc jobs");
    }
}

#[test]
fn flowtime_meets_deadlines_at_least_as_well_as_deadline_oblivious_baselines() {
    let results = all_metrics();
    let misses = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| m.job_deadline_misses())
            .unwrap()
    };
    assert!(misses("FlowTime") <= misses("FIFO"));
    assert!(misses("FlowTime") <= misses("Fair"));
    assert!(misses("FlowTime") <= misses("CORA"));
    assert_eq!(misses("FlowTime"), 0, "loose deadlines must all be met");
}

#[test]
fn flowtime_serves_adhoc_faster_than_edf() {
    let results = all_metrics();
    let tat = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, m)| m.avg_adhoc_turnaround_slots())
            .unwrap()
    };
    assert!(
        tat("FlowTime") < tat("EDF"),
        "FlowTime {} vs EDF {}",
        tat("FlowTime"),
        tat("EDF")
    );
}

#[test]
fn deterministic_across_repeated_runs() {
    let c = cluster();
    let a = run(&mut FlowTimeScheduler::new(
        c.clone(),
        FlowTimeConfig::default(),
    ));
    let b = run(&mut FlowTimeScheduler::new(c, FlowTimeConfig::default()));
    assert_eq!(a, b, "identical inputs must produce identical simulations");
}
