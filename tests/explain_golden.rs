//! Golden pins for the explain/whatif layer: a fixed faulted scenario is
//! explained and counterfactually diffed, and the serialized artifacts
//! are byte-compared against committed fixtures. Any change to the E00x
//! catalogue, the diagnostic ordering, the diff schema, or the
//! simulation itself shows up as a diff. Regenerate intentionally:
//!
//! `GOLDEN_REGEN=1 cargo test --test explain_golden`

use flowtime_bench::experiments::{
    run_outcome_traced_with, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_sim::prelude::*;
use flowtime_sim::{
    certified_diff, explain, run_policy, ExplainReport, WhatIfDiff, DEFAULT_TRACE_CAPACITY,
};

/// The fixed scenario behind both fixtures: a small testbed workload with
/// tight deadlines under heavy mid-run faults, so EDF misses workflow
/// deadlines (a silent report would pin nothing).
fn scenario() -> (ClusterConfig, SimWorkload, RecoverySetup) {
    let cluster = testbed_cluster();
    let workload = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        looseness: 1.4,
        adhoc_horizon: 40,
        ..Default::default()
    }
    .build(&cluster);
    let setup = RecoverySetup::new(
        RuntimeFaultConfig::none(7)
            .with_task_failures(0.6)
            .with_crashes(0.5)
            .with_crash_period(8)
            .with_stragglers(0.5, 1.2),
        RecoveryPolicy::default()
            .with_max_retries(3)
            .with_backoff(1),
    );
    (cluster, workload, setup)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn pin(name: &str, serialized: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, serialized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("{name} missing — regenerate with GOLDEN_REGEN=1"));
    assert_eq!(
        serialized, golden,
        "{name} diverged; if intentional, regenerate with GOLDEN_REGEN=1"
    );
}

#[test]
fn golden_explain_report_is_stable() {
    let (cluster, workload, setup) = scenario();
    let (outcome, trace) =
        run_outcome_traced_with(Algo::Edf, &cluster, workload.clone(), Some(&setup));
    let report = explain(&cluster, &workload, &outcome, &trace, Some(&setup))
        .expect("certified run explains");
    assert!(
        report.missed_workflows() > 0,
        "the pinned scenario must actually produce diagnostics"
    );
    let mut serialized = serde_json::to_string(&report).unwrap();
    serialized.push('\n');
    pin("explain_report.json", &serialized);

    // The pinned bytes round-trip losslessly through the typed report.
    let reloaded: ExplainReport = serde_json::from_str(serialized.trim_end()).unwrap();
    assert_eq!(
        serde_json::to_string(&reloaded).unwrap(),
        serialized.trim_end()
    );
}

#[test]
fn golden_whatif_diff_is_stable() {
    let (cluster, workload, setup) = scenario();
    let record = |algo: Algo| {
        let mut scheduler = algo.make(&cluster);
        run_policy(
            &cluster,
            &workload,
            1_000_000,
            DEFAULT_TRACE_CAPACITY,
            Some(&setup),
            scheduler.as_mut(),
        )
        .expect("replay runs")
    };
    let base = record(Algo::Edf);
    let alt = record(Algo::FlowTime);
    let diff = certified_diff(&cluster, &workload, &base, Some(&setup), &alt, Some(&setup))
        .expect("both sides certify");
    assert!(
        !diff.identical,
        "the pinned scheduler pair must actually diverge"
    );
    let mut serialized = serde_json::to_string(&diff).unwrap();
    serialized.push('\n');
    pin("whatif_diff.json", &serialized);

    let reloaded: WhatIfDiff = serde_json::from_str(serialized.trim_end()).unwrap();
    assert_eq!(
        serde_json::to_string(&reloaded).unwrap(),
        serialized.trim_end()
    );
}
