//! Differential properties of the `whatif` policy-diff harness: an
//! identical-policy replay is a byte-identical no-op diff, cross-scheduler
//! diffs on the fault-seed corpus certify both sides and are stable
//! across 1/2/8 bench worker threads, and a mutation-negative corpus
//! (corrupt a replayed trace or outcome) is flagged at the exact
//! divergence slot by the pure diff kernel.

use flowtime_bench::experiments::{testbed_cluster, Algo, WorkflowExperiment};
use flowtime_sim::prelude::*;
use flowtime_sim::{
    certified_diff, diff_runs, run_cells, run_policy, RunArtifacts, TraceEvent, WhatIfError,
};
use proptest::prelude::*;

const TRACE_CAPACITY: usize = 1 << 18;

fn experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        ..Default::default()
    }
}

fn fault_setup(seed: u64) -> RecoverySetup {
    RecoverySetup::new(
        RuntimeFaultConfig::none(seed)
            .with_task_failures(0.4)
            .with_crashes(0.3)
            .with_crash_period(12)
            .with_stragglers(0.3, 0.8),
        RecoveryPolicy::default()
            .with_max_retries(3)
            .with_backoff(1),
    )
}

/// Records one side of a what-if: a fresh scheduler instance replaying
/// the scenario with full tracing.
fn record(
    algo: Algo,
    cluster: &ClusterConfig,
    workload: &SimWorkload,
    setup: Option<&RecoverySetup>,
) -> RunArtifacts {
    let mut scheduler = algo.make(cluster);
    run_policy(
        cluster,
        workload,
        1_000_000,
        TRACE_CAPACITY,
        setup,
        scheduler.as_mut(),
    )
    .expect("replay runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An identical-policy what-if is the harness's own determinism
    /// check: it must certify both sides and produce the empty diff, and
    /// the empty diff must serialize to the same bytes every time.
    #[test]
    fn identical_policy_whatif_is_a_byte_identical_noop(
        fault_seed in 0u64..1_000_000,
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let setup = fault_setup(fault_seed);
        let algo = Algo::FIG4[algo_idx];
        let base = record(algo, &cluster, &workload, Some(&setup));
        let alt = record(algo, &cluster, &workload, Some(&setup));
        let diff = certified_diff(&cluster, &workload, &base, Some(&setup), &alt, Some(&setup))
            .expect("both sides certify");
        prop_assert!(diff.identical, "identical policy must no-op");
        prop_assert!(diff.jobs.is_empty());
        prop_assert!(diff.workflows.is_empty());
        prop_assert!(diff.first_divergence.is_none());
        let bytes = serde_json::to_string(&diff).unwrap();
        let again = certified_diff(&cluster, &workload, &base, Some(&setup), &alt, Some(&setup))
            .unwrap();
        prop_assert_eq!(bytes, serde_json::to_string(&again).unwrap());
    }

    /// Mutation-negative, trace side: corrupt one event of a replayed
    /// trace and the pure diff kernel must flag the divergence at exactly
    /// that event index and slot, while the certified path refuses the
    /// corrupted side outright.
    #[test]
    fn corrupted_trace_is_flagged_at_the_exact_event(
        fault_seed in 0u64..1_000_000,
        algo_idx in 0usize..Algo::FIG4.len(),
        pick in 0usize..usize::MAX,
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let setup = fault_setup(fault_seed);
        let algo = Algo::FIG4[algo_idx];
        let base = record(algo, &cluster, &workload, Some(&setup));
        let mut alt = base.clone();
        let len = alt.trace.events().count();
        prop_assume!(len > 0);
        let k = pick % len;
        let was_finish = matches!(alt.trace.events_mut()[k], TraceEvent::Finish { .. });
        let slot = alt.trace.events_mut()[k].slot();
        alt.trace.events_mut()[k] = TraceEvent::PolicyTag {
            slot,
            tag: "corrupt".to_string(),
        };
        // The replaced event must actually differ (the scenario never
        // emits a "corrupt" policy tag), so k is the first divergence.
        let diff = diff_runs(&base, &alt);
        prop_assert!(!diff.identical);
        let d = diff.first_divergence.expect("corruption must be flagged");
        prop_assert_eq!(d.index, k as u64);
        prop_assert_eq!(d.slot, slot);
        // Clobbering a load-bearing event (a Finish carries the work
        // accounting the auditor recounts) also fails certification, so
        // the certified path refuses the corrupted side outright.
        if was_finish {
            let err = certified_diff(&cluster, &workload, &base, Some(&setup), &alt, Some(&setup))
                .unwrap_err();
            let WhatIfError::Uncertified { side, .. } = err;
            prop_assert_eq!(side, "alt");
        }
    }

    /// Mutation-negative, outcome side: shift one job's recorded
    /// completion and the diff gains exactly that job's row (the traces
    /// are untouched, so no event divergence is claimed).
    #[test]
    fn corrupted_outcome_yields_exactly_that_jobs_row(
        fault_seed in 0u64..1_000_000,
        algo_idx in 0usize..Algo::FIG4.len(),
        pick in 0usize..usize::MAX,
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let setup = fault_setup(fault_seed);
        let algo = Algo::FIG4[algo_idx];
        let base = record(algo, &cluster, &workload, Some(&setup));
        let mut alt = base.clone();
        prop_assume!(!alt.outcome.metrics.jobs.is_empty());
        let k = pick % alt.outcome.metrics.jobs.len();
        let job = alt.outcome.metrics.jobs[k].id;
        alt.outcome.metrics.jobs[k].completion_slot += 1_000;
        let diff = diff_runs(&base, &alt);
        prop_assert!(!diff.identical);
        prop_assert_eq!(diff.jobs.len(), 1);
        prop_assert_eq!(diff.jobs[0].job, job);
        prop_assert!(diff.jobs[0].diverged.is_none(), "traces were untouched");
        prop_assert!(diff.first_divergence.is_none());
    }
}

/// Cross-scheduler diffs over the fault-seed corpus: every pair certifies
/// on both sides, and computing the whole corpus on 1, 2, and 8 bench
/// worker threads yields byte-identical diffs.
#[test]
fn cross_scheduler_diffs_certify_and_are_thread_stable() {
    let cluster = testbed_cluster();
    let workload = experiment().build(&cluster);
    let corpus: Vec<(u64, Algo, Algo)> = vec![
        (11, Algo::FlowTime, Algo::Edf),
        (11, Algo::Fifo, Algo::Fair),
        (42, Algo::FlowTime, Algo::Morpheus),
        (42, Algo::Cora, Algo::FlowTimeNoDs),
        (77, Algo::Edf, Algo::Fifo),
        (77, Algo::FlowTime, Algo::Fair),
    ];
    let compute = |_i: usize, cell: &(u64, Algo, Algo)| {
        let (seed, base_algo, alt_algo) = *cell;
        let setup = fault_setup(seed);
        let base = record(base_algo, &cluster, &workload, Some(&setup));
        let alt = record(alt_algo, &cluster, &workload, Some(&setup));
        let diff = certified_diff(&cluster, &workload, &base, Some(&setup), &alt, Some(&setup))
            .expect("both sides certify");
        serde_json::to_string(&diff).expect("diff serializes")
    };
    let serial = run_cells(&corpus, 1, compute);
    for threads in [2usize, 8] {
        let parallel = run_cells(&corpus, threads, compute);
        assert_eq!(
            serial, parallel,
            "diff bytes must not depend on worker count ({threads} threads)"
        );
    }
    // Sanity: distinct schedulers on a faulty scenario actually diverge.
    assert!(serial.iter().any(|d| d.contains("\"identical\":false")));
}
