//! Property-based tests of the mid-run failure/recovery subsystem: across
//! random fault intensities, retry policies, shed policies, and all six
//! schedulers, every traced run must be certified by the offline auditor,
//! the recovery accounting must balance, and a chaos sweep must stay
//! byte-identical for any worker-thread count.

use flowtime_bench::experiments::{
    run_outcome_traced_with, run_outcome_with, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_bench::sweep::{SweepScenario, SweepSpec};
use flowtime_sim::prelude::*;
use proptest::prelude::*;

fn experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        ..Default::default()
    }
}

/// Random mid-run fault intensities with every class enabled at least
/// sometimes: task failures are always on (the tentpole fault), crashes
/// and stragglers vary from off to heavy.
fn fault_config() -> impl Strategy<Value = RuntimeFaultConfig> {
    (
        0u64..1_000_000,
        0.05f64..0.8,
        0.0f64..0.6,
        6u64..60,
        0.0f64..0.5,
        0.1f64..1.5,
    )
        .prop_map(|(seed, fail, crash, period, straggle, factor)| {
            RuntimeFaultConfig::none(seed)
                .with_task_failures(fail)
                .with_crashes(crash)
                .with_crash_period(period)
                .with_stragglers(straggle, factor)
        })
}

/// Random retry bounds and degradation rules, including both admission
/// control modes. The overload detector is kept permissive enough that
/// shedding actually fires on the small testbed when selected.
fn recovery_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (1u32..5, 0u64..3, 0usize..3, 1u64..4, 0.5f64..4.0, 1u64..6).prop_map(
        |(retries, backoff, shed_idx, delay, factor, sustain)| {
            let shed = match shed_idx {
                0 => ShedPolicy::None,
                1 => ShedPolicy::Shed,
                _ => ShedPolicy::Delay { slots: delay },
            };
            RecoveryPolicy::default()
                .with_max_retries(retries)
                .with_backoff(backoff)
                .with_shed(shed)
                .with_overload(factor, sustain)
        },
    )
}

fn setup() -> impl Strategy<Value = RecoverySetup> {
    (fault_config(), recovery_policy())
        .prop_map(|(faults, policy)| RecoverySetup::new(faults, policy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: whatever mid-run faults fire and whichever
    /// scheduler plans, the offline auditor certifies the traced run — it
    /// independently re-derives every kill, retry, straggler inflation,
    /// and shed verdict from the seeded plan and recounts the recovery
    /// stats to the byte.
    #[test]
    fn auditor_certifies_every_recovery_run_for_all_six_schedulers(
        setup in setup(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let algo = Algo::FIG4[algo_idx];
        let (outcome, trace) =
            run_outcome_traced_with(algo, &cluster, workload.clone(), Some(&setup));
        let report = certify_with_recovery(&cluster, &workload, &outcome, &trace, Some(&setup));
        prop_assert!(
            report.is_certified(),
            "{}: {}",
            algo.name(),
            report.summary()
        );
        prop_assert_eq!(report.attribution, outcome.deadline_attribution);
    }

    /// Recovery accounting balances on every run: each retry is caused by
    /// exactly one task failure or crash kill, every killed attempt wastes
    /// the work it had done, and shed jobs appear exactly once each.
    #[test]
    fn recovery_accounting_balances(
        setup in setup(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let outcome =
            run_outcome_with(Algo::FIG4[algo_idx], &cluster, workload, Some(&setup));
        let r = &outcome.recovery;
        prop_assert_eq!(r.retries, r.task_failures + r.crash_kills);
        prop_assert_eq!(r.shed_jobs as usize, outcome.shed.len());
        if r.retries == 0 {
            prop_assert_eq!(r.wasted_work, 0);
        }
        prop_assert!(r.straggler_extra_work >= r.stragglers);
    }

    /// The recovery engine is a pure function of (workload, cluster,
    /// setup): re-running the same chaos instance yields byte-identical
    /// serialized outcomes.
    #[test]
    fn recovery_runs_are_deterministic(setup in setup()) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let a = run_outcome_with(Algo::FlowTime, &cluster, workload.clone(), Some(&setup));
        let b = run_outcome_with(Algo::FlowTime, &cluster, workload, Some(&setup));
        prop_assert_eq!(
            serde_json::to_string(&a).expect("outcome serializes"),
            serde_json::to_string(&b).expect("outcome serializes")
        );
    }

    /// `max_retries = 0` disables kills entirely (the final permitted
    /// attempt always runs to completion), so only straggler inflation
    /// survives from the fault plan.
    #[test]
    fn zero_retries_disables_every_kill(
        faults in fault_config(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let setup = RecoverySetup::new(
            faults,
            RecoveryPolicy::default().with_max_retries(0),
        );
        let outcome =
            run_outcome_with(Algo::FIG4[algo_idx], &cluster, workload, Some(&setup));
        let r = &outcome.recovery;
        prop_assert_eq!(r.task_failures, 0);
        prop_assert_eq!(r.crash_kills, 0);
        prop_assert_eq!(r.retries, 0);
        prop_assert_eq!(r.wasted_work, 0);
    }
}

/// The thread-determinism contract under chaos: an audited sweep with
/// mid-run failures enabled serializes byte-for-byte identically on 1, 2,
/// and 8 worker threads — every cell's `SimOutcome` (kills, retries,
/// sheds, crash windows) is reproduced exactly regardless of which worker
/// ran it, and every cell is certified along the way (`audit: true` panics
/// on the first uncertified cell).
#[test]
fn chaos_sweep_is_byte_identical_across_thread_counts() {
    let spec = SweepSpec {
        base: experiment(),
        cluster: testbed_cluster(),
        scenarios: vec![SweepScenario::chaos(0.3)],
        schedulers: Algo::FIG4.to_vec(),
        fault_seeds: vec![0, 1],
        audit: true,
        shard: None,
    };
    let sequential = serde_json::to_string_pretty(&spec.run(1).report).expect("report serializes");
    assert!(
        sequential.contains("\"recovery\""),
        "chaos sweep must record recovery counters"
    );
    for threads in [2usize, 8] {
        let parallel =
            serde_json::to_string_pretty(&spec.run(threads).report).expect("report serializes");
        assert_eq!(
            parallel, sequential,
            "chaos sweep diverged at {threads} threads"
        );
    }
}
