//! Trace persistence and replay across crates.

use flowtime::{FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::ResourceVec;
use flowtime_sim::{ClusterConfig, Engine};
use flowtime_workload::trace::{ProductionTraceConfig, Trace};

fn small_trace(seed: u64) -> Trace {
    let cluster = ClusterConfig::new(ResourceVec::new([64, 262_144]), 10.0);
    Trace::synthesize_production(
        cluster,
        &ProductionTraceConfig {
            workflows: 3,
            jobs_per_workflow: 8,
            adhoc_horizon: 150,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn trace_survives_serialization_and_replays_identically() {
    let trace = small_trace(11);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = Trace::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(trace, reloaded);

    let run = |t: &Trace| {
        let mut s = FlowTimeScheduler::new(t.cluster.clone(), FlowTimeConfig::default());
        Engine::new(t.cluster.clone(), t.workload.clone(), 1_000_000)
            .unwrap()
            .run(&mut s)
            .unwrap()
            .metrics
    };
    assert_eq!(run(&trace), run(&reloaded), "replay must be bit-identical");
}

#[test]
fn production_trace_deadlines_are_loose_and_met_by_flowtime() {
    let trace = small_trace(23);
    for sub in &trace.workload.workflows {
        let wf = &sub.workflow;
        assert!(wf.window_slots() >= wf.min_makespan_slots() * 5);
    }
    let mut s = FlowTimeScheduler::new(trace.cluster.clone(), FlowTimeConfig::default());
    let metrics = Engine::new(trace.cluster.clone(), trace.workload.clone(), 1_000_000)
        .unwrap()
        .run(&mut s)
        .unwrap()
        .metrics;
    assert_eq!(metrics.workflow_deadline_misses(), 0);
}

#[test]
fn different_seeds_differ() {
    assert_ne!(small_trace(1), small_trace(2));
}
