//! Trace persistence and replay across crates.

use flowtime::{FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::ResourceVec;
use flowtime_sim::{ClusterConfig, Engine};
use flowtime_workload::trace::{ProductionTraceConfig, Trace};

fn small_trace(seed: u64) -> Trace {
    let cluster = ClusterConfig::new(ResourceVec::new([64, 262_144]), 10.0);
    Trace::synthesize_production(
        cluster,
        &ProductionTraceConfig {
            workflows: 3,
            jobs_per_workflow: 8,
            adhoc_horizon: 150,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn trace_survives_serialization_and_replays_identically() {
    let trace = small_trace(11);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    let reloaded = Trace::read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
    assert_eq!(trace, reloaded);

    let run = |t: &Trace| {
        let mut s = FlowTimeScheduler::new(t.cluster.clone(), FlowTimeConfig::default());
        Engine::new(t.cluster.clone(), t.workload.clone(), 1_000_000)
            .unwrap()
            .run(&mut s)
            .unwrap()
            .metrics
    };
    assert_eq!(run(&trace), run(&reloaded), "replay must be bit-identical");
}

#[test]
fn production_trace_deadlines_are_loose_and_met_by_flowtime() {
    let trace = small_trace(23);
    for sub in &trace.workload.workflows {
        let wf = &sub.workflow;
        assert!(wf.window_slots() >= wf.min_makespan_slots() * 5);
    }
    let mut s = FlowTimeScheduler::new(trace.cluster.clone(), FlowTimeConfig::default());
    let metrics = Engine::new(trace.cluster.clone(), trace.workload.clone(), 1_000_000)
        .unwrap()
        .run(&mut s)
        .unwrap()
        .metrics;
    assert_eq!(metrics.workflow_deadline_misses(), 0);
}

#[test]
fn different_seeds_differ() {
    assert_ne!(small_trace(1), small_trace(2));
}

/// The fixed (workload, scheduler, fault seed) triple behind both golden
/// fixtures below.
fn golden_triple_outcome() -> flowtime_sim::SimOutcome {
    use flowtime_sim::{FaultConfig, FaultPlan};

    let cluster = ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0);
    let trace = Trace::synthesize_production(
        cluster,
        &ProductionTraceConfig {
            workflows: 2,
            jobs_per_workflow: 5,
            adhoc_horizon: 40,
            ..Default::default()
        },
        11,
    );
    let mut workload = trace.workload.clone();
    let mut faulted_cluster = trace.cluster.clone();
    FaultPlan::new(FaultConfig::mixed(7)).apply(&mut workload, &mut faulted_cluster, 200);
    let mut scheduler = FlowTimeScheduler::new(faulted_cluster.clone(), FlowTimeConfig::default());
    Engine::new(faulted_cluster, workload, 1_000_000)
        .unwrap()
        .with_timeline()
        .run(&mut scheduler)
        .unwrap()
}

/// Committed golden file for the serialized [`flowtime_sim::SimOutcome`]
/// of one fixed (workload, scheduler, fault seed) triple. Guards both the
/// serialization format and cross-version simulator determinism: any
/// change to either shows up as a diff against `tests/golden/outcome.json`.
///
/// Regenerate intentionally with:
/// `GOLDEN_REGEN=1 cargo test --test trace_roundtrip golden`
#[test]
fn golden_outcome_is_stable() {
    use flowtime_sim::SimOutcome;

    let outcome = golden_triple_outcome();
    let serialized = serde_json::to_string_pretty(&outcome).unwrap();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/outcome.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &serialized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        serialized, golden,
        "serialized SimOutcome diverged from tests/golden/outcome.json; \
         if intentional, regenerate with GOLDEN_REGEN=1"
    );

    // The golden bytes also round-trip through deserialization.
    let reparsed: SimOutcome = serde_json::from_str(&golden).unwrap();
    assert_eq!(reparsed, outcome);
    assert_eq!(serde_json::to_string_pretty(&reparsed).unwrap(), golden);
}

/// Committed golden file for the [`flowtime_sim::SolverTelemetry`] of the
/// same fixed faulted triple as `golden_outcome_is_stable`: pins both the
/// telemetry serialization schema and the determinism of the solver-effort
/// counters across the warm-start and plan-cache paths (wall-clock time is
/// excluded from serialization, so the counters are exactly reproducible).
///
/// Regenerate intentionally with:
/// `GOLDEN_REGEN=1 cargo test --test trace_roundtrip golden`
#[test]
fn golden_telemetry_is_stable() {
    use flowtime_sim::SolverTelemetry;

    let telemetry = golden_triple_outcome()
        .solver_telemetry
        .expect("flowtime reports solver telemetry");
    let serialized = serde_json::to_string_pretty(&telemetry).unwrap();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &serialized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        serialized, golden,
        "SolverTelemetry diverged from tests/golden/telemetry.json; \
         if intentional, regenerate with GOLDEN_REGEN=1"
    );

    // The golden bytes round-trip through deserialization, and the
    // excluded wall-clock field deserializes to its zero default.
    let reparsed: SolverTelemetry = serde_json::from_str(&golden).unwrap();
    assert_eq!(reparsed, telemetry);
    assert_eq!(reparsed.replan_wall_nanos, 0);
    assert_eq!(serde_json::to_string_pretty(&reparsed).unwrap(), golden);
}
