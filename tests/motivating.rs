//! Integration test: the paper's Fig. 1 numbers, exactly.

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;

fn workload() -> SimWorkload {
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "W1");
    let j1 = b.add_job(JobSpec::new("job1", 20, 1, ResourceVec::new([1, 1024])));
    let j2 = b.add_job(JobSpec::new("job2", 20, 1, ResourceVec::new([1, 1024])));
    b.add_dep(j1, j2).unwrap();
    let w1 = b.window(0, 20).build().unwrap();
    let mut wl = SimWorkload::default();
    wl.workflows.push(WorkflowSubmission::new(w1));
    let adhoc = JobSpec::new("a", 20, 1, ResourceVec::new([1, 1024])).with_max_parallel(2);
    wl.adhoc.push(AdhocSubmission::new(adhoc.clone(), 0));
    wl.adhoc.push(AdhocSubmission::new(adhoc, 10));
    wl
}

fn run(scheduler: &mut dyn Scheduler) -> (f64, usize) {
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let out = Engine::new(cluster, workload(), 1_000)
        .unwrap()
        .run(scheduler)
        .unwrap();
    (
        out.metrics.avg_adhoc_turnaround_slots().unwrap(),
        out.metrics.workflow_deadline_misses(),
    )
}

#[test]
fn edf_averages_150_time_units() {
    let (tat_slots, misses) = run(&mut EdfScheduler::new());
    assert_eq!(misses, 0, "EDF meets the workflow deadline");
    // 15 slots = 150 figure time units: A1 waits for the whole workflow.
    assert!((tat_slots - 15.0).abs() < 1e-9, "got {tat_slots}");
}

#[test]
fn flowtime_averages_100_time_units() {
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let mut ft = FlowTimeScheduler::new(
        cluster,
        FlowTimeConfig {
            slack_slots: 0,
            ..Default::default()
        },
    );
    let (tat_slots, misses) = run(&mut ft);
    assert_eq!(misses, 0, "FlowTime meets the workflow deadline");
    // 10 slots = 100 figure time units: both ad-hoc jobs run immediately.
    assert!((tat_slots - 10.0).abs() < 1e-9, "got {tat_slots}");
}

#[test]
fn flowtime_leaves_capacity_for_late_arrivals() {
    // The leveled plan keeps half the cluster free at *all* times, not
    // just when an ad-hoc job happens to be present.
    let cluster = ClusterConfig::new(ResourceVec::new([4, 4096]), 10.0);
    let mut wl = workload();
    wl.adhoc.clear();
    let mut ft = FlowTimeScheduler::new(
        cluster.clone(),
        FlowTimeConfig {
            slack_slots: 0,
            ..Default::default()
        },
    );
    let out = Engine::new(cluster, wl, 1_000)
        .unwrap()
        .run(&mut ft)
        .unwrap();
    // With no ad-hoc competition, work conservation finishes W1 early —
    // but never violates capacity.
    assert_eq!(out.metrics.workflow_deadline_misses(), 0);
    for load in &out.metrics.slot_loads {
        assert!(load.fits_within(&ResourceVec::new([4, 4096])));
    }
}
