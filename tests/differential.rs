//! Differential fault-injection suite: all six schedulers run on
//! bit-identical fault-injected instances, and metamorphic properties that
//! must hold regardless of scheduling policy are checked across many fault
//! seeds. A deliberately broken scheduler proves the engine's invariant
//! checking actually has teeth.

use flowtime_bench::experiments::{faulted_instance, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_dag::{JobId, ResourceVec};
use flowtime_sim::prelude::*;
use flowtime_sim::SimOutcome;

/// Small-but-contended instance: 2 scientific workflows (12 deadline jobs)
/// plus an ad-hoc stream, on the paper's testbed cluster.
fn experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 6,
        adhoc_horizon: 60,
        ..Default::default()
    }
}

fn run_outcome(algo: Algo, cluster: &ClusterConfig, workload: SimWorkload) -> SimOutcome {
    let mut scheduler = algo.make(cluster);
    Engine::new(cluster.clone(), workload, 1_000_000)
        .expect("valid workload")
        .with_timeline()
        .run(scheduler.as_mut())
        .unwrap_or_else(|e| panic!("{} violated an invariant: {e}", algo.name()))
}

fn completed_ids(outcome: &SimOutcome) -> Vec<JobId> {
    let mut ids: Vec<JobId> = outcome.metrics.jobs.iter().map(|j| j.id).collect();
    ids.sort();
    ids
}

/// Across 20 fault seeds, every scheduler (a) passes every per-slot and
/// final invariant — `Engine::run` returns `Ok` with extended checking on
/// by default — and (b) completes exactly the same job set: faults change
/// *when* things finish, never *what* exists.
#[test]
fn all_schedulers_complete_the_same_job_set_under_20_fault_seeds() {
    let cluster = testbed_cluster();
    let exp = experiment();
    for fault_seed in 0..20u64 {
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
        let mut reference: Option<(String, Vec<JobId>)> = None;
        for algo in Algo::FIG4 {
            let outcome = run_outcome(algo, &faulted_cluster, workload.clone());
            let ids = completed_ids(&outcome);
            assert!(!ids.is_empty(), "{} completed nothing", algo.name());
            match &reference {
                None => reference = Some((algo.name().to_string(), ids)),
                Some((ref_name, ref_ids)) => assert_eq!(
                    ref_ids,
                    &ids,
                    "seed {fault_seed}: {} and {} completed different job sets",
                    ref_name,
                    algo.name()
                ),
            }
        }
    }
}

/// A zero-intensity fault plan is the identity: the faulted run serializes
/// byte-for-byte identically to the unfaulted baseline, timeline included.
#[test]
fn zero_fault_plan_reproduces_unfaulted_baseline_exactly() {
    let cluster = testbed_cluster();
    let exp = experiment();
    let (workload, faulted_cluster) = faulted_instance(&exp, &cluster, FaultConfig::none(4242));
    for algo in Algo::FIG4 {
        let baseline = run_outcome(algo, &cluster, exp.build(&cluster));
        let faulted = run_outcome(algo, &faulted_cluster, workload.clone());
        assert_eq!(
            serde_json::to_string(&baseline).unwrap(),
            serde_json::to_string(&faulted).unwrap(),
            "{}: zero-fault run diverged from baseline",
            algo.name()
        );
    }
}

/// The same (workload, scheduler, fault seed) triple always yields a
/// byte-identical serialized [`SimOutcome`] — the reproducibility guarantee
/// that makes every other differential assertion meaningful.
#[test]
fn same_triple_twice_gives_byte_identical_outcomes() {
    let cluster = testbed_cluster();
    let exp = experiment();
    for fault_seed in [0u64, 7, 20180702] {
        for algo in [Algo::FlowTime, Algo::Edf, Algo::Fifo] {
            let serialized: Vec<String> = (0..2)
                .map(|_| {
                    let (workload, faulted_cluster) =
                        faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
                    serde_json::to_string(&run_outcome(algo, &faulted_cluster, workload)).unwrap()
                })
                .collect();
            assert_eq!(
                serialized[0],
                serialized[1],
                "{} seed {fault_seed}: repeated run diverged",
                algo.name()
            );
        }
    }
}

/// The plan cache is purely a solver-effort optimization: with it enabled
/// vs. disabled, FlowTime's serialized outcome — metrics and full timeline
/// — is byte-identical on every one of the 20 fault seeds. Only the solver
/// telemetry counters may legitimately differ (that is the point of the
/// cache), so they are detached and checked separately before comparison.
#[test]
fn plan_cache_toggle_is_invisible_across_20_fault_seeds() {
    use flowtime::{FlowTimeConfig, FlowTimeScheduler};

    let cluster = testbed_cluster();
    let exp = experiment();
    let mut cache_answered = 0u64;
    for fault_seed in 0..20u64 {
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
        let run = |plan_cache: bool| {
            // Replanning every slot maximizes both cache traffic (quiet
            // slots are pure elapsed-time shifts) and the chances for a
            // divergence to surface.
            let cfg = FlowTimeConfig {
                plan_cache,
                replan_every_slot: true,
                ..FlowTimeConfig::default()
            };
            let mut s = FlowTimeScheduler::new(faulted_cluster.clone(), cfg);
            Engine::new(faulted_cluster.clone(), workload.clone(), 1_000_000)
                .expect("valid workload")
                .with_timeline()
                .run(&mut s)
                .expect("invariants hold")
        };
        let mut on = run(true);
        let mut off = run(false);
        let on_t = on
            .solver_telemetry
            .take()
            .expect("flowtime reports telemetry");
        let off_t = off
            .solver_telemetry
            .take()
            .expect("flowtime reports telemetry");
        cache_answered += on_t.cache_hits();
        assert_eq!(
            off_t.cache_hits(),
            0,
            "seed {fault_seed}: cache disabled but hits counted"
        );
        assert_eq!(off_t.cache_misses, 0, "seed {fault_seed}: misses while off");
        assert_eq!(
            on_t.replans, off_t.replans,
            "seed {fault_seed}: cache changed the replan count"
        );
        assert_eq!(
            serde_json::to_string(&on).unwrap(),
            serde_json::to_string(&off).unwrap(),
            "seed {fault_seed}: plan cache changed the simulated outcome"
        );
    }
    assert!(
        cache_answered > 0,
        "the cache never answered a replan across 20 faulted runs"
    );
}

/// Fig. 5's regime — runtime under-estimation only — must leave FlowTime
/// no worse on milestone misses than deadline-driven EDF, aggregated over
/// fault seeds (the paper's robustness claim for deadline slack).
#[test]
fn flowtime_misses_at_most_edf_under_misestimation() {
    let cluster = testbed_cluster();
    let exp = experiment();
    let mut flowtime_misses = 0usize;
    let mut edf_misses = 0usize;
    for fault_seed in 0..10u64 {
        let config = FaultConfig::none(fault_seed).with_misestimate(0.25);
        let (workload, faulted_cluster) = faulted_instance(&exp, &cluster, config);
        flowtime_misses += run_outcome(Algo::FlowTime, &faulted_cluster, workload.clone())
            .metrics
            .job_deadline_misses();
        edf_misses += run_outcome(Algo::Edf, &faulted_cluster, workload)
            .metrics
            .job_deadline_misses();
    }
    assert!(
        flowtime_misses <= edf_misses,
        "FlowTime missed {flowtime_misses} milestones vs EDF's {edf_misses}"
    );
}

/// Metamorphic oracle check: the event-heap engine must reproduce the
/// historical linear-scan engine (preserved as
/// [`flowtime_sim::OracleEngine`] behind the `oracle` feature) exactly —
/// same event timeline, same metrics, same serialized [`SimOutcome`] — on
/// the same fault-injected corpus the differential suite runs, for every
/// scheduler. Engine telemetry is the one intentional difference (the
/// oracle reports no hot-path counters), so the heap engine's counters are
/// normalized away before comparison.
#[test]
fn heap_engine_matches_linear_scan_oracle_on_fault_corpus() {
    use flowtime_sim::OracleEngine;

    let cluster = testbed_cluster();
    let exp = experiment();
    for fault_seed in 0..6u64 {
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
        for algo in Algo::FIG4 {
            let mut heap_sched = algo.make(&faulted_cluster);
            let mut heap = Engine::new(faulted_cluster.clone(), workload.clone(), 1_000_000)
                .expect("valid workload")
                .with_timeline()
                .run(heap_sched.as_mut())
                .unwrap_or_else(|e| panic!("{}: heap engine failed: {e}", algo.name()));
            let mut oracle_sched = algo.make(&faulted_cluster);
            let oracle = OracleEngine::new(faulted_cluster.clone(), workload.clone(), 1_000_000)
                .expect("valid workload")
                .with_timeline()
                .run(oracle_sched.as_mut())
                .unwrap_or_else(|e| panic!("{}: oracle engine failed: {e}", algo.name()));
            heap.engine_telemetry = EngineTelemetry::default();
            assert_eq!(
                serde_json::to_string(&heap).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "seed {fault_seed}: {} diverged from the linear-scan oracle",
                algo.name()
            );
        }
    }
}

/// The oracle agreement must also hold on the horizon-drain path: with a
/// horizon too short to finish the workload, both engines report the same
/// completed set, the same in-flight remainder, and `!is_complete()`.
#[test]
fn heap_engine_matches_oracle_when_the_horizon_exhausts() {
    use flowtime_sim::OracleEngine;

    let cluster = testbed_cluster();
    let exp = experiment();
    let (workload, faulted_cluster) = faulted_instance(&exp, &cluster, FaultConfig::mixed(3));
    for algo in [Algo::FlowTime, Algo::Edf, Algo::Fifo] {
        for horizon in [10u64, 40] {
            let mut heap_sched = algo.make(&faulted_cluster);
            let mut heap = Engine::new(faulted_cluster.clone(), workload.clone(), horizon)
                .expect("valid workload")
                .run(heap_sched.as_mut())
                .expect("drain returns Ok");
            let mut oracle_sched = algo.make(&faulted_cluster);
            let oracle = OracleEngine::new(faulted_cluster.clone(), workload.clone(), horizon)
                .expect("valid workload")
                .run(oracle_sched.as_mut())
                .expect("drain returns Ok");
            assert!(
                !heap.is_complete(),
                "{} horizon {horizon}: expected exhaustion",
                algo.name()
            );
            heap.engine_telemetry = EngineTelemetry::default();
            assert_eq!(
                serde_json::to_string(&heap).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "{} horizon {horizon}: drain paths diverged",
                algo.name()
            );
        }
    }
}

/// Canary: a scheduler that ignores capacity must be rejected by the
/// engine's invariant checking on the very same workloads the six real
/// schedulers pass. Proves the green runs above are not vacuous.
#[test]
fn oversubscribing_scheduler_is_rejected() {
    struct Oversubscriber;
    impl Scheduler for Oversubscriber {
        fn name(&self) -> &'static str {
            "oversubscriber"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            // Full parallelism for every runnable job, capacity be damned.
            for job in state.runnable_jobs() {
                alloc.assign(job.id, job.max_tasks_this_slot);
            }
            alloc
        }
    }

    let cluster = testbed_cluster();
    let exp = experiment();
    let (workload, faulted_cluster) = faulted_instance(&exp, &cluster, FaultConfig::mixed(1));
    let result = Engine::new(faulted_cluster, workload, 1_000_000)
        .expect("valid workload")
        .run(&mut Oversubscriber);
    let err = result.expect_err("oversubscription must be caught");
    assert!(
        err.to_string().contains("capacity"),
        "unexpected rejection: {err}"
    );
}

/// The canary above relies on the workload actually oversubscribing a
/// slot; sanity-check the premise on a tiny instance where one job alone
/// exceeds the cluster.
#[test]
fn oversubscription_canary_premise_holds_on_minimal_instance() {
    struct Oversubscriber;
    impl Scheduler for Oversubscriber {
        fn name(&self) -> &'static str {
            "oversubscriber"
        }
        fn plan_slot(&mut self, state: &SimState) -> Allocation {
            let mut alloc = Allocation::new();
            for job in state.runnable_jobs() {
                alloc.assign(job.id, job.max_tasks_this_slot);
            }
            alloc
        }
    }

    let mut workload = SimWorkload::default();
    workload.adhoc.push(AdhocSubmission::new(
        flowtime_dag::JobSpec::new("wide", 16, 1, ResourceVec::new([1, 1024])),
        0,
    ));
    let cluster = ClusterConfig::new(ResourceVec::new([4, 65_536]), 10.0);
    let result = Engine::new(cluster, workload, 1_000)
        .expect("valid workload")
        .run(&mut Oversubscriber);
    assert!(result.is_err(), "16 one-core tasks cannot fit 4 cores");
}
