//! Sharded scheduling property suite: the cross-shard equivalence and
//! determinism contracts of `flowtime_sim::run_sharded`.
//!
//! * **K=1 identity** — a single-pod sharded run is byte-identical
//!   (outcome *and* decision trace) to the plain engine, for all six
//!   Fig. 4 schedulers, clean and faulted.
//! * **Thread blindness** — for any pod count, the worker thread count
//!   changes no byte of the serialized outcome.
//! * **Chaos certification** — random (seed, pods, placer, scheduler)
//!   scenarios over faulted clusters are always certified by the sharded
//!   auditor, and every job lands in exactly one pod.
//! * **Mutation negatives** — each cross-pod violation code actually
//!   fires: a doubled placement, a dropped assignment, a tampered trace
//!   capacity, a dropped rebalance event, and a dropped pod are all
//!   caught, so the auditor's certification is evidence, not vacuous.
//! * **Capacity split** — `split_capacity` conserves every resource
//!   dimension exactly and spreads each within one unit.

use flowtime_bench::experiments::{
    faulted_instance, run_outcome_traced_with, run_sharded_outcome_traced_with,
    run_sharded_outcome_with, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_dag::{JobSpec, ResourceVec};
use flowtime_sim::{
    certify_sharded, split_capacity, AdhocSubmission, ClusterConfig, DecisionTrace, FaultConfig,
    Placer, ShardClass, ShardSpec, SimWorkload,
};
use proptest::prelude::*;

fn experiment(seed: u64) -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        seed,
        ..Default::default()
    }
}

fn trace_jsonl(trace: &DecisionTrace) -> String {
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("trace serializes");
    String::from_utf8(buf).expect("trace is utf-8")
}

fn job_count(workload: &SimWorkload) -> usize {
    workload
        .workflows
        .iter()
        .map(|w| w.workflow.len())
        .sum::<usize>()
        + workload.adhoc.len()
}

/// K=1 identity, clean: `ShardSpec::new(1)` must reproduce the plain
/// engine byte-for-byte — outcome and trace — for all six schedulers.
#[test]
fn single_pod_matches_unsharded_for_all_six_schedulers() {
    let cluster = testbed_cluster();
    let workload = experiment(0).build(&cluster);
    for algo in Algo::FIG4 {
        let (plain, plain_trace) = run_outcome_traced_with(algo, &cluster, workload.clone(), None);
        let spec = ShardSpec::new(1);
        let (sharded, traces) =
            run_sharded_outcome_traced_with(algo, &cluster, &workload, None, &spec, 1);
        assert_eq!(sharded.pods.len(), 1);
        assert_eq!(
            serde_json::to_string(&sharded.pods[0]).expect("outcome serializes"),
            serde_json::to_string(&plain).expect("outcome serializes"),
            "{}: single-pod outcome diverges from the plain engine",
            algo.name()
        );
        assert_eq!(
            trace_jsonl(&traces[0]),
            trace_jsonl(&plain_trace),
            "{}: single-pod trace diverges from the plain engine",
            algo.name()
        );
        let report = certify_sharded(&cluster, &workload, &spec, &sharded, &traces, None);
        assert!(
            report.is_certified(),
            "{}: {}",
            algo.name(),
            report.summary()
        );
    }
}

/// K=1 identity survives cluster faults: the identity is a property of
/// the sharding layer, not of a benign scenario.
#[test]
fn single_pod_identity_holds_under_faults() {
    let cluster = testbed_cluster();
    for seed in [1u64, 2] {
        let (workload, faulted) =
            faulted_instance(&experiment(seed), &cluster, FaultConfig::mixed(seed));
        for algo in [Algo::FlowTime, Algo::Edf] {
            let (plain, plain_trace) =
                run_outcome_traced_with(algo, &faulted, workload.clone(), None);
            let (sharded, traces) = run_sharded_outcome_traced_with(
                algo,
                &faulted,
                &workload,
                None,
                &ShardSpec::new(1),
                1,
            );
            assert_eq!(
                serde_json::to_string(&sharded.pods[0]).expect("outcome serializes"),
                serde_json::to_string(&plain).expect("outcome serializes"),
                "{} seed {seed}: faulted single-pod outcome diverges",
                algo.name()
            );
            assert_eq!(
                trace_jsonl(&traces[0]),
                trace_jsonl(&plain_trace),
                "{} seed {seed}: faulted single-pod trace diverges",
                algo.name()
            );
        }
    }
}

/// Thread blindness: for pods ∈ {1, 2, 4, 8}, running the pod set on 1,
/// 2, or 8 workers serializes to the same bytes, the traced rerun agrees
/// with the untraced one, and the auditor certifies every pod count.
#[test]
fn thread_count_never_changes_a_byte_for_any_pod_count() {
    let cluster = testbed_cluster();
    let workload = experiment(3).build(&cluster);
    for pods in [1usize, 2, 4, 8] {
        let spec = ShardSpec::new(pods);
        let reference =
            run_sharded_outcome_with(Algo::FlowTime, &cluster, &workload, None, &spec, 1);
        let reference_bytes = serde_json::to_string(&reference).expect("outcome serializes");
        for threads in [2usize, 8] {
            let run =
                run_sharded_outcome_with(Algo::FlowTime, &cluster, &workload, None, &spec, threads);
            assert_eq!(
                serde_json::to_string(&run).expect("outcome serializes"),
                reference_bytes,
                "pods={pods}: {threads} worker threads changed the outcome"
            );
        }
        let (traced, traces) =
            run_sharded_outcome_traced_with(Algo::FlowTime, &cluster, &workload, None, &spec, pods);
        assert_eq!(
            serde_json::to_string(&traced).expect("outcome serializes"),
            reference_bytes,
            "pods={pods}: tracing changed the outcome"
        );
        let report = certify_sharded(&cluster, &workload, &spec, &traced, &traces, None);
        assert!(report.is_certified(), "pods={pods}: {}", report.summary());
    }
}

/// A rebalance-heavy scenario (first-fit packs two enormous ad-hoc
/// backlogs onto pod 0, forcing the rebalancer to shed) used by the
/// mutation-negative tests that need a non-empty `rebalances` record.
fn rebalance_scenario() -> (ClusterConfig, SimWorkload, ShardSpec) {
    let cluster = ClusterConfig::new(ResourceVec::new([8, 8192]), 10.0);
    let mut w = SimWorkload::default();
    for i in 0..8u64 {
        let tasks = if i < 2 { 128 } else { 1 };
        w.adhoc.push(AdhocSubmission::new(
            JobSpec::new("a", tasks, 1, ResourceVec::new([1, 512])).with_max_parallel(1),
            i,
        ));
    }
    let spec = ShardSpec::new(4)
        .with_placer(Placer::FirstFit)
        .with_overload_factor(2.0);
    (cluster, w, spec)
}

/// Mutation negatives: every cross-pod violation code fires on the
/// tampered artifact it was designed to catch. Each mutation starts from
/// a certified run, so the violation is attributable to the mutation.
#[test]
fn tampered_sharded_artifacts_are_rejected_with_the_right_codes() {
    let cluster = testbed_cluster();
    let workload = experiment(4).build(&cluster);
    let spec = ShardSpec::new(2);
    let (outcome, traces) =
        run_sharded_outcome_traced_with(Algo::FlowTime, &cluster, &workload, None, &spec, 2);
    let clean = certify_sharded(&cluster, &workload, &spec, &outcome, &traces, None);
    assert!(clean.is_certified(), "{}", clean.summary());

    // Double placement: the same submission recorded on both pods.
    let mut doubled = outcome.clone();
    let mut dup = doubled.placement.assignments[0].clone();
    dup.pod = (dup.pod + 1) % 2;
    doubled.placement.assignments.push(dup);
    let report = certify_sharded(&cluster, &workload, &spec, &doubled, &traces, None);
    assert!(
        report.has("shard-double-place"),
        "doubled assignment not caught: {}",
        report.summary()
    );

    // Dropped assignment: a submission placed on no pod.
    let mut unplaced = outcome.clone();
    unplaced.placement.assignments.pop();
    let report = certify_sharded(&cluster, &workload, &spec, &unplaced, &traces, None);
    assert!(
        report.has("shard-unplaced-job"),
        "dropped assignment not caught: {}",
        report.summary()
    );

    // Tampered capacity slice: the pod traces no longer sum to the
    // cluster's capacity.
    let mut fat_traces = traces.clone();
    fat_traces[0].header.capacity += ResourceVec::new([1, 0]);
    let report = certify_sharded(&cluster, &workload, &spec, &outcome, &fat_traces, None);
    assert!(
        report.has("shard-capacity-sum"),
        "inflated capacity slice not caught: {}",
        report.summary()
    );

    // Dropped pod: artifact pod counts disagree with the spec.
    let mut short = outcome.clone();
    short.pods.pop();
    let report = certify_sharded(&cluster, &workload, &spec, &short, &traces, None);
    assert!(
        report.has("shard-pod-count"),
        "dropped pod not caught: {}",
        report.summary()
    );

    // Rewritten placement: moving one assignment to the other pod keeps
    // exactly-once placement intact, so only the placement replay check
    // can catch it.
    let mut moved = outcome.clone();
    moved.placement.assignments[0].pod = (moved.placement.assignments[0].pod + 1) % 2;
    let report = certify_sharded(&cluster, &workload, &spec, &moved, &traces, None);
    assert!(
        report.has("shard-placement-mismatch"),
        "rewritten assignment not caught: {}",
        report.summary()
    );
}

/// A dropped rebalance event is caught by the placement replay check —
/// the recorded log no longer recomputes from the scenario.
#[test]
fn dropped_rebalance_event_is_rejected() {
    let (cluster, workload, spec) = rebalance_scenario();
    let (outcome, traces) =
        run_sharded_outcome_traced_with(Algo::Edf, &cluster, &workload, None, &spec, 4);
    assert!(
        !outcome.placement.rebalances.is_empty(),
        "scenario must actually rebalance for this test to bite"
    );
    let clean = certify_sharded(&cluster, &workload, &spec, &outcome, &traces, None);
    assert!(clean.is_certified(), "{}", clean.summary());

    let mut dropped = outcome.clone();
    dropped.placement.rebalances.pop();
    let report = certify_sharded(&cluster, &workload, &spec, &dropped, &traces, None);
    assert!(
        report.has("shard-placement-mismatch"),
        "dropped rebalance event not caught: {}",
        report.summary()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Chaos corpus: any (fault seed, pod count, placer, scheduler) cell
    /// is certified by the sharded auditor, places every job exactly
    /// once, and keeps ad-hoc placements within the pod range.
    #[test]
    fn random_sharded_scenarios_are_certified(
        seed in 0u64..32,
        pods in 1usize..5,
        placer_idx in 0usize..3,
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let (workload, faulted) =
            faulted_instance(&experiment(seed), &cluster, FaultConfig::mixed(seed));
        let placer = [Placer::FirstFit, Placer::WorstFit, Placer::Demand][placer_idx];
        let spec = ShardSpec::new(pods).with_placer(placer);
        let algo = Algo::FIG4[algo_idx];
        let (outcome, traces) =
            run_sharded_outcome_traced_with(algo, &faulted, &workload, None, &spec, pods);
        let report = certify_sharded(&faulted, &workload, &spec, &outcome, &traces, None);
        prop_assert!(
            report.is_certified(),
            "{} pods={pods} {placer:?} seed={seed}: {}",
            algo.name(),
            report.summary()
        );
        let total: usize = outcome.pods.iter().map(|o| o.metrics.jobs.len()).sum();
        prop_assert_eq!(total, job_count(&workload));
        for a in &outcome.placement.assignments {
            prop_assert!(a.pod < pods);
            prop_assert!(matches!(a.class, ShardClass::Workflow | ShardClass::Adhoc));
        }
    }

    /// `split_capacity` conserves every resource dimension exactly and
    /// never spreads a dimension across pods by more than one unit.
    #[test]
    fn split_capacity_conserves_and_balances(
        cores in 0u64..512,
        mem in 0u64..1_048_576,
        pods in 1usize..17,
    ) {
        let total = ResourceVec::new([cores, mem]);
        let parts = split_capacity(total, pods);
        prop_assert_eq!(parts.len(), pods);
        let mut sum = ResourceVec::new([0, 0]);
        for p in &parts {
            sum += *p;
        }
        prop_assert_eq!(sum, total);
        for r in 0..2 {
            let hi = parts.iter().map(|p| p.dim(r)).max().expect("nonempty");
            let lo = parts.iter().map(|p| p.dim(r)).min().expect("nonempty");
            prop_assert!(hi - lo <= 1, "dimension {r} spread {hi}-{lo}");
        }
    }
}

/// The fixed sharded sweep behind `tests/golden/shard_report.json`: two
/// schedulers × two fault seeds × mixed faults, every cell run across
/// two pods with the demand placer and certified by the sharded auditor.
fn golden_sharded_spec() -> flowtime_bench::sweep::SweepSpec {
    flowtime_bench::sweep::SweepSpec {
        base: experiment(0),
        cluster: testbed_cluster(),
        scenarios: vec![flowtime_bench::sweep::SweepScenario::mixed_faults()],
        schedulers: vec![Algo::FlowTime, Algo::Edf],
        fault_seeds: vec![0, 1],
        audit: true,
        shard: Some(ShardSpec::new(2)),
    }
}

/// Committed golden for the serialized sharded `SweepReport`. Any change
/// to the shard schema, the placement layer, or any pod's simulated
/// outcome shows up as a diff here. Regenerate after an intentional
/// change:
///
/// `GOLDEN_REGEN=1 cargo test --test shard_props golden`
#[test]
fn golden_shard_report_is_stable() {
    let report = golden_sharded_spec().run(2).report;
    let serialized = serde_json::to_string_pretty(&report).expect("report serializes");
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/shard_report.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &serialized).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        serialized, golden,
        "serialized sharded SweepReport diverged from tests/golden/shard_report.json; \
         if intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// Schema stability of the sharded report: the shard spec is embedded,
/// every cell carries its pod count, and — the flip side of the
/// skip-at-default contract — the *unsharded* golden sweep report
/// contains no shard keys at all, so pre-sharding bytes never moved.
#[test]
fn golden_shard_report_schema_is_stable() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(root.join("tests/golden/shard_report.json"))
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    let v: serde_json::Value = serde_json::from_str(&golden).expect("golden parses as JSON");
    let shard = v.get("shard").expect("sharded report embeds its spec");
    assert!(
        matches!(shard.get("pods"), Some(serde_json::Value::U64(2))),
        "shard spec must record pods = 2"
    );
    for cell in v.get("cells").unwrap().as_seq().unwrap() {
        assert!(
            matches!(cell.get("pods"), Some(serde_json::Value::U64(2))),
            "every sharded cell row records its pod count"
        );
    }
    let unsharded = std::fs::read_to_string(root.join("tests/golden/sweep_report.json"))
        .expect("unsharded golden present");
    assert!(
        !unsharded.contains("\"shard\"") && !unsharded.contains("\"pods\""),
        "unsharded golden must stay free of shard keys"
    );
}
