//! Property-based tests of the fault-injection plan and the engine's
//! invariant checker: across random fault intensities, seeds, and
//! schedulers, every run must pass every per-slot and final invariant.

use flowtime_bench::experiments::{faulted_instance, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_sim::prelude::*;
use proptest::prelude::*;

fn experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        ..Default::default()
    }
}

fn fault_config() -> impl Strategy<Value = FaultConfig> {
    (
        0u64..1_000_000,
        0.0f64..0.5,
        0.0f64..0.5,
        0usize..8,
        0u64..30,
    )
        .prop_map(|(seed, sigma, churn, bursts, delay)| {
            FaultConfig::none(seed)
                .with_misestimate(sigma)
                .with_churn(churn)
                .with_bursts(bursts)
                .with_submit_delay(delay)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever faults are injected and whichever scheduler runs, the
    /// engine's extended invariant checking (on by default) never trips:
    /// capacity fits, readiness respected, work conserved, completion
    /// accounting consistent.
    #[test]
    fn no_scheduler_violates_invariants_under_random_faults(
        config in fault_config(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let (workload, faulted_cluster) = faulted_instance(&experiment(), &cluster, config);
        let algo = Algo::FIG4[algo_idx];
        let mut scheduler = algo.make(&faulted_cluster);
        let result = Engine::new(faulted_cluster, workload, 1_000_000)
            .expect("valid workload")
            .run(scheduler.as_mut());
        prop_assert!(result.is_ok(), "{}: {:?}", algo.name(), result.err());
    }

    /// A zero-intensity plan is the identity regardless of its seed.
    #[test]
    fn zero_intensity_plan_is_identity_for_any_seed(seed in 0u64..u64::MAX) {
        let cluster = testbed_cluster();
        let exp = experiment();
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::none(seed));
        prop_assert_eq!(workload, exp.build(&cluster));
        prop_assert_eq!(faulted_cluster, cluster);
    }

    /// Fault application is a pure function of (workload, cluster, config):
    /// re-applying the same plan yields an identical instance.
    #[test]
    fn fault_application_is_deterministic(config in fault_config()) {
        let cluster = testbed_cluster();
        let exp = experiment();
        let a = faulted_instance(&exp, &cluster, config.clone());
        let b = faulted_instance(&exp, &cluster, config);
        prop_assert_eq!(a, b);
    }

    /// The offline auditor certifies every traced run: whatever faults are
    /// injected and whichever scheduler plans, replaying the decision trace
    /// against the scenario independently re-derives the outcome with zero
    /// violations.
    #[test]
    fn auditor_certifies_every_traced_run_under_random_faults(
        config in fault_config(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let (workload, faulted_cluster) = faulted_instance(&experiment(), &cluster, config);
        let algo = Algo::FIG4[algo_idx];
        let mut scheduler = algo.make(&faulted_cluster);
        let (engine, handle) = Engine::new(faulted_cluster.clone(), workload.clone(), 1_000_000)
            .expect("valid workload")
            .with_trace(flowtime_sim::DEFAULT_TRACE_CAPACITY);
        let outcome = engine.run(scheduler.as_mut()).expect("run succeeds");
        prop_assert!(outcome.is_complete());
        let report = certify(&faulted_cluster, &workload, &outcome, &handle.take());
        prop_assert!(
            report.is_certified(),
            "{}: {}",
            algo.name(),
            report.summary()
        );
        prop_assert_eq!(report.attribution, outcome.deadline_attribution);
    }

    /// Horizon-drain variant: when the slot budget runs out with jobs still
    /// in flight (including jobs that never arrived), the auditor still
    /// certifies the partial run from its trace.
    #[test]
    fn auditor_certifies_horizon_drained_runs(
        config in fault_config(),
        algo_idx in 0usize..Algo::FIG4.len(),
        max_slots in 2u64..60,
    ) {
        let cluster = testbed_cluster();
        let (workload, faulted_cluster) = faulted_instance(&experiment(), &cluster, config);
        let algo = Algo::FIG4[algo_idx];
        let mut scheduler = algo.make(&faulted_cluster);
        let (engine, handle) = Engine::new(faulted_cluster.clone(), workload.clone(), max_slots)
            .expect("valid workload")
            .with_trace(flowtime_sim::DEFAULT_TRACE_CAPACITY);
        let outcome = engine.run(scheduler.as_mut()).expect("drain is not an error");
        let report = certify(&faulted_cluster, &workload, &outcome, &handle.take());
        prop_assert!(
            report.is_certified(),
            "{} at {} slots: {}",
            algo.name(),
            max_slots,
            report.summary()
        );
    }

    /// Misestimation rewrites ground truth but never the scheduler-visible
    /// estimates, and never produces zero-work jobs.
    #[test]
    fn misestimation_preserves_estimates_and_positivity(
        seed in 0u64..100_000,
        sigma in 0.01f64..1.0,
    ) {
        let cluster = testbed_cluster();
        let exp = experiment();
        let clean = exp.build(&cluster);
        let (faulted, _) =
            faulted_instance(&exp, &cluster, FaultConfig::none(seed).with_misestimate(sigma));
        for (c, f) in clean.workflows.iter().zip(&faulted.workflows) {
            prop_assert_eq!(&c.workflow, &f.workflow, "estimates must be untouched");
            let actual = f.actual_work.as_ref().expect("ground truth injected");
            prop_assert_eq!(actual.len(), f.workflow.len());
            prop_assert!(actual.iter().all(|&w| w >= 1));
        }
    }
}
