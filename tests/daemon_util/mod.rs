//! Shared helpers for the daemon integration suites: building loopback
//! sessions, rendering protocol request lines, and extracting the typed
//! outcome/trace pair from a drained session.

// Each suite compiles this module independently and uses a different
// subset of the helpers.
#![allow(dead_code)]

use flowtime_daemon::{DiskFaultPlan, FsyncPolicy, Loopback, Session, SessionConfig, WalConfig};
use flowtime_sim::{AdhocSubmission, ClusterConfig, DecisionTrace, SimOutcome, WorkflowSubmission};
use std::path::{Path, PathBuf};

/// Trace ring size used by both sides of every differential comparison.
pub const TRACE_CAPACITY: u64 = 1 << 18;

/// A loopback session over the given cluster and scheduler.
pub fn loopback(cluster: ClusterConfig, scheduler: &str) -> Loopback {
    loopback_with_snapshot(cluster, scheduler, None)
}

/// A loopback session with an optional snapshot path.
pub fn loopback_with_snapshot(
    cluster: ClusterConfig,
    scheduler: &str,
    snapshot_path: Option<String>,
) -> Loopback {
    loopback_sharded_with_snapshot(cluster, scheduler, 0, None, snapshot_path)
}

/// A loopback session sharded into `pods` pods (0 and 1 both mean the
/// unsharded engine).
pub fn loopback_sharded(cluster: ClusterConfig, scheduler: &str, pods: u64) -> Loopback {
    loopback_sharded_with_snapshot(cluster, scheduler, pods, None, None)
}

/// The fully general loopback builder: pod count, placer, snapshot path.
pub fn loopback_sharded_with_snapshot(
    cluster: ClusterConfig,
    scheduler: &str,
    pods: u64,
    placer: Option<String>,
    snapshot_path: Option<String>,
) -> Loopback {
    Loopback::new(
        Session::new(SessionConfig {
            cluster,
            scheduler: scheduler.to_string(),
            max_slots: 1_000_000,
            trace_capacity: TRACE_CAPACITY,
            snapshot_path,
            pods,
            placer,
        })
        .expect("valid session config"),
    )
}

/// A fresh per-test WAL directory under the target temp dir. The caller
/// owns cleanup (tests usually `remove_dir_all` at the end; a failed
/// test leaves the directory behind for inspection).
pub fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowtime-wal-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A [`SessionConfig`] matching the loopback builders (used as the
/// recovery fallback config).
pub fn session_config(cluster: ClusterConfig, scheduler: &str, pods: u64) -> SessionConfig {
    SessionConfig {
        cluster,
        scheduler: scheduler.to_string(),
        max_slots: 1_000_000,
        trace_capacity: TRACE_CAPACITY,
        snapshot_path: None,
        pods,
        placer: None,
    }
}

/// A [`WalConfig`] rooted at `dir` with the given fsync policy and the
/// durable defaults otherwise.
pub fn wal_config(dir: &Path, fsync: FsyncPolicy) -> WalConfig {
    let mut config = WalConfig::new(dir);
    config.fsync = fsync;
    config
}

/// A loopback session recovered from (or freshly created in) the WAL
/// directory, optionally under a seeded disk-fault plan.
pub fn loopback_wal(
    cluster: ClusterConfig,
    scheduler: &str,
    pods: u64,
    dir: &Path,
    fsync: FsyncPolicy,
    faults: Option<DiskFaultPlan>,
) -> Loopback {
    let (session, _report) = Session::recover(
        session_config(cluster, scheduler, pods),
        wal_config(dir, fsync),
        faults,
    )
    .expect("wal recovery succeeds");
    Loopback::new(session)
}

/// Renders a `submit_workflow` request line.
pub fn workflow_line(sub: &WorkflowSubmission) -> String {
    format!(
        "{{\"req\":\"submit_workflow\",\"submission\":{}}}",
        serde_json::to_string(sub).expect("workflow serializes")
    )
}

/// Renders a `submit_adhoc` request line.
pub fn adhoc_line(sub: &AdhocSubmission) -> String {
    format!(
        "{{\"req\":\"submit_adhoc\",\"submission\":{}}}",
        serde_json::to_string(sub).expect("adhoc serializes")
    )
}

/// Sends a line and asserts the daemon replied `{"ok": ...}`.
pub fn ok(lb: &mut Loopback, line: &str) -> String {
    let response = lb.request_line(line);
    assert!(
        response.starts_with("{\"ok\":"),
        "expected ok for `{line}`, got: {response}"
    );
    response
}

/// Sends a line and asserts the daemon replied with the given typed
/// error code.
pub fn err_code(lb: &mut Loopback, line: &str, code: &str) {
    let response = lb.request_line(line);
    let value = serde_json::parse(&response).expect("response is JSON");
    let got = value
        .get("err")
        .and_then(|e| e.get("code"))
        .and_then(serde_json::Value::as_str)
        .unwrap_or_else(|| panic!("expected error for `{line}`, got: {response}"));
    assert_eq!(got, code, "wrong error code for `{line}`: {response}");
}

/// Drains the session and returns `(outcome bytes, typed outcome, trace)`.
pub fn drain(mut lb: Loopback) -> (String, SimOutcome, DecisionTrace) {
    ok(&mut lb, "{\"req\":\"drain\"}");
    let session = lb.into_session();
    let bytes = session.outcome_json().expect("drained").to_string();
    let outcome: SimOutcome =
        serde_json::from_value(&serde_json::parse(&bytes).expect("outcome parses"))
            .expect("outcome deserializes");
    let trace = session.final_trace().expect("drained").clone();
    (bytes, outcome, trace)
}

/// Serializes a trace to its JSONL byte representation.
pub fn trace_bytes(trace: &DecisionTrace) -> String {
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("trace serializes");
    String::from_utf8(buf).expect("trace is utf-8")
}
