//! Property-based daemon tests: random interleavings of submit, cancel,
//! query, and tick requests over the loopback transport always leave the
//! session in a state whose drained outcome (a) is certified by the
//! offline auditor against the recorded submission log and (b) replays
//! byte-identically — outcome and decision trace — through a batch
//! `Engine::from_log` run.

mod daemon_util;

use daemon_util::{adhoc_line, drain, loopback, trace_bytes, workflow_line, TRACE_CAPACITY};
use flowtime_bench::experiments::Algo;
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::{certify_log, AdhocSubmission, ClusterConfig, Engine, WorkflowSubmission};
use proptest::prelude::*;

fn cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0)
}

/// One randomized session action.
#[derive(Debug, Clone)]
enum Op {
    /// Submit an ad-hoc job `offset` slots in the future.
    Adhoc { offset: u64, tasks: u64, dur: u64 },
    /// Submit a small chain workflow `offset` slots in the future.
    Workflow { offset: u64, looseness: u64 },
    /// Cancel the `nth` submission made so far (may already be live).
    Cancel { nth: u64 },
    /// Query the `nth` submission made so far.
    Query { nth: u64 },
    /// Advance virtual time by `delta` slots.
    Tick { delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice via a selector draw (the proptest shim has no
    // `prop_oneof`): 4/11 adhoc, 2/11 workflow, 2/11 cancel, 1/11 query,
    // 2/11 tick.
    (0u64..11, 0u64..20, 1u64..6, 1u64..4, 0u64..40, 1u64..12).prop_map(
        |(sel, offset, tasks, dur, nth, delta)| match sel {
            0..=3 => Op::Adhoc { offset, tasks, dur },
            4..=5 => Op::Workflow {
                offset,
                looseness: 3 + tasks,
            },
            6..=7 => Op::Cancel { nth },
            8 => Op::Query { nth },
            _ => Op::Tick { delta },
        },
    )
}

fn chain(id: u64, submit: u64, looseness: u64) -> WorkflowSubmission {
    let mut b = WorkflowBuilder::new(WorkflowId::new(id), format!("wf{id}"));
    let a = b.add_job(JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024])));
    let c = b.add_job(JobSpec::new("c", 2, 2, ResourceVec::new([1, 1024])));
    b.add_dep(a, c).expect("two nodes");
    WorkflowSubmission::new(
        b.window(submit, submit + 4 * looseness)
            .build()
            .expect("valid window"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_interleavings_are_certified_and_replayable(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let algo = Algo::FIG4[algo_idx];
        let mut lb = loopback(cluster(), algo.name());
        let mut now = 0u64;
        let mut submitted = 0u64;
        let mut wf_id = 0u64;
        for op in &ops {
            let response = match op {
                Op::Adhoc { offset, tasks, dur } => {
                    let sub = AdhocSubmission::new(
                        JobSpec::new("a", *tasks, *dur, ResourceVec::new([1, 1024])),
                        now + offset,
                    );
                    submitted += 1;
                    lb.request_line(&adhoc_line(&sub))
                }
                Op::Workflow { offset, looseness } => {
                    wf_id += 1;
                    submitted += 1;
                    lb.request_line(&workflow_line(&chain(wf_id, now + offset, *looseness)))
                }
                Op::Cancel { nth } if submitted > 0 => {
                    lb.request_line(&format!("{{\"req\":\"cancel\",\"sub\":{}}}", nth % submitted))
                }
                Op::Query { nth } if submitted > 0 => {
                    lb.request_line(&format!("{{\"req\":\"query\",\"sub\":{}}}", nth % submitted))
                }
                Op::Tick { delta } => {
                    let target = now + delta;
                    let r = lb.request_line(&format!("{{\"req\":\"tick\",\"to\":{target}}}"));
                    // The session may park before the target; track its
                    // reported clock, not our request.
                    let v = serde_json::parse(&r).expect("tick response is JSON");
                    if let Some(serde_json::Value::U64(n)) =
                        v.get("ok").and_then(|o| o.get("now"))
                    {
                        now = *n;
                    }
                    r
                }
                // Cancel/query before anything was submitted: exercise the
                // unknown-submission path.
                Op::Cancel { .. } | Op::Query { .. } => {
                    lb.request_line("{\"req\":\"cancel\",\"sub\":0}")
                }
            };
            // Every response is exactly ok or a typed error — no panics,
            // no malformed lines, whatever the interleaving.
            let v = serde_json::parse(&response).expect("response is JSON");
            prop_assert!(
                v.get("ok").is_some() ^ v.get("err").is_some(),
                "response must be ok xor err: {response}"
            );
        }

        let log = lb.session().log().clone();
        let (daemon_bytes, daemon_outcome, daemon_trace) = drain(lb);

        // (b) Byte-identical replay through the batch engine.
        let mut scheduler = algo.make(&cluster());
        let (engine, handle) = Engine::from_log(cluster(), &log, 1_000_000)
            .expect("recorded log replays")
            .with_trace(TRACE_CAPACITY as usize);
        let batch_outcome = engine.run(scheduler.as_mut()).expect("batch run succeeds");
        prop_assert_eq!(
            &daemon_bytes,
            &serde_json::to_string(&batch_outcome).expect("outcome serializes"),
            "outcome bytes diverge for {}", algo.name()
        );
        prop_assert_eq!(
            trace_bytes(&daemon_trace),
            trace_bytes(&handle.take()),
            "decision traces diverge for {}", algo.name()
        );

        // (a) Auditor certification of the online outcome.
        let report = certify_log(&cluster(), &log, &daemon_outcome, &daemon_trace);
        prop_assert!(
            report.is_certified(),
            "daemon outcome not certified for {}: {:?}", algo.name(), report.violations
        );
    }
}
