//! Metamorphic properties of the `explain` diagnostic engine: across the
//! chaos corpus (random mid-run fault intensities × retry/shed policies ×
//! all six schedulers), every diagnostic must cite only events that exist
//! in the recorded trace, every causal chain's slack accounting must
//! balance exactly against the auditor's independent `MissAttribution`
//! recount, diagnostics must exist iff the run missed workflow deadlines,
//! and the whole report must be byte-deterministic across re-runs.

use flowtime_bench::experiments::{
    run_outcome_traced_with, testbed_cluster, Algo, WorkflowExperiment,
};
use flowtime_sim::explain::event_kind;
use flowtime_sim::prelude::*;
use flowtime_sim::{explain, TraceEvent};
use proptest::prelude::*;

fn experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        ..Default::default()
    }
}

/// Random mid-run fault intensities — same shape as the recovery suite's
/// corpus, so the explain layer is exercised on exactly the runs the
/// auditor already certifies.
fn fault_config() -> impl Strategy<Value = RuntimeFaultConfig> {
    (
        0u64..1_000_000,
        0.05f64..0.8,
        0.0f64..0.6,
        6u64..60,
        0.0f64..0.5,
        0.1f64..1.5,
    )
        .prop_map(|(seed, fail, crash, period, straggle, factor)| {
            RuntimeFaultConfig::none(seed)
                .with_task_failures(fail)
                .with_crashes(crash)
                .with_crash_period(period)
                .with_stragglers(straggle, factor)
        })
}

fn recovery_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (1u32..5, 0u64..3, 0usize..3, 1u64..4, 0.5f64..4.0, 1u64..6).prop_map(
        |(retries, backoff, shed_idx, delay, factor, sustain)| {
            let shed = match shed_idx {
                0 => ShedPolicy::None,
                1 => ShedPolicy::Shed,
                _ => ShedPolicy::Delay { slots: delay },
            };
            RecoveryPolicy::default()
                .with_max_retries(retries)
                .with_backoff(backoff)
                .with_shed(shed)
                .with_overload(factor, sustain)
        },
    )
}

fn setup() -> impl Strategy<Value = RecoverySetup> {
    (fault_config(), recovery_policy())
        .prop_map(|(faults, policy)| RecoverySetup::new(faults, policy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: whatever faults fire and whichever scheduler
    /// plans, `explain` accepts the certified run and every claim it makes
    /// is grounded — each cited [`flowtime_sim::EventRef`] resolves to a
    /// real trace event with the same kind, slot, and job, and each missed
    /// workflow's E001 slack sums to the auditor's independent recount.
    #[test]
    fn diagnostics_cite_real_events_and_balance_to_the_auditor(
        setup in setup(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let algo = Algo::FIG4[algo_idx];
        let (outcome, trace) =
            run_outcome_traced_with(algo, &cluster, workload.clone(), Some(&setup));
        let report = explain(&cluster, &workload, &outcome, &trace, Some(&setup))
            .expect("certified runs must be explainable");

        // Every missed workflow gets a chain; clean runs get none.
        let missed = outcome
            .metrics
            .workflows
            .iter()
            .filter(|w| w.missed_deadline())
            .count();
        prop_assert_eq!(report.missed_workflows(), missed);
        prop_assert_eq!(report.diagnostics() == 0, missed == 0);

        let events: Vec<&TraceEvent> = trace.events().collect();
        let audit = certify_with_recovery(&cluster, &workload, &outcome, &trace, Some(&setup));
        prop_assert!(audit.is_certified(), "{}", audit.summary());

        for wf in &report.workflows {
            // Grounding: evidence only ever points into the trace, and the
            // pointed-at event agrees on kind, slot, and job.
            for d in &wf.chain {
                for r in &d.evidence {
                    let ev = events.get(r.index as usize);
                    prop_assert!(ev.is_some(), "evidence index {} out of range", r.index);
                    let ev = ev.unwrap();
                    prop_assert_eq!(event_kind(ev), r.kind.as_str());
                    prop_assert_eq!(ev.slot(), r.slot);
                    prop_assert_eq!(ev.job(), r.job);
                }
            }
            // Slack balance: the E001 anchors sum exactly to the auditor's
            // independently recounted overrun for this workflow.
            let e001: u64 = wf
                .chain
                .iter()
                .filter(|d| d.code == "E001")
                .map(|d| d.slack_slots)
                .sum();
            prop_assert_eq!(e001, wf.total_overrun_slots);
            let attr = audit
                .attribution
                .iter()
                .find(|a| a.workflow == wf.workflow)
                .expect("auditor attributes every missed workflow");
            prop_assert_eq!(wf.total_overrun_slots, attr.total_overrun_slots);
        }
    }

    /// Byte-determinism: explaining the same run twice — and explaining a
    /// from-scratch re-run of the same scenario — yields identical bytes.
    #[test]
    fn explain_is_byte_deterministic_across_reruns(
        setup in setup(),
        algo_idx in 0usize..Algo::FIG4.len(),
    ) {
        let cluster = testbed_cluster();
        let workload = experiment().build(&cluster);
        let algo = Algo::FIG4[algo_idx];
        let (outcome, trace) =
            run_outcome_traced_with(algo, &cluster, workload.clone(), Some(&setup));
        let first = serde_json::to_string(
            &explain(&cluster, &workload, &outcome, &trace, Some(&setup)).unwrap(),
        )
        .unwrap();
        let again = serde_json::to_string(
            &explain(&cluster, &workload, &outcome, &trace, Some(&setup)).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(&first, &again);
        let (outcome2, trace2) =
            run_outcome_traced_with(algo, &cluster, workload.clone(), Some(&setup));
        let rerun = serde_json::to_string(
            &explain(&cluster, &workload, &outcome2, &trace2, Some(&setup)).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(&first, &rerun);
    }
}

/// A clean, generously-provisioned scenario: no injected faults, loose
/// deadlines. Every scheduler meets every deadline, so `explain` must
/// stay silent for all six.
#[test]
fn clean_feasible_runs_yield_zero_diagnostics_for_all_six_schedulers() {
    let cluster = testbed_cluster();
    let workload = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 4,
        looseness: 8.0,
        adhoc_rate: 0.1,
        adhoc_horizon: 40,
        ..Default::default()
    }
    .build(&cluster);
    for algo in Algo::FIG4 {
        let (outcome, trace) = run_outcome_traced_with(algo, &cluster, workload.clone(), None);
        assert_eq!(
            outcome.metrics.workflow_deadline_misses(),
            0,
            "{}: the clean scenario must be feasible",
            algo.name()
        );
        let report = explain(&cluster, &workload, &outcome, &trace, None).unwrap();
        assert_eq!(report.missed_workflows(), 0, "{}", algo.name());
        assert_eq!(report.diagnostics(), 0, "{}", algo.name());
        assert!(report.events_checked > 0);
    }
}
