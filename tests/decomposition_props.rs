//! Property-based tests of the deadline decomposer over random workflows.

use flowtime::decompose::{decompose, slack::slacked_windows, DecomposeConfig, Decomposer};
use flowtime_dag::{JobSpec, ResourceVec, Workflow, WorkflowBuilder, WorkflowId};
use flowtime_workload::shapes;
use proptest::prelude::*;

fn random_workflow() -> impl Strategy<Value = Workflow> {
    (4usize..40, 2usize..6, 0usize..80, 0u64..1000, 1u64..50).prop_map(
        |(nodes, layers, extra_edges, seed, scale)| {
            let layers = layers.min(nodes);
            let edges = shapes::layered_random(nodes, layers, nodes + extra_edges, seed);
            let mut b = WorkflowBuilder::new(WorkflowId::new(seed), "prop");
            for i in 0..nodes {
                b.add_job(JobSpec::new(
                    format!("j{i}"),
                    1 + (seed + i as u64) % (4 * scale),
                    1 + (seed + i as u64) % 5,
                    ResourceVec::new([1, 1024]),
                ));
            }
            for (from, to) in edges {
                b.add_dep(from, to).expect("unique edges");
            }
            // Window: somewhere between tight and very loose.
            let window = (nodes as u64) * (2 + seed % 40);
            b.window(seed % 100, seed % 100 + window)
                .build()
                .expect("valid")
        },
    )
}

fn config() -> DecomposeConfig {
    DecomposeConfig::new(ResourceVec::new([64, 262_144]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Set windows exactly partition the workflow window, in order.
    #[test]
    fn windows_partition_workflow_window(wf in random_workflow()) {
        let d = decompose(&wf, &config()).unwrap();
        prop_assert_eq!(d.set_windows.first().unwrap().start, wf.submit_slot());
        prop_assert_eq!(d.set_windows.last().unwrap().deadline, wf.deadline_slot());
        for pair in d.set_windows.windows(2) {
            prop_assert_eq!(pair[0].deadline, pair[1].start);
        }
        for w in &d.windows {
            prop_assert!(!w.is_empty());
            prop_assert!(w.start >= wf.submit_slot());
            prop_assert!(w.deadline <= wf.deadline_slot());
        }
    }

    /// Milestones are topologically monotone: a job's deadline never
    /// precedes a dependency's deadline.
    #[test]
    fn milestones_respect_dependencies(wf in random_workflow()) {
        let d = decompose(&wf, &config()).unwrap();
        for (from, to) in wf.dag().edges() {
            prop_assert!(
                d.windows[from].deadline <= d.windows[to].deadline,
                "edge {}->{} deadlines {} > {}",
                from, to, d.windows[from].deadline, d.windows[to].deadline
            );
            prop_assert!(d.windows[from].deadline <= d.windows[to].start + d.set_windows.len() as u64);
        }
    }

    /// Jobs in the same level set share a window.
    #[test]
    fn level_sets_share_windows(wf in random_workflow()) {
        let d = decompose(&wf, &config()).unwrap();
        for (set, w) in d.sets.iter().zip(&d.set_windows) {
            for &j in set {
                prop_assert_eq!(d.windows[j], *w);
            }
        }
    }

    /// Both strategies produce valid partitions; the demand strategy gives
    /// high-demand sets at least as much room as the runtime split when it
    /// applies cleanly.
    #[test]
    fn critical_path_strategy_also_partitions(wf in random_workflow()) {
        let d = decompose(&wf, &config().with_decomposer(Decomposer::CriticalPath)).unwrap();
        prop_assert_eq!(d.method_used, Decomposer::CriticalPath);
        let total: u64 = d.set_windows.iter().map(|w| w.len()).sum();
        prop_assert_eq!(total, wf.window_slots());
    }

    /// Slack shrinks deadlines monotonically, keeps starts, never empties.
    #[test]
    fn slack_is_monotone_and_safe(wf in random_workflow(), s1 in 0u64..10, s2 in 0u64..10) {
        let d = decompose(&wf, &config()).unwrap();
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        let wlo = slacked_windows(&d, lo);
        let whi = slacked_windows(&d, hi);
        for ((orig, a), b) in d.windows.iter().zip(&wlo).zip(&whi) {
            prop_assert_eq!(a.start, orig.start);
            prop_assert!(b.deadline <= a.deadline);
            prop_assert!(a.deadline <= orig.deadline);
            prop_assert!(!b.is_empty());
        }
    }

    /// Decomposition is a pure function of its inputs.
    #[test]
    fn deterministic(wf in random_workflow()) {
        let a = decompose(&wf, &config()).unwrap();
        let b = decompose(&wf, &config()).unwrap();
        prop_assert_eq!(a, b);
    }
}
