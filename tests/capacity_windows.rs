//! Time-varying capacity (`C_t^r`) integration tests.

use flowtime::{EdfScheduler, FairScheduler, FifoScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::Scheduler;

fn cluster_with_outage() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0).with_capacity_window(
        30,
        60,
        ResourceVec::new([4, 16_384]),
    )
}

fn workload() -> SimWorkload {
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
    let a = b.add_job(JobSpec::new("a", 120, 2, ResourceVec::new([1, 2048])));
    let c = b.add_job(JobSpec::new("b", 120, 2, ResourceVec::new([1, 2048])));
    b.add_dep(a, c).unwrap();
    let wf = b.window(0, 100).build().unwrap();
    let mut wl = SimWorkload::default();
    wl.workflows.push(WorkflowSubmission::new(wf));
    wl.adhoc.push(AdhocSubmission::new(
        JobSpec::new("q", 8, 1, ResourceVec::new([1, 2048])).with_max_parallel(4),
        40,
    ));
    wl
}

fn run(s: &mut dyn Scheduler) -> Metrics {
    Engine::new(cluster_with_outage(), workload(), 100_000)
        .unwrap()
        .run(s)
        .unwrap()
        .metrics
}

#[test]
fn no_scheduler_may_exceed_windowed_capacity() {
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FlowTimeScheduler::new(
            cluster_with_outage(),
            FlowTimeConfig::default(),
        )),
        Box::new(EdfScheduler::new()),
        Box::new(FifoScheduler::new()),
        Box::new(FairScheduler::new()),
    ];
    for mut s in schedulers {
        let m = run(s.as_mut());
        for (t, load) in m.slot_loads.iter().enumerate() {
            let cap = m.slot_capacities[t];
            assert!(
                load.fits_within(&cap),
                "{} violated capacity at slot {t}: {load} > {cap}",
                s.name()
            );
            if (30..60).contains(&(t as u64)) {
                assert!(load.fits_within(&ResourceVec::new([4, 16_384])));
            }
        }
    }
}

#[test]
fn flowtime_meets_deadline_despite_outage() {
    let mut ft = FlowTimeScheduler::new(cluster_with_outage(), FlowTimeConfig::default());
    let m = run(&mut ft);
    assert_eq!(m.workflow_deadline_misses(), 0);
}

#[test]
fn outage_slows_but_does_not_stall_work() {
    let mut fifo = FifoScheduler::new();
    let m = run(&mut fifo);
    assert_eq!(m.completed_jobs(), 3);
    // Work definitely proceeded through the outage at reduced width.
    let during: u64 = (30..60)
        .filter_map(|t| m.slot_loads.get(t).map(|l| l.dim(0)))
        .sum();
    assert!(during > 0, "nothing ran during the outage");
}

#[test]
fn metrics_normalize_against_windowed_capacity() {
    let mut ft = FlowTimeScheduler::new(cluster_with_outage(), FlowTimeConfig::default());
    let m = run(&mut ft);
    // A 4-core slot fully used counts as 1.0 utilization, not 0.25.
    assert!(m.max_peak_utilization() <= 1.0 + 1e-9);
}
