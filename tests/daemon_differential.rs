//! Daemon-vs-batch differential: an online `flowtimed` session fed a
//! faulted workload submission-by-submission must produce a
//! byte-identical `SimOutcome` (and decision trace) to a batch
//! `Engine::from_log` run over the submission log the session recorded —
//! across every Fig. 4 scheduler and a corpus of fault seeds — and the
//! offline auditor must certify both sides.

mod daemon_util;

use daemon_util::{adhoc_line, drain, loopback, ok, trace_bytes, workflow_line, TRACE_CAPACITY};
use flowtime_bench::experiments::{faulted_instance, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_sim::{certify_log, Engine, FaultConfig, SimWorkload};

fn experiment(seed: u64) -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 6,
        adhoc_horizon: 60,
        seed,
        ..Default::default()
    }
}

/// Drives a faulted workload through a loopback daemon session in
/// submission order, optionally cancelling the submissions whose
/// sequence numbers appear in `cancel`, then drains.
fn run_daemon(
    cluster: flowtime_sim::ClusterConfig,
    workload: &SimWorkload,
    algo: Algo,
    cancel: &[u64],
) -> (
    String,
    flowtime_sim::SimOutcome,
    flowtime_sim::DecisionTrace,
    flowtime_sim::SubmissionLog,
) {
    let mut lb = loopback(cluster, algo.name());
    for sub in &workload.workflows {
        ok(&mut lb, &workflow_line(sub));
    }
    for sub in &workload.adhoc {
        ok(&mut lb, &adhoc_line(sub));
    }
    for seq in cancel {
        ok(&mut lb, &format!("{{\"req\":\"cancel\",\"sub\":{seq}}}"));
    }
    let log = lb.session().log().clone();
    let (bytes, outcome, trace) = drain(lb);
    (bytes, outcome, trace, log)
}

/// The core contract over the fault-seed corpus and all six schedulers.
#[test]
fn daemon_matches_batch_for_all_schedulers_over_fault_corpus() {
    for seed in [0u64, 1, 2] {
        let cluster = testbed_cluster();
        let (workload, faulted_cluster) =
            faulted_instance(&experiment(seed), &cluster, FaultConfig::mixed(seed));
        for algo in Algo::FIG4 {
            let (daemon_bytes, daemon_outcome, daemon_trace, log) =
                run_daemon(faulted_cluster.clone(), &workload, algo, &[]);

            let mut scheduler = algo.make(&faulted_cluster);
            let (engine, handle) = Engine::from_log(faulted_cluster.clone(), &log, 1_000_000)
                .expect("log replays")
                .with_trace(TRACE_CAPACITY as usize);
            let batch_outcome = engine.run(scheduler.as_mut()).expect("batch run succeeds");
            let batch_bytes = serde_json::to_string(&batch_outcome).expect("outcome serializes");
            let batch_trace = handle.take();

            assert_eq!(
                daemon_bytes,
                batch_bytes,
                "outcome bytes diverge for {} seed {seed}",
                algo.name()
            );
            assert_eq!(
                trace_bytes(&daemon_trace),
                trace_bytes(&batch_trace),
                "decision traces diverge for {} seed {seed}",
                algo.name()
            );

            // Auditor certification on both sides, against the same log.
            let daemon_report = certify_log(&faulted_cluster, &log, &daemon_outcome, &daemon_trace);
            assert!(
                daemon_report.is_certified(),
                "daemon outcome not certified for {} seed {seed}: {:?}",
                algo.name(),
                daemon_report.violations
            );
            let batch_report = certify_log(&faulted_cluster, &log, &batch_outcome, &batch_trace);
            assert!(
                batch_report.is_certified(),
                "batch outcome not certified for {} seed {seed}: {:?}",
                algo.name(),
                batch_report.violations
            );
        }
    }
}

/// Cancelled submissions never materialize: a session that cancels some
/// still-pending submissions replays (via its log, cancellations
/// included) to the identical bytes, and the cancelled jobs are absent
/// from the outcome.
#[test]
fn cancellation_is_replayed_exactly() {
    let seed = 1u64;
    let cluster = testbed_cluster();
    let (workload, faulted_cluster) =
        faulted_instance(&experiment(seed), &cluster, FaultConfig::mixed(seed));
    let n_workflows = workload.workflows.len() as u64;
    // Cancel two ad-hoc submissions (sequence numbers follow workflows).
    let cancel = [n_workflows, n_workflows + 3];
    let algo = Algo::Edf;

    let (daemon_bytes, daemon_outcome, daemon_trace, log) =
        run_daemon(faulted_cluster.clone(), &workload, algo, &cancel);
    assert_eq!(
        log.effective().expect("valid log").len(),
        workload.workflows.len() + workload.adhoc.len() - cancel.len(),
        "cancelled submissions must drop out of the effective log"
    );

    let mut scheduler = algo.make(&faulted_cluster);
    let (engine, handle) = Engine::from_log(faulted_cluster.clone(), &log, 1_000_000)
        .expect("log replays")
        .with_trace(TRACE_CAPACITY as usize);
    let batch_outcome = engine.run(scheduler.as_mut()).expect("batch run succeeds");
    assert_eq!(
        daemon_bytes,
        serde_json::to_string(&batch_outcome).expect("outcome serializes"),
        "cancellation-bearing log must replay byte-identically"
    );
    assert_eq!(trace_bytes(&daemon_trace), trace_bytes(&handle.take()));
    assert_eq!(
        daemon_outcome.metrics.jobs.len(),
        workload
            .workflows
            .iter()
            .map(|w| w.workflow.len())
            .sum::<usize>()
            + workload.adhoc.len()
            - cancel.len(),
        "cancelled jobs must not appear in the outcome"
    );

    let report = certify_log(&faulted_cluster, &log, &daemon_outcome, &daemon_trace);
    assert!(report.is_certified(), "{:?}", report.violations);
}

/// Submissions interleaved with `tick` (arriving while the engine is
/// mid-run, not queued up front) still replay byte-identically: the
/// session's log is the complete determinism artifact.
#[test]
fn mid_run_submission_matches_batch() {
    let seed = 2u64;
    let cluster = testbed_cluster();
    let (workload, faulted_cluster) =
        faulted_instance(&experiment(seed), &cluster, FaultConfig::mixed(seed));
    let algo = Algo::FlowTime;

    let mut lb = loopback(faulted_cluster.clone(), algo.name());
    // Workflows go in up front; the ad-hoc stream arrives online, with
    // virtual time advanced between batches of submissions.
    for sub in &workload.workflows {
        ok(&mut lb, &workflow_line(sub));
    }
    let mut adhoc: Vec<_> = workload.adhoc.clone();
    adhoc.sort_by_key(|s| s.arrival_slot);
    let mut now = 0u64;
    for sub in &adhoc {
        // Advance time close to (but not past) this job's arrival, so
        // submissions happen genuinely mid-run.
        if sub.arrival_slot > now + 4 {
            now = sub.arrival_slot - 2;
            ok(&mut lb, &format!("{{\"req\":\"tick\",\"to\":{now}}}"));
        }
        ok(&mut lb, &adhoc_line(sub));
    }
    let log = lb.session().log().clone();
    let (daemon_bytes, daemon_outcome, daemon_trace) = drain(lb);

    let mut scheduler = algo.make(&faulted_cluster);
    let (engine, handle) = Engine::from_log(faulted_cluster.clone(), &log, 1_000_000)
        .expect("log replays")
        .with_trace(TRACE_CAPACITY as usize);
    let batch_outcome = engine.run(scheduler.as_mut()).expect("batch run succeeds");
    assert_eq!(
        daemon_bytes,
        serde_json::to_string(&batch_outcome).expect("outcome serializes")
    );
    assert_eq!(trace_bytes(&daemon_trace), trace_bytes(&handle.take()));
    let report = certify_log(&faulted_cluster, &log, &daemon_outcome, &daemon_trace);
    assert!(report.is_certified(), "{:?}", report.violations);
}
