//! Review repro: cancel after idle gap-burning vs snapshot restore and
//! batch parity.

mod daemon_util;

use daemon_util::{adhoc_line, loopback_with_snapshot};
use flowtime_daemon::{snapshot, Session};
use flowtime_dag::{JobSpec, ResourceVec};
use flowtime_sim::{AdhocSubmission, ClusterConfig};

fn cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([8, 65536]), 10.0)
}

#[test]
fn restore_after_cancel_of_gap_burned_submission() {
    let dir = std::env::temp_dir().join("flowtime-review-repro");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repro.snap").to_string_lossy().into_owned();
    let mut lb = loopback_with_snapshot(cluster(), "fifo", Some(path.clone()));
    // Submit an ad-hoc job far in the future (arrival slot 100).
    let sub = AdhocSubmission {
        spec: JobSpec::new("a", 1, 1, ResourceVec::new([1, 1024])),
        arrival_slot: 100,
    };
    let r = lb.request_line(&adhoc_line(&sub));
    println!("submit: {r}");
    assert!(r.contains("ok"), "{r}");
    // Tick to slot 10: burns idle slots toward the pending arrival.
    let r = lb.request_line("{\"req\":\"tick\",\"to\":10}");
    println!("tick: {r}");
    assert!(r.contains("\"now\":10"), "{r}");
    // Cancel the still-pending submission.
    let r = lb.request_line("{\"req\":\"cancel\",\"sub\":0}");
    println!("cancel: {r}");
    assert!(r.contains("ok"), "{r}");
    // Snapshot the session (now = 10, log = [adhoc, cancel]).
    let r = lb.request_line("{\"req\":\"snapshot\"}");
    println!("snapshot: {r}");
    assert!(r.contains("ok"), "{r}");
    // Restore must succeed: this is a reachable state.
    let body = snapshot::load(&path).expect("snapshot loads");
    let restored = Session::restore(body);
    match &restored {
        Ok(s) => println!("restored, now={}", s.now()),
        Err(e) => println!("RESTORE FAILED: {e}"),
    }
    assert!(
        restored.is_ok(),
        "restore failed: {:?}",
        restored.err().map(|e| e.to_string())
    );
}
