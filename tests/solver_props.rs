//! Property-based cross-validation of the two exact solver backends and
//! the simplex itself.

use flowtime::lp_sched::{backend::plan_peak, rounding, LevelingProblem, PlanJob, SolverBackend};
use flowtime_dag::{JobId, ResourceVec};
use flowtime_lp::{Problem, Relation};
use proptest::prelude::*;

/// A random feasible leveling instance with uniform task shape; jobs may
/// carry per-slot parallelism caps.
fn leveling_instance() -> impl Strategy<Value = LevelingProblem> {
    let horizon = 4usize..12;
    horizon.prop_flat_map(|h| {
        let job = (
            0..h - 1usize,
            1usize..=6,
            1u64..=30,
            proptest::option::of(2u64..=8),
        )
            .prop_map(move |(start, len, demand, slot_cap)| {
                let end = (start + len).min(h);
                (start.min(end - 1), end, demand, slot_cap)
            });
        proptest::collection::vec(job, 1..6).prop_map(move |jobs| LevelingProblem {
            slot_caps: vec![ResourceVec::new([10, 10_240]); h],
            jobs: jobs
                .into_iter()
                .enumerate()
                .map(|(i, (start, end, demand, slot_cap))| {
                    // Cap demand so the job alone always fits its window.
                    let cap = slot_cap.unwrap_or(10).min(10);
                    let demand = demand.min(cap * (end - start) as u64);
                    PlanJob {
                        id: JobId::new(i as u64),
                        window: (start, end),
                        demand: demand.max(1).min(cap * (end - start) as u64).max(1),
                        per_task: ResourceVec::new([1, 1024]),
                        per_slot_cap: slot_cap,
                    }
                })
                .collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parametric-flow and simplex backends find the same optimal peak,
    /// and both plans are feasible (Lemma 2 equivalence).
    #[test]
    fn backends_agree_on_min_max_peak(p in leveling_instance()) {
        let total: u64 = p.jobs.iter().map(|j| j.demand).sum();
        let capacity_total = 10 * p.horizon() as u64;
        prop_assume!(total <= capacity_total);
        let flow = p.solve(SolverBackend::ParametricFlow);
        let lp = p.solve(SolverBackend::Simplex { lex_rounds: 1 });
        match (flow, lp) {
            (Ok(f), Ok(l)) => {
                prop_assert!(rounding::is_feasible(&p, &f), "flow plan infeasible");
                prop_assert!(rounding::is_feasible(&p, &l), "lp plan infeasible");
                let pf = plan_peak(&p, &f);
                let pl = plan_peak(&p, &l);
                // Integral peaks on a 10-unit cluster are multiples of 0.1.
                prop_assert!((pf - pl).abs() < 1e-6, "flow {pf} vs lp {pl}");
            }
            (Err(_), Err(_)) => {} // both agree it is infeasible
            (f, l) => prop_assert!(false, "backends disagree on feasibility: {f:?} vs {l:?}"),
        }
    }

    /// Simplex solutions are feasible and never beaten by random feasible
    /// points (one-sided optimality check).
    #[test]
    fn simplex_dominates_random_feasible_points(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        b0 in 1.0f64..20.0, b1 in 1.0f64..20.0,
        a00 in 0.1f64..3.0, a01 in 0.1f64..3.0,
        a10 in 0.1f64..3.0, a11 in 0.1f64..3.0,
        px in 0.0f64..1.0, py in 0.0f64..1.0,
    ) {
        let mut p = Problem::new();
        let x = p.add_var(c0, 0.0, 10.0).unwrap();
        let y = p.add_var(c1, 0.0, 10.0).unwrap();
        p.add_constraint(&[(x, a00), (y, a01)], Relation::Le, b0).unwrap();
        p.add_constraint(&[(x, a10), (y, a11)], Relation::Le, b1).unwrap();
        let sol = p.solve().unwrap(); // origin is feasible, box-bounded: optimal exists
        prop_assert!(p.is_feasible(&sol.x, 1e-6));
        // A random candidate point, scaled into the feasible region.
        let tx = (b0 / a00).min(b1 / a10).min(10.0) * px;
        let ty = ((b0 - a00 * tx).max(0.0) / a01)
            .min((b1 - a10 * tx).max(0.0) / a11)
            .min(10.0)
            * py;
        prop_assert!(p.is_feasible(&[tx, ty], 1e-6));
        prop_assert!(
            sol.objective <= p.objective_at(&[tx, ty]) + 1e-6,
            "candidate beat the 'optimum': {} < {}",
            p.objective_at(&[tx, ty]),
            sol.objective
        );
    }

    /// Rounding preserves totals and feasibility for fractional inputs.
    #[test]
    fn rounding_preserves_demands(p in leveling_instance()) {
        let total: u64 = p.jobs.iter().map(|j| j.demand).sum();
        prop_assume!(total <= 10 * p.horizon() as u64);
        if let Ok(plan) = p.solve(SolverBackend::Simplex { lex_rounds: 2 }) {
            for job in &p.jobs {
                let got: u64 = plan.tasks[&job.id].iter().sum();
                prop_assert_eq!(got, job.demand, "job {} total", job.id);
            }
        }
    }
}
