//! Property-based cross-validation of the two exact solver backends and
//! the simplex itself, plus scale-stratified solver-cost properties on
//! the Lemma 2 interval family.

use flowtime::lp_sched::{backend::plan_peak, rounding, LevelingProblem, PlanJob, SolverBackend};
use flowtime_bench::scaling::{interval_instance, perturbed, perturbed_jobs};
use flowtime_dag::{JobId, ResourceVec};
use flowtime_lp::{Problem, Relation, SimplexOptions};
use proptest::prelude::*;

/// A random feasible leveling instance with uniform task shape; jobs may
/// carry per-slot parallelism caps.
fn leveling_instance() -> impl Strategy<Value = LevelingProblem> {
    let horizon = 4usize..12;
    horizon.prop_flat_map(|h| {
        let job = (
            0..h - 1usize,
            1usize..=6,
            1u64..=30,
            proptest::option::of(2u64..=8),
        )
            .prop_map(move |(start, len, demand, slot_cap)| {
                let end = (start + len).min(h);
                (start.min(end - 1), end, demand, slot_cap)
            });
        proptest::collection::vec(job, 1..6).prop_map(move |jobs| LevelingProblem {
            slot_caps: vec![ResourceVec::new([10, 10_240]); h],
            jobs: jobs
                .into_iter()
                .enumerate()
                .map(|(i, (start, end, demand, slot_cap))| {
                    // Cap demand so the job alone always fits its window.
                    let cap = slot_cap.unwrap_or(10).min(10);
                    let demand = demand.min(cap * (end - start) as u64);
                    PlanJob {
                        id: JobId::new(i as u64),
                        window: (start, end),
                        demand: demand.max(1).min(cap * (end - start) as u64).max(1),
                        per_task: ResourceVec::new([1, 1024]),
                        per_slot_cap: slot_cap,
                    }
                })
                .collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The parametric-flow and simplex backends find the same optimal peak,
    /// and both plans are feasible (Lemma 2 equivalence).
    #[test]
    fn backends_agree_on_min_max_peak(p in leveling_instance()) {
        let total: u64 = p.jobs.iter().map(|j| j.demand).sum();
        let capacity_total = 10 * p.horizon() as u64;
        prop_assume!(total <= capacity_total);
        let flow = p.solve(SolverBackend::ParametricFlow);
        let lp = p.solve(SolverBackend::Simplex { lex_rounds: 1 });
        match (flow, lp) {
            (Ok(f), Ok(l)) => {
                prop_assert!(rounding::is_feasible(&p, &f), "flow plan infeasible");
                prop_assert!(rounding::is_feasible(&p, &l), "lp plan infeasible");
                let pf = plan_peak(&p, &f);
                let pl = plan_peak(&p, &l);
                // Integral peaks on a 10-unit cluster are multiples of 0.1.
                prop_assert!((pf - pl).abs() < 1e-6, "flow {pf} vs lp {pl}");
            }
            (Err(_), Err(_)) => {} // both agree it is infeasible
            (f, l) => prop_assert!(false, "backends disagree on feasibility: {f:?} vs {l:?}"),
        }
    }

    /// Simplex solutions are feasible and never beaten by random feasible
    /// points (one-sided optimality check).
    #[test]
    fn simplex_dominates_random_feasible_points(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        b0 in 1.0f64..20.0, b1 in 1.0f64..20.0,
        a00 in 0.1f64..3.0, a01 in 0.1f64..3.0,
        a10 in 0.1f64..3.0, a11 in 0.1f64..3.0,
        px in 0.0f64..1.0, py in 0.0f64..1.0,
    ) {
        let mut p = Problem::new();
        let x = p.add_var(c0, 0.0, 10.0).unwrap();
        let y = p.add_var(c1, 0.0, 10.0).unwrap();
        p.add_constraint(&[(x, a00), (y, a01)], Relation::Le, b0).unwrap();
        p.add_constraint(&[(x, a10), (y, a11)], Relation::Le, b1).unwrap();
        let sol = p.solve().unwrap(); // origin is feasible, box-bounded: optimal exists
        prop_assert!(p.is_feasible(&sol.x, 1e-6));
        // A random candidate point, scaled into the feasible region.
        let tx = (b0 / a00).min(b1 / a10).min(10.0) * px;
        let ty = ((b0 - a00 * tx).max(0.0) / a01)
            .min((b1 - a10 * tx).max(0.0) / a11)
            .min(10.0)
            * py;
        prop_assert!(p.is_feasible(&[tx, ty], 1e-6));
        prop_assert!(
            sol.objective <= p.objective_at(&[tx, ty]) + 1e-6,
            "candidate beat the 'optimum': {} < {}",
            p.objective_at(&[tx, ty]),
            sol.objective
        );
    }

    /// Warm-started re-solves after RHS and bound tweaks agree with a
    /// fresh cold solve on the objective to 1e-9, and the warm-returned
    /// vertex is feasible for the *tweaked* problem — i.e. the dual-simplex
    /// repair restored basic-variable feasibility, not just optimality.
    #[test]
    fn warm_resolve_matches_cold_after_bound_and_rhs_tweaks(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        b0 in 2.0f64..20.0, b1 in 2.0f64..20.0,
        a00 in 0.1f64..3.0, a01 in 0.1f64..3.0,
        a10 in 0.1f64..3.0, a11 in 0.1f64..3.0,
        db0 in -1.5f64..1.5, db1 in -1.5f64..1.5,
        du0 in -4.0f64..4.0, du1 in -4.0f64..4.0,
    ) {
        let opts = SimplexOptions::default();
        let build = |b0: f64, b1: f64, u0: f64, u1: f64| {
            let mut p = Problem::new();
            let x = p.add_var(c0, 0.0, u0).unwrap();
            let y = p.add_var(c1, 0.0, u1).unwrap();
            p.add_constraint(&[(x, a00), (y, a01)], Relation::Le, b0).unwrap();
            p.add_constraint(&[(x, a10), (y, a11)], Relation::Le, b1).unwrap();
            p
        };
        let base = build(b0, b1, 10.0, 10.0);
        let start = base.solve_warm(&opts, None).unwrap();
        // Tweak both right-hand sides and both upper bounds; the origin
        // stays feasible, so the perturbed LP always has an optimum.
        let tweaked = build(
            (b0 + db0).max(0.5),
            (b1 + db1).max(0.5),
            (10.0 + du0).max(0.5),
            (10.0 + du1).max(0.5),
        );
        let cold = tweaked.solve().unwrap();
        let warm = tweaked.solve_warm(&opts, Some(&start.basis)).unwrap();
        prop_assert!(
            tweaked.is_feasible(&warm.solution.x, 1e-6),
            "warm-returned point violates the tweaked problem"
        );
        let scale = cold.objective.abs().max(1.0);
        prop_assert!(
            (warm.solution.objective - cold.objective).abs() <= 1e-9 * scale,
            "objectives diverged: warm {} vs cold {} (warm_used: {})",
            warm.solution.objective,
            cold.objective,
            warm.warm_used
        );
    }

    /// Structural edits (an added variable) make the exported basis
    /// dimensionally stale; the warm attempt must detect that, fall back to
    /// a cold solve, and still agree with it exactly.
    #[test]
    fn warm_resolve_survives_added_variable(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0, c2 in -5.0f64..5.0,
        b0 in 2.0f64..20.0, b1 in 2.0f64..20.0,
        a00 in 0.1f64..3.0, a01 in 0.1f64..3.0, a02 in 0.1f64..3.0,
        a10 in 0.1f64..3.0, a11 in 0.1f64..3.0, a12 in 0.1f64..3.0,
    ) {
        let opts = SimplexOptions::default();
        let mut base = Problem::new();
        let x = base.add_var(c0, 0.0, 10.0).unwrap();
        let y = base.add_var(c1, 0.0, 10.0).unwrap();
        base.add_constraint(&[(x, a00), (y, a01)], Relation::Le, b0).unwrap();
        base.add_constraint(&[(x, a10), (y, a11)], Relation::Le, b1).unwrap();
        let start = base.solve_warm(&opts, None).unwrap();

        let mut grown = Problem::new();
        let x = grown.add_var(c0, 0.0, 10.0).unwrap();
        let y = grown.add_var(c1, 0.0, 10.0).unwrap();
        let z = grown.add_var(c2, 0.0, 10.0).unwrap();
        grown.add_constraint(&[(x, a00), (y, a01), (z, a02)], Relation::Le, b0).unwrap();
        grown.add_constraint(&[(x, a10), (y, a11), (z, a12)], Relation::Le, b1).unwrap();
        let cold = grown.solve().unwrap();
        let warm = grown.solve_warm(&opts, Some(&start.basis)).unwrap();
        prop_assert!(!warm.warm_used, "stale basis must not be adopted");
        prop_assert!(grown.is_feasible(&warm.solution.x, 1e-6));
        prop_assert!(
            (warm.solution.objective - cold.objective).abs() <= 1e-9 * cold.objective.abs().max(1.0)
        );
    }

    /// Rounding preserves totals and feasibility for fractional inputs.
    #[test]
    fn rounding_preserves_demands(p in leveling_instance()) {
        let total: u64 = p.jobs.iter().map(|j| j.demand).sum();
        prop_assume!(total <= 10 * p.horizon() as u64);
        if let Ok(plan) = p.solve(SolverBackend::Simplex { lex_rounds: 2 }) {
            for job in &p.jobs {
                let got: u64 = plan.tasks[&job.id].iter().sum();
                prop_assert_eq!(got, job.demand, "job {} total", job.id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scale-stratified solver-cost properties (n ∈ {10, 100, 1000}).
//
// These assert *deterministic work counters* (`Solution::work`: tableau
// cells touched on the dense engine, nonzeros priced/factored/solved on
// the sparse engine), never wall-clock, so they are stable under machine
// load and debug builds.
// ---------------------------------------------------------------------

const SCALES: [usize; 3] = [10, 100, 1000];
const FAMILY_SEED: u64 = 0x5ca1e;

/// Warm-resolving after an RHS perturbation stays within a pivot budget
/// that does NOT grow with instance size: dual-simplex repair touches the
/// handful of rows whose demand moved, independent of n.
#[test]
fn warm_resolve_pivots_stay_within_budget_across_scales() {
    let opts = SimplexOptions::default();
    for jobs in SCALES {
        let base = interval_instance(jobs, FAMILY_SEED);
        let start = base.problem.solve_warm(&opts, None).expect("feasible");
        let mut basis = start.basis;
        let cold_iters = start.solution.iterations;
        for step in 0..3u64 {
            let replan = perturbed(&base, step + 1, FAMILY_SEED);
            let res = replan
                .problem
                .solve_warm(&opts, Some(&basis))
                .expect("feasible replan");
            assert!(res.warm_used, "{jobs} jobs step {step}: fell back cold");
            // Budget: a warm replan is pivot-cheap relative to the cold
            // solve it replaces — and absolutely bounded.
            assert!(
                res.solution.iterations <= cold_iters / 4 + 50,
                "{jobs} jobs step {step}: {} pivots vs cold {cold_iters}",
                res.solution.iterations
            );
            basis = res.basis;
        }
    }
}

/// Warm-resolve *work* under bounded drift is sub-quadratic in n: when a
/// constant number of demands move between replans (a handful of
/// completions, regardless of fleet size), each 10× size step may grow
/// per-replan work by well under 100× (the quadratic rate). Cold solves
/// carry a Θ(n²) full-pricing floor, and proportional drift (every
/// demand moves, as in [`perturbed`]) is quadratic too — the bounded-
/// drift warm path is the hot path this bound protects (EXPERIMENTS.md).
#[test]
fn sparse_warm_resolve_work_is_subquadratic_in_n() {
    let opts = SimplexOptions::default();
    let mut per_scale = Vec::new();
    for jobs in SCALES {
        let base = interval_instance(jobs, FAMILY_SEED);
        let start = base.problem.solve_warm(&opts, None).expect("feasible");
        let mut basis = start.basis;
        let mut work = 0u64;
        for step in 0..3u64 {
            let replan = perturbed_jobs(&base, step + 1, FAMILY_SEED, 4);
            let res = replan
                .problem
                .solve_warm(&opts, Some(&basis))
                .expect("feasible replan");
            assert!(res.warm_used);
            work += res.solution.work;
            basis = res.basis;
        }
        per_scale.push(work.max(1));
    }
    for (small, big) in per_scale.iter().zip(per_scale.iter().skip(1)) {
        let ratio = *big as f64 / *small as f64;
        assert!(
            ratio < 60.0,
            "10x jobs grew warm work {ratio:.1}x (quadratic would be 100x): {per_scale:?}"
        );
    }
}

/// At scale, a cold solve on the sparse engine does far less arithmetic
/// than the dense tableau: the dense engine touches m×width cells every
/// pivot, the sparse engine only nonzeros. Asserted at n = 100 (the dense
/// engine is too slow to run at 1000 in a unit test — that datapoint
/// lives in `results/fig_scaling.json`).
#[test]
fn sparse_cold_work_beats_dense_at_scale() {
    use flowtime_lp::SimplexEngine;
    let inst = interval_instance(100, FAMILY_SEED);
    let solve = |engine| {
        let o = SimplexOptions {
            engine: Some(engine),
            ..SimplexOptions::default()
        };
        inst.problem.solve_with(&o).expect("feasible").work
    };
    let sparse = solve(SimplexEngine::Sparse);
    let dense = solve(SimplexEngine::Dense);
    assert!(
        sparse * 5 <= dense,
        "sparse work {sparse} not ≥5x below dense {dense}"
    );
}
