//! Crash-consistency property suite for the `flowtimed` write-ahead
//! log: kill-9 at seeded points (request boundaries, mid-WAL-append,
//! mid-snapshot) followed by recovery must drain to a `SimOutcome` and
//! decision trace byte-identical to the uncrashed run, auditor-
//! certified, with zero duplicate jobs under client retries; torn or
//! corrupt tails truncate at the last checksum-valid record with a
//! typed report, never a panic; disk-full is a typed rejection that
//! leaves the session consistent.

mod daemon_util;

use daemon_util::{
    adhoc_line, drain, loopback, loopback_wal, ok, session_config, trace_bytes, wal_config,
    wal_dir, workflow_line, TRACE_CAPACITY,
};
use flowtime_bench::experiments::{faulted_instance, testbed_cluster, WorkflowExperiment};
use flowtime_daemon::{wal, DiskFaultPlan, FaultKind, FsyncPolicy, Loopback, Session, WalError};
use flowtime_sim::{certify_log, ClusterConfig, Engine, FaultConfig};
use std::fs;
use std::path::Path;

/// A scripted request sequence over a faulted instance: workflows, then
/// arrival-sorted ad-hoc jobs with a mid-stream tick and one cancel.
/// Submits carry idempotency keys (`tag-N`) so retries can be deduped.
fn scripted(seed: u64, tag: &str) -> (ClusterConfig, Vec<String>) {
    let cluster = testbed_cluster();
    let (workload, faulted_cluster) = faulted_instance(
        &WorkflowExperiment {
            workflows: 2,
            jobs_per_workflow: 5,
            adhoc_horizon: 50,
            seed,
            ..Default::default()
        },
        &cluster,
        FaultConfig::mixed(seed),
    );
    let mut lines = Vec::new();
    for (i, sub) in workload.workflows.iter().enumerate() {
        lines.push(with_request_id(&workflow_line(sub), &format!("{tag}-w{i}")));
    }
    let mut adhoc = workload.adhoc.clone();
    adhoc.sort_by_key(|s| s.arrival_slot);
    for (i, sub) in adhoc.iter().enumerate() {
        if i == adhoc.len() / 2 {
            lines.push("{\"req\":\"tick\",\"to\":12}".to_string());
        }
        lines.push(with_request_id(&adhoc_line(sub), &format!("{tag}-a{i}")));
        if i == adhoc.len() / 2 + 2 {
            let seq = workload.workflows.len() + i - 1;
            lines.push(format!("{{\"req\":\"cancel\",\"sub\":{seq}}}"));
        }
    }
    (faulted_cluster, lines)
}

/// Splices a `request_id` field into a rendered submit line.
fn with_request_id(line: &str, rid: &str) -> String {
    let spliced = line.replacen(
        ",\"submission\":",
        &format!(",\"request_id\":\"{rid}\",\"submission\":"),
        1,
    );
    assert_ne!(spliced, line, "submit lines carry a submission field");
    spliced
}

/// True for lines that carry an idempotency key (the submits).
fn has_request_id(line: &str) -> bool {
    line.contains("\"request_id\":")
}

/// Asserts a response is the typed `duplicate` reply and returns the
/// original sequence number from its `data` payload.
fn assert_duplicate(response: &str) -> u64 {
    let v = serde_json::parse(response).expect("response is JSON");
    let err = v.get("err").unwrap_or_else(|| {
        panic!("expected duplicate error, got: {response}");
    });
    assert_eq!(
        err.get("code").and_then(serde_json::Value::as_str),
        Some("duplicate"),
        "expected duplicate, got: {response}"
    );
    match err.get("data").and_then(|d| d.get("sub")) {
        Some(serde_json::Value::U64(n)) => *n,
        other => panic!("duplicate reply must carry data.sub, got {other:?}"),
    }
}

/// Drives the full uncrashed run (no WAL) and returns the expected
/// artifacts.
fn uncrashed(
    cluster: &ClusterConfig,
    scheduler: &str,
    lines: &[String],
) -> (String, String, flowtime_sim::SubmissionLog) {
    let mut lb = loopback(cluster.clone(), scheduler);
    for line in lines {
        let r = lb.request_line(line);
        assert!(
            !r.contains("engine-error"),
            "unexpected engine error for {line}: {r}"
        );
    }
    let log = lb.session().log().clone();
    let (bytes, _, trace) = drain(lb);
    (bytes, trace_bytes(&trace), log)
}

/// The tentpole property: kill-9 at every seeded crash point — request
/// boundaries and a torn mid-append tail — then recover, retry the
/// already-acknowledged submissions (client retry-with-backoff), send
/// the rest, and drain. The outcome and decision trace must be
/// byte-identical to the uncrashed run, auditor-certified, with every
/// retry answered `duplicate` (zero duplicate jobs).
#[test]
fn kill9_recovery_is_byte_identical_over_corpus() {
    for seed in [0u64, 1] {
        for scheduler in ["flowtime", "edf"] {
            let tag = format!("c{seed}{scheduler}");
            let (cluster, lines) = scripted(seed, &tag);
            let (expect_bytes, expect_trace, expect_log) = uncrashed(&cluster, scheduler, &lines);

            for (point, kill_at) in [lines.len() / 3, 2 * lines.len() / 3]
                .into_iter()
                .enumerate()
            {
                for torn_tail in [false, true] {
                    let dir = wal_dir(&format!("corpus-{tag}-{point}-{torn_tail}"));
                    // Live session up to the kill point, fully synced.
                    let mut lb = loopback_wal(
                        cluster.clone(),
                        scheduler,
                        0,
                        &dir,
                        FsyncPolicy::Always,
                        None,
                    );
                    for line in &lines[..kill_at] {
                        let r = lb.request_line(line);
                        assert!(r.starts_with("{\"ok\":"), "accept failed for {line}: {r}");
                    }
                    drop(lb); // kill -9: no drain, no shutdown, state gone.

                    if torn_tail {
                        // The crash landed mid-append: a torn, unacknowledged
                        // record sits past the last valid one.
                        append_torn_frame(&dir);
                    }

                    // Restart: recover the session from the directory.
                    let (session, report) = Session::recover(
                        session_config(cluster.clone(), scheduler, 0),
                        wal_config(&dir, FsyncPolicy::Always),
                        None,
                    )
                    .expect("recovery succeeds");
                    assert_eq!(
                        report.tail.is_some(),
                        torn_tail,
                        "tail truncation reported iff the tail was torn"
                    );
                    let mut resumed = Loopback::new(session);

                    // Client retry harness: resend every acknowledged
                    // submission; each must dedup, none may double-accept.
                    for line in lines[..kill_at].iter().filter(|l| has_request_id(l)) {
                        let r = resumed.request_line(line);
                        assert_duplicate(&r);
                    }
                    for line in &lines[kill_at..] {
                        let r = resumed.request_line(line);
                        assert!(r.starts_with("{\"ok\":"), "resume failed for {line}: {r}");
                    }
                    let log = resumed.session().log().clone();
                    assert_eq!(
                        serde_json::to_string(&log).unwrap(),
                        serde_json::to_string(&expect_log).unwrap(),
                        "recovered log diverges ({tag} kill {kill_at} torn {torn_tail})"
                    );
                    let (bytes, outcome, trace) = drain(resumed);
                    assert_eq!(
                        bytes, expect_bytes,
                        "outcome bytes diverge ({tag} kill {kill_at} torn {torn_tail})"
                    );
                    assert_eq!(
                        trace_bytes(&trace),
                        expect_trace,
                        "decision trace diverges ({tag} kill {kill_at} torn {torn_tail})"
                    );
                    let report = certify_log(&cluster, &log, &outcome, &trace);
                    assert!(
                        report.is_certified(),
                        "recovered outcome not certified: {:?}",
                        report.violations
                    );
                    let _ = fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

/// Appends a torn (length-valid but truncated) frame to the newest WAL
/// segment — the exact bytes a crash mid-`write` leaves behind.
fn append_torn_frame(dir: &Path) {
    let mut segments: Vec<_> = fs::read_dir(dir)
        .expect("wal dir exists")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name().into_string().ok()?;
            name.strip_prefix("wal-")?.strip_suffix(".log")?;
            Some(name)
        })
        .collect();
    segments.sort();
    let last = dir.join(segments.last().expect("at least one segment"));
    let mut bytes = fs::read(&last).expect("segment reads");
    bytes.extend_from_slice(b"512 00000000deadbeef {\"Tick\":{\"to\":9");
    fs::write(&last, bytes).expect("torn tail written");
}

/// Under `batch:N` fsync a crash that loses the unsynced tail (power
/// loss) still recovers to a consistent prefix: the recovered log is a
/// strict prefix of the uncrashed log, and the drained outcome is
/// byte-identical to a batch `Engine::from_log` replay of that prefix,
/// certified.
#[test]
fn batch_fsync_crash_recovers_to_certified_prefix() {
    let (cluster, lines) = scripted(2, "batch");
    let (_, _, full_log) = uncrashed(&cluster, "flowtime", &lines);
    let dir = wal_dir("batch-fsync");

    // Crash mid-run with the unsynced tail lost (the power-loss model).
    let plan = DiskFaultPlan::single(
        6_000,
        FaultKind::Crash {
            keep: 0,
            lose_unsynced: true,
        },
    );
    let mut lb = loopback_wal(
        cluster.clone(),
        "flowtime",
        0,
        &dir,
        FsyncPolicy::Batch(4),
        Some(plan),
    );
    let mut accepted = 0usize;
    let mut crashed = false;
    for line in &lines {
        let r = lb.request_line(line);
        if r.starts_with("{\"ok\":") {
            accepted += 1;
        } else {
            assert!(
                r.contains("wal-io"),
                "post-crash mutations must be typed wal-io: {r}"
            );
            crashed = true;
            break;
        }
    }
    assert!(crashed, "the planned crash must fire");
    assert!(accepted > 0, "some requests must land before the crash");
    drop(lb);

    let (session, _report) = Session::recover(
        session_config(cluster.clone(), "flowtime", 0),
        wal_config(&dir, FsyncPolicy::Batch(4)),
        None,
    )
    .expect("recovery succeeds after lost unsynced tail");
    let recovered_log = session.log().clone();
    assert!(
        recovered_log.entries.len() <= full_log.entries.len(),
        "recovered log cannot exceed the full log"
    );
    let full_json = serde_json::to_string(&full_log).unwrap();
    let rec_json = serde_json::to_string(&recovered_log).unwrap();
    assert!(
        full_json.starts_with(&rec_json[..rec_json.len() - 2]),
        "recovered log must be a prefix of the uncrashed log"
    );

    // The recovered session drains byte-identically to a batch replay of
    // the recovered (prefix) log.
    let (bytes, outcome, trace) = drain(Loopback::new(session));
    let mut scheduler = flowtime_bench::experiments::Algo::FlowTime.make(&cluster);
    let (engine, handle) = Engine::from_log(cluster.clone(), &recovered_log, 1_000_000)
        .expect("prefix log replays")
        .with_trace(TRACE_CAPACITY as usize);
    let batch_outcome = engine.run(scheduler.as_mut()).expect("batch run succeeds");
    assert_eq!(
        bytes,
        serde_json::to_string(&batch_outcome).unwrap(),
        "recovered prefix outcome diverges from batch replay"
    );
    assert_eq!(trace_bytes(&trace), trace_bytes(&handle.take()));
    let report = certify_log(&cluster, &recovered_log, &outcome, &trace);
    assert!(report.is_certified(), "{:?}", report.violations);
    let _ = fs::remove_dir_all(&dir);
}

/// Idempotency keys dedup live, across a snapshot, and across
/// restart-replay; the `duplicate` reply always carries the original
/// sequence number.
#[test]
fn request_ids_dedup_across_snapshot_and_restart() {
    let (cluster, lines) = scripted(3, "dedup");
    let dir = wal_dir("dedup");
    let mut lb = loopback_wal(cluster.clone(), "edf", 0, &dir, FsyncPolicy::Always, None);

    let submits: Vec<&String> = lines.iter().filter(|l| has_request_id(l)).collect();
    let first = submits[0];
    let r = lb.request_line(first);
    assert!(r.starts_with("{\"ok\":"), "{r}");

    // Live dedup.
    assert_eq!(assert_duplicate(&lb.request_line(first)), 0);

    // Snapshot (a WAL compaction point), then more submissions.
    ok(&mut lb, "{\"req\":\"snapshot\"}");
    let second = submits[1];
    let r = lb.request_line(second);
    assert!(r.starts_with("{\"ok\":"), "{r}");

    // Dedup across the snapshot boundary.
    assert_eq!(assert_duplicate(&lb.request_line(first)), 0);
    drop(lb); // kill -9

    // Dedup across restart-replay: keys from before AND after the
    // snapshot both survive (one came from the snapshot body, one from
    // the WAL tail).
    let mut resumed = loopback_wal(cluster, "edf", 0, &dir, FsyncPolicy::Always, None);
    assert_eq!(assert_duplicate(&resumed.request_line(first)), 0);
    assert_eq!(assert_duplicate(&resumed.request_line(second)), 1);
    assert_eq!(resumed.session().request_ids().len(), 2);
    let _ = fs::remove_dir_all(&dir);
}

/// Snapshot retention: with `keep_snapshots = 2`, older snapshots and
/// the segments they cover are pruned — but only after the newest
/// snapshot passes its checksum self-check — and recovery still works
/// from what remains.
#[test]
fn snapshot_retention_prunes_old_generations() {
    let (cluster, lines) = scripted(4, "retain");
    let dir = wal_dir("retention");
    let mut config = wal_config(&dir, FsyncPolicy::Always);
    config.keep_snapshots = 2;
    let (session, _) = Session::recover(session_config(cluster.clone(), "edf", 0), config, None)
        .expect("fresh wal");
    let mut lb = Loopback::new(session);

    let mut snapshots_taken = 0;
    for (i, line) in lines.iter().enumerate() {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
        if i % 3 == 2 {
            ok(&mut lb, "{\"req\":\"snapshot\"}");
            snapshots_taken += 1;
        }
    }
    assert!(snapshots_taken >= 4, "need several generations to prune");

    let (segments, snaps) = list_dir(&dir);
    assert_eq!(snaps.len(), 2, "exactly keep_snapshots generations remain");
    // Every surviving segment is >= the oldest retained snapshot's
    // coverage point (sealed history below it was pruned).
    let oldest_snap = snaps[0];
    assert!(
        segments.iter().all(|&s| s >= oldest_snap),
        "segments {segments:?} must not predate snapshot {oldest_snap}"
    );

    // What remains is a complete recovery line.
    let expect_log = serde_json::to_string(lb.session().log()).unwrap();
    drop(lb);
    let (session, report) = Session::recover(
        session_config(cluster, "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("recovery after pruning");
    assert!(report.snapshot.is_some(), "recovery used a snapshot");
    assert_eq!(serde_json::to_string(session.log()).unwrap(), expect_log);
    let _ = fs::remove_dir_all(&dir);
}

/// A crash mid-snapshot (inside the snapshot tmp-file write) fails the
/// `snapshot` request but never loses the session: recovery falls back
/// to the previous recovery line and replays the full WAL tail.
#[test]
fn crash_mid_snapshot_recovers_from_previous_line() {
    let (cluster, lines) = scripted(5, "midsnap");
    let dir = wal_dir("mid-snapshot");
    let (expect_bytes, expect_trace, _) = uncrashed(&cluster, "flowtime", &lines);

    // Arm a crash far enough into the byte stream to land inside the
    // snapshot render (appends are small; the snapshot body is not).
    let mut lb = loopback_wal(
        cluster.clone(),
        "flowtime",
        0,
        &dir,
        FsyncPolicy::Always,
        None,
    );
    let mut fed = 0usize;
    for line in &lines[..lines.len() / 2] {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
        fed += 1;
    }
    // Re-create the session against the same dir is not allowed (create
    // refuses); instead crash the snapshot through a faulted *new* dir:
    // replay the same prefix under a plan whose crash offset sits inside
    // the snapshot write, then take the snapshot.
    drop(lb);
    let faulted_dir = wal_dir("mid-snapshot-faulted");
    let appended: u64 = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    let plan = DiskFaultPlan::single(
        appended + 512, // inside the snapshot tmp write, past all appends
        FaultKind::Crash {
            keep: 64,
            lose_unsynced: false,
        },
    );
    let mut lb = loopback_wal(
        cluster.clone(),
        "flowtime",
        0,
        &faulted_dir,
        FsyncPolicy::Always,
        Some(plan),
    );
    for line in &lines[..fed] {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    let r = lb.request_line("{\"req\":\"snapshot\"}");
    assert!(
        r.contains("wal-io") || r.contains("snapshot-io"),
        "mid-snapshot crash must be a typed error: {r}"
    );
    drop(lb); // kill -9 while the tmp file is torn on disk

    let (session, report) = Session::recover(
        session_config(cluster.clone(), "flowtime", 0),
        wal_config(&faulted_dir, FsyncPolicy::Always),
        None,
    )
    .expect("recovery after mid-snapshot crash");
    assert!(
        report.snapshot.is_none(),
        "no completed snapshot exists; recovery replays from genesis"
    );
    let mut resumed = Loopback::new(session);
    for line in &lines[fed..] {
        let r = resumed.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    let (bytes, _, trace) = drain(resumed);
    assert_eq!(bytes, expect_bytes);
    assert_eq!(trace_bytes(&trace), expect_trace);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&faulted_dir);
}

/// Corruption of *sealed* history (a non-final segment) is a typed
/// `WalError::Corrupt` — recovery refuses to silently truncate records
/// that were covered by later, intact segments.
#[test]
fn corrupt_sealed_segment_is_a_typed_error_never_a_panic() {
    let (cluster, lines) = scripted(6, "sealed");
    let dir = wal_dir("sealed-corrupt");
    let mut config = wal_config(&dir, FsyncPolicy::Always);
    config.segment_max_records = 4; // force several sealed segments
    let (session, _) =
        Session::recover(session_config(cluster.clone(), "edf", 0), config, None).unwrap();
    let mut lb = Loopback::new(session);
    for line in &lines {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    drop(lb);

    let (segments, _) = list_dir(&dir);
    assert!(segments.len() >= 3, "need sealed history: {segments:?}");
    // Flip a byte inside the *first* (sealed) segment's records.
    let victim = dir.join(format!("wal-{:06}.log", segments[0]));
    let mut bytes = fs::read(&victim).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x20;
    fs::write(&victim, bytes).unwrap();

    let err = wal::recover_dir(&wal_config(&dir, FsyncPolicy::Always), None)
        .err()
        .expect("sealed corruption must fail recovery");
    assert!(
        matches!(err, WalError::Corrupt { .. }),
        "expected WalError::Corrupt, got {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Disk-full is a typed `wal-io` rejection: the request is not
/// acknowledged, session state is untouched, and later appends (space
/// freed) succeed — the drained outcome matches a run that never saw
/// the rejected request.
#[test]
fn disk_full_is_typed_and_leaves_state_consistent() {
    let (cluster, lines) = scripted(7, "enospc");
    let dir = wal_dir("disk-full");
    let plan = DiskFaultPlan::single(2_000, FaultKind::DiskFull);
    let mut lb = loopback_wal(
        cluster.clone(),
        "flowtime",
        0,
        &dir,
        FsyncPolicy::Always,
        Some(plan),
    );
    let mut accepted_lines = Vec::new();
    let mut rejected = 0usize;
    for line in &lines {
        let r = lb.request_line(line);
        if r.starts_with("{\"ok\":") {
            accepted_lines.push(line.clone());
        } else {
            assert!(r.contains("wal-io"), "disk full must be typed wal-io: {r}");
            rejected += 1;
        }
    }
    assert_eq!(rejected, 1, "exactly the planned fault rejects");
    assert!(accepted_lines.len() == lines.len() - 1);
    let (bytes, _, trace) = drain(lb);

    // A clean run over only the accepted lines is byte-identical.
    let (expect_bytes, expect_trace, _) = uncrashed(&cluster, "flowtime", &accepted_lines);
    assert_eq!(bytes, expect_bytes);
    assert_eq!(trace_bytes(&trace), expect_trace);
    let _ = fs::remove_dir_all(&dir);
}

/// A session drained before the crash recovers *drained*: the outcome
/// endpoint serves the identical bytes after restart.
#[test]
fn drained_session_recovers_drained() {
    let (cluster, lines) = scripted(8, "drained");
    let dir = wal_dir("drained");
    let mut lb = loopback_wal(cluster.clone(), "edf", 0, &dir, FsyncPolicy::Always, None);
    for line in &lines {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    ok(&mut lb, "{\"req\":\"drain\"}");
    let expect = lb.session().outcome_json().unwrap().to_string();
    drop(lb); // kill -9 after drain

    let (session, _) = Session::recover(
        session_config(cluster, "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("drained session recovers");
    assert!(session.drained(), "the Drain record must replay");
    assert_eq!(session.outcome_json().unwrap(), expect);
    let _ = fs::remove_dir_all(&dir);
}

/// A crash *between* the snapshot-file write and the rotate leaves a
/// snapshot naming a `wal_segment` that was never created. Recovery
/// must not skip that number: two restarts later the directory must
/// still be a complete recovery line with the drained outcome
/// byte-identical to the uncrashed run (the unfixed numbering left a
/// permanent segment hole that failed the second restart with
/// `segment ... is missing from the replay range`).
#[test]
fn snapshot_crash_before_rotate_never_leaves_a_segment_hole() {
    let (cluster, lines) = scripted(9, "hole");
    let (expect_bytes, expect_trace, _) = uncrashed(&cluster, "edf", &lines);
    let dir = wal_dir("snapshot-hole");
    let mid = lines.len() / 2;
    let mut lb = loopback_wal(cluster.clone(), "edf", 0, &dir, FsyncPolicy::Always, None);
    for line in &lines[..mid] {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    ok(&mut lb, "{\"req\":\"snapshot\"}");
    drop(lb); // kill -9
    // Reconstruct the crash window: snap-000001 says wal_segment=2,
    // but segment 2 was never created.
    let (_, snaps) = list_dir(&dir);
    assert_eq!(snaps, vec![1], "one snapshot generation on disk");
    fs::remove_file(dir.join("wal-000002.log")).expect("rotated segment existed");

    // Restart #1 must open segment 2, not skip to 3.
    let (session, report) = Session::recover(
        session_config(cluster.clone(), "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("first recovery succeeds");
    assert!(report.snapshot.is_some(), "the snapshot is still usable");
    let mut resumed = Loopback::new(session);
    for line in &lines[mid..] {
        let r = resumed.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    drop(resumed); // kill -9 again

    // Restart #2: every acknowledged record must still be recoverable.
    let (session, _) = Session::recover(
        session_config(cluster, "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("second recovery succeeds — no segment hole");
    let (bytes, _, trace) = drain(Loopback::new(session));
    assert_eq!(bytes, expect_bytes);
    assert_eq!(trace_bytes(&trace), expect_trace);
    let _ = fs::remove_dir_all(&dir);
}

/// A crash during the next segment's *header* write leaves a file with
/// no valid prefix. Recovery deletes it and reuses the number; the
/// second restart must not classify the remnant as sealed-history
/// corruption (the unfixed path truncated it to an empty file that
/// made the next startup fail with `WalError::Corrupt`).
#[test]
fn torn_segment_header_survives_two_restarts() {
    let (cluster, lines) = scripted(10, "tornhdr");
    let (expect_bytes, expect_trace, _) = uncrashed(&cluster, "edf", &lines);
    let dir = wal_dir("torn-header");
    let mid = lines.len() / 2;
    let mut lb = loopback_wal(cluster.clone(), "edf", 0, &dir, FsyncPolicy::Always, None);
    for line in &lines[..mid] {
        let r = lb.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    drop(lb); // kill -9
    // A rotation crashed mid-header-write.
    fs::write(dir.join("wal-000002.log"), b"flowtime-w").unwrap();

    let (session, report) = Session::recover(
        session_config(cluster.clone(), "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("first recovery tolerates the torn header");
    let t = report.tail.expect("torn header reported as a truncation");
    assert_eq!((t.segment, t.offset), (2, 0));
    let mut resumed = Loopback::new(session);
    for line in &lines[mid..] {
        let r = resumed.request_line(line);
        assert!(r.starts_with("{\"ok\":"), "{r}");
    }
    drop(resumed); // kill -9 again

    let (session, report) = Session::recover(
        session_config(cluster, "edf", 0),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("second recovery succeeds — the remnant is not sealed corruption");
    assert!(report.tail.is_none(), "clean shutdownless restart, no defect");
    let (bytes, _, trace) = drain(Loopback::new(session));
    assert_eq!(bytes, expect_bytes);
    assert_eq!(trace_bytes(&trace), expect_trace);
    let _ = fs::remove_dir_all(&dir);
}

/// Lists `(segments, snapshots)` by number, ascending.
fn list_dir(dir: &Path) -> (Vec<u64>, Vec<u64>) {
    let mut segments = Vec::new();
    let mut snaps = Vec::new();
    for e in fs::read_dir(dir).expect("dir exists") {
        let name = e.expect("entry").file_name().into_string().expect("utf-8");
        if let Some(n) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
        {
            segments.push(n.parse().unwrap());
        } else if let Some(n) = name
            .strip_prefix("snap-")
            .and_then(|r| r.strip_suffix(".snap"))
        {
            snaps.push(n.parse().unwrap());
        }
    }
    segments.sort_unstable();
    snaps.sort_unstable();
    (segments, snaps)
}
