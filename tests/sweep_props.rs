//! Determinism property suite for the sweep runner: a parallel sweep must
//! serialize byte-for-byte identically to the sequential reference for any
//! thread count, across fault seeds and every scheduler — the contract that
//! makes `--threads N` purely a wall-clock knob. A committed golden report
//! additionally pins the `SweepReport` schema.

use flowtime_bench::experiments::{testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::sweep::{SweepScenario, SweepSpec};
use proptest::prelude::*;

/// Small-but-contended base: 2 scientific workflows (10 deadline jobs)
/// plus an ad-hoc stream, on the paper's testbed cluster. Small enough
/// that a whole grid stays cheap, busy enough that schedulers disagree.
fn tiny_experiment() -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 5,
        adhoc_horizon: 40,
        ..Default::default()
    }
}

fn spec(schedulers: Vec<Algo>, fault_seeds: Vec<u64>, scenarios: Vec<SweepScenario>) -> SweepSpec {
    SweepSpec {
        base: tiny_experiment(),
        cluster: testbed_cluster(),
        scenarios,
        schedulers,
        fault_seeds,
        audit: false,
        shard: None,
    }
}

fn report_bytes(spec: &SweepSpec, threads: usize) -> String {
    serde_json::to_string_pretty(&spec.run(threads).report).expect("report serializes")
}

/// The headline property, on the full scheduler axis: all six algorithms ×
/// mixed faults × two fault seeds, swept sequentially and with 2 and 8
/// worker threads. Every serialized report must be byte-identical.
#[test]
fn sweep_report_is_byte_identical_across_thread_counts_for_all_six_schedulers() {
    let spec = spec(
        Algo::FIG4.to_vec(),
        vec![0, 1],
        vec![SweepScenario::mixed_faults()],
    );
    let sequential = report_bytes(&spec, 1);
    for threads in [2usize, 8] {
        assert_eq!(
            report_bytes(&spec, threads),
            sequential,
            "sweep diverged at {threads} threads"
        );
    }
}

/// Multi-scenario grids reduce in the same canonical order too: clean and
/// mixed-fault scenarios interleave their cells identically for any thread
/// count, and the clean scenario is itself reproducible cell-by-cell.
#[test]
fn multi_scenario_sweep_is_thread_count_invariant() {
    let spec = spec(
        vec![Algo::FlowTime, Algo::Fifo],
        vec![0, 1, 2],
        vec![SweepScenario::clean(), SweepScenario::mixed_faults()],
    );
    let sequential = report_bytes(&spec, 1);
    assert_eq!(report_bytes(&spec, 8), sequential);
    // Cells arrive scenario-major: first all clean rows, then all mixed.
    let run = spec.run(4);
    assert_eq!(run.cells, 12);
    assert!(run.report.cells[..6].iter().all(|c| c.scenario == "clean"));
    assert!(run.report.cells[6..]
        .iter()
        .all(|c| c.scenario == "mixed-faults"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random slices of the grid at random thread counts: any pair of
    /// schedulers, any seed window, any worker count up to 8 must match
    /// the sequential reference byte-for-byte.
    #[test]
    fn random_grid_slices_match_sequential_reference(
        threads in 2usize..=8,
        seed_base in 0u64..50,
        a in 0usize..Algo::FIG4.len(),
        b in 0usize..Algo::FIG4.len(),
    ) {
        let spec = spec(
            vec![Algo::FIG4[a], Algo::FIG4[b]],
            vec![seed_base, seed_base + 1],
            vec![SweepScenario::mixed_faults()],
        );
        prop_assert_eq!(report_bytes(&spec, threads), report_bytes(&spec, 1));
    }
}

/// The fixed grid behind the committed golden report: 3 schedulers × 4
/// fault seeds × mixed faults.
fn golden_spec() -> SweepSpec {
    spec(
        vec![Algo::FlowTime, Algo::Edf, Algo::Fifo],
        vec![0, 1, 2, 3],
        vec![SweepScenario::mixed_faults()],
    )
}

/// Committed golden file for the serialized [`SweepReport`]: any change to
/// the report schema, the cell ordering, the rollup math, or the
/// simulation itself shows up as a diff against
/// `tests/golden/sweep_report.json`. Regenerate after intentional changes:
///
/// `GOLDEN_REGEN=1 cargo test --test sweep_props golden`
#[test]
fn golden_sweep_report_is_stable() {
    let serialized = report_bytes(&golden_spec(), 2);
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sweep_report.json");
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &serialized).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        serialized, golden,
        "serialized SweepReport diverged from tests/golden/sweep_report.json; \
         if intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// Schema stability, independent of exact values: the golden report parses
/// as JSON with every contracted top-level and per-row field present, the
/// axes multiply out to the cell count, and no wall-clock quantity leaks
/// into the serialized form.
#[test]
fn golden_sweep_report_schema_is_stable() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/sweep_report.json");
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    let v: serde_json::Value = serde_json::from_str(&golden).expect("golden parses as JSON");
    for key in [
        "experiment",
        "scenarios",
        "schedulers",
        "fault_seeds",
        "cells",
        "rollups",
    ] {
        assert!(v.get(key).is_some(), "report lost top-level field `{key}`");
    }
    let schedulers = v.get("schedulers").unwrap().as_seq().unwrap();
    let fault_seeds = v.get("fault_seeds").unwrap().as_seq().unwrap();
    let scenarios = v.get("scenarios").unwrap().as_seq().unwrap();
    let cells = v.get("cells").unwrap().as_seq().unwrap();
    let rollups = v.get("rollups").unwrap().as_seq().unwrap();
    assert_eq!(
        cells.len(),
        schedulers.len() * fault_seeds.len() * scenarios.len(),
        "cell count must be the product of the axes"
    );
    assert_eq!(rollups.len(), schedulers.len() * scenarios.len());
    for cell in cells {
        for key in [
            "scenario",
            "algo",
            "fault_seed",
            "completed_jobs",
            "deadline_jobs",
            "job_misses",
            "workflow_misses",
            "adhoc_turnaround_s",
            "slots_elapsed",
            "overrun_slots",
        ] {
            assert!(cell.get(key).is_some(), "cell row lost field `{key}`");
        }
    }
    for rollup in rollups {
        for key in [
            "scenario",
            "algo",
            "cells",
            "deadline_jobs",
            "job_misses",
            "deadline_miss_rate",
            "workflow_misses",
            "adhoc_p50_s",
            "adhoc_p90_s",
            "adhoc_p99_s",
            "solver_telemetry",
            "engine_telemetry",
            "overrun_slots",
            "top_overrun_node",
        ] {
            assert!(rollup.get(key).is_some(), "rollup lost field `{key}`");
        }
    }
    assert!(
        !golden.contains("wall"),
        "wall-clock values must never appear in a serialized SweepReport"
    );
}
