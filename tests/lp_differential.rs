//! Differential-oracle suite for the two LP engines.
//!
//! The sparse revised simplex (production engine) is checked against the
//! dense tableau oracle on three levels:
//!
//! 1. **Raw LPs** — a proptest corpus of random feasible / infeasible /
//!    unbounded / degenerate instances where both engines must agree on
//!    the result kind, on the objective to 1e-9, and return feasible
//!    optimal vertices.
//! 2. **Plans** — replayed warm-start replan sequences on the Lemma 2
//!    interval family, where the *rounded* allocations (what the scheduler
//!    consumes) must be identical across engines, step by step.
//! 3. **Simulations** — the golden-scenario triple and the fault-seed
//!    corpus from `tests/differential.rs`, where every scheduler's
//!    serialized [`SimOutcome`] must be byte-identical under
//!    `--lp-backend sparse` vs `dense`.
//!
//! Tests that flip the process-wide default engine serialize on a mutex
//! and restore the sparse default before releasing it; everything else
//! pins the engine per solve via [`SimplexOptions::engine`].

use flowtime::lp_sched::SolverBackend;
use flowtime::{FlowTimeConfig, FlowTimeScheduler};
use flowtime_bench::experiments::{faulted_instance, testbed_cluster, Algo, WorkflowExperiment};
use flowtime_bench::scaling::{interval_instance, perturbed};
use flowtime_dag::ResourceVec;
use flowtime_lp::{
    set_default_engine, Basis, Problem, Relation, SimplexEngine, SimplexOptions, Solution,
};
use flowtime_sim::prelude::*;
use flowtime_sim::{Scheduler, SimOutcome};
use flowtime_workload::trace::{ProductionTraceConfig, Trace};
use proptest::prelude::*;
use std::sync::Mutex;

/// Guards flips of the process-wide default engine: tests in this binary
/// run on parallel threads, and ambient-engine comparisons must not
/// observe each other's flips.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

fn opts_for(engine: SimplexEngine) -> SimplexOptions {
    SimplexOptions {
        engine: Some(engine),
        ..SimplexOptions::default()
    }
}

// ---------------------------------------------------------------------
// Level 1: raw LP corpus.
// ---------------------------------------------------------------------

/// Raw material for a random general-form LP. Degeneracy is injected by
/// zeroing a fraction of the right-hand sides; infeasibility and
/// unboundedness arise naturally from sign combinations.
#[derive(Debug, Clone)]
struct RawLp {
    vars: Vec<(f64, f64)>,             // (cost, upper; f64::INFINITY allowed)
    rows: Vec<(Vec<f64>, usize, f64)>, // (coefs, relation 0..3, rhs)
}

fn raw_lp() -> impl Strategy<Value = RawLp> {
    (2usize..6).prop_flat_map(|n| {
        // (cost, bounded?, upper): every third variable is unbounded above.
        let var = (-5.0f64..5.0, 0usize..3, 1.0f64..10.0)
            .prop_map(|(c, k, u)| (c, if k == 0 { f64::INFINITY } else { u }));
        // (coefs, relation, zero-rhs?, rhs): a third of rows are
        // degenerate at zero.
        let row = (
            proptest::collection::vec(-3.0f64..3.0, n),
            0usize..3,
            (0usize..3, -8.0f64..8.0).prop_map(|(k, r)| if k == 0 { 0.0 } else { r }),
        );
        (
            proptest::collection::vec(var, n),
            proptest::collection::vec(row, 1..5),
        )
            .prop_map(|(vars, rows)| RawLp { vars, rows })
    })
}

fn build(raw: &RawLp) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = raw
        .vars
        .iter()
        .map(|&(c, u)| p.add_var(c, 0.0, u).unwrap())
        .collect();
    for (coefs, rel, rhs) in &raw.rows {
        let rel = match rel {
            0 => Relation::Le,
            1 => Relation::Ge,
            _ => Relation::Eq,
        };
        let terms: Vec<_> = vars
            .iter()
            .zip(coefs)
            .filter(|&(_, &c)| c != 0.0)
            .map(|(&v, &c)| (v, c))
            .collect();
        if !terms.is_empty() {
            p.add_constraint(&terms, rel, *rhs).unwrap();
        }
    }
    p
}

fn assert_optimal_agreement(p: &Problem, s: &Solution, d: &Solution) -> Result<(), TestCaseError> {
    let scale = 1.0 + d.objective.abs();
    prop_assert!(
        (s.objective - d.objective).abs() <= 1e-9 * scale,
        "objectives: sparse {} vs dense {}",
        s.objective,
        d.objective
    );
    // Optimal-basis feasibility: both vertices satisfy the constraints.
    prop_assert!(p.is_feasible(&s.x, 1e-6), "sparse vertex infeasible");
    prop_assert!(p.is_feasible(&d.x, 1e-6), "dense vertex infeasible");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both engines classify every random LP identically (optimal /
    /// infeasible / unbounded) and agree on optimal objectives to 1e-9.
    #[test]
    fn engines_agree_on_random_lp_corpus(raw in raw_lp()) {
        let p = build(&raw);
        let s = p.solve_with(&opts_for(SimplexEngine::Sparse));
        let d = p.solve_with(&opts_for(SimplexEngine::Dense));
        match (s, d) {
            (Ok(s), Ok(d)) => assert_optimal_agreement(&p, &s, &d)?,
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "error kinds differ"),
            (s, d) => prop_assert!(false, "engines disagree: sparse {s:?} vs dense {d:?}"),
        }
    }

    /// Fully degenerate corner: every RHS zero, so the origin is an
    /// optimal or starting vertex with massive ties. Both engines still
    /// agree, and neither hangs (degeneracy is where cycling would bite).
    #[test]
    fn engines_agree_on_degenerate_corpus(raw in raw_lp()) {
        let mut raw = raw;
        for row in &mut raw.rows {
            row.2 = 0.0;
        }
        let p = build(&raw);
        let s = p.solve_with(&opts_for(SimplexEngine::Sparse));
        let d = p.solve_with(&opts_for(SimplexEngine::Dense));
        match (s, d) {
            (Ok(s), Ok(d)) => assert_optimal_agreement(&p, &s, &d)?,
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "error kinds differ"),
            (s, d) => prop_assert!(false, "engines disagree: sparse {s:?} vs dense {d:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Level 2: warm-start replan sequences → identical rounded plans.
// ---------------------------------------------------------------------

/// One engine's view of a replayed replan chain: the rounded allocation
/// of every variable at every step (what the rounding layer hands the
/// scheduler), plus which steps warm-started.
fn replay_chain(engine: SimplexEngine, steps: u64) -> (Vec<Vec<i64>>, Vec<bool>) {
    let opts = opts_for(engine);
    let base = interval_instance(40, 0xd1ff);
    let first = base.problem.solve_warm(&opts, None).expect("feasible");
    let mut basis: Basis = first.basis;
    let mut plans = vec![first.solution.x.iter().map(|v| v.round() as i64).collect()];
    let mut warm = vec![first.warm_used];
    for step in 0..steps {
        let replan = perturbed(&base, step + 1, 0xd1ff);
        let res = replan
            .problem
            .solve_warm(&opts, Some(&basis))
            .expect("feasible replan");
        plans.push(res.solution.x.iter().map(|v| v.round() as i64).collect());
        warm.push(res.warm_used);
        basis = res.basis;
    }
    (plans, warm)
}

/// A replayed warm-start sequence produces byte-identical rounded plans
/// on both engines — the PR 2 warm-start contract is engine-independent.
#[test]
fn warm_start_replay_produces_identical_plans_across_engines() {
    let (sparse_plans, sparse_warm) = replay_chain(SimplexEngine::Sparse, 8);
    let (dense_plans, dense_warm) = replay_chain(SimplexEngine::Dense, 8);
    assert_eq!(sparse_warm, dense_warm, "warm-start acceptance diverged");
    assert!(
        sparse_warm.iter().skip(1).all(|&w| w),
        "replans should all warm-start"
    );
    for (step, (s, d)) in sparse_plans.iter().zip(&dense_plans).enumerate() {
        assert_eq!(s, d, "rounded plan diverged at step {step}");
    }
}

// ---------------------------------------------------------------------
// Level 3: whole simulations, byte-identical outcomes.
// ---------------------------------------------------------------------

/// Simplex-backed FlowTime configuration: routes every placement LP
/// through the engine under test (the default parametric-flow backend
/// would bypass the simplex entirely). The planning horizon is capped so
/// loose-deadline workloads produce hundreds-of-rows LPs per replan, not
/// the default 4096-slot horizon — this is an engine-equivalence test,
/// and both engines see the identical configuration.
fn simplex_flowtime(cluster: &ClusterConfig, slack: u64) -> Box<dyn Scheduler> {
    Box::new(FlowTimeScheduler::new(
        cluster.clone(),
        FlowTimeConfig {
            slack_slots: slack,
            backend: SolverBackend::Simplex { lex_rounds: 2 },
            max_horizon: 128,
            ..Default::default()
        },
    ))
}

fn run_outcome(scheduler: &mut dyn Scheduler, cluster: &ClusterConfig, w: SimWorkload) -> String {
    let outcome: SimOutcome = Engine::new(cluster.clone(), w, 1_000_000)
        .expect("valid workload")
        .with_timeline()
        .run(scheduler)
        .expect("no invariant violations");
    serde_json::to_string(&outcome).expect("serializable")
}

/// All six schedulers produce byte-identical serialized outcomes under
/// the sparse vs dense engine across the differential fault-seed corpus.
/// FlowTime runs with the simplex backend so the LP engine is actually on
/// the decision path; the baselines prove engine flips leak nowhere else.
///
/// A simplex-backed simulation is ~two orders of magnitude slower in a
/// debug build, so the quick `cargo test` pass covers a 3-seed slice; the
/// full 20-seed corpus runs in release in CI's `lp-differential` job.
#[test]
fn six_schedulers_bit_identical_outcomes_across_engines() {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seeds: u64 = if cfg!(debug_assertions) { 3 } else { 20 };
    let cluster = testbed_cluster();
    let exp = WorkflowExperiment {
        workflows: 2,
        jobs_per_workflow: 6,
        adhoc_horizon: 60,
        ..Default::default()
    };
    for fault_seed in 0..seeds {
        let (workload, faulted_cluster) =
            faulted_instance(&exp, &cluster, FaultConfig::mixed(fault_seed));
        for algo in Algo::FIG4 {
            let mut runs = Vec::with_capacity(2);
            for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
                set_default_engine(engine);
                let mut scheduler = match algo {
                    Algo::FlowTime => simplex_flowtime(&faulted_cluster, 6),
                    other => other.make(&faulted_cluster),
                };
                runs.push(run_outcome(
                    scheduler.as_mut(),
                    &faulted_cluster,
                    workload.clone(),
                ));
            }
            set_default_engine(SimplexEngine::Sparse);
            assert_eq!(
                runs[0],
                runs[1],
                "seed {fault_seed}: {} outcome differs sparse vs dense",
                algo.name()
            );
        }
    }
}

/// The golden-scenario triple (the fixed faulted run pinned by
/// `tests/golden/outcome.json` / `decision_trace.jsonl`), re-run with the
/// simplex placement backend: byte-identical outcomes across engines.
#[test]
fn golden_scenario_bit_identical_across_engines() {
    let _guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cluster = ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0);
    let trace = Trace::synthesize_production(
        cluster,
        &ProductionTraceConfig {
            workflows: 2,
            jobs_per_workflow: 5,
            adhoc_horizon: 40,
            ..Default::default()
        },
        11,
    );
    let mut workload = trace.workload.clone();
    let mut faulted_cluster = trace.cluster.clone();
    FaultPlan::new(FaultConfig::mixed(7)).apply(&mut workload, &mut faulted_cluster, 200);
    let mut runs = Vec::with_capacity(2);
    for engine in [SimplexEngine::Sparse, SimplexEngine::Dense] {
        set_default_engine(engine);
        let mut scheduler = simplex_flowtime(&faulted_cluster, 6);
        runs.push(run_outcome(
            scheduler.as_mut(),
            &faulted_cluster,
            workload.clone(),
        ));
    }
    set_default_engine(SimplexEngine::Sparse);
    assert_eq!(runs[0], runs[1], "golden scenario diverged across engines");
}
