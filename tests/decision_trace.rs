//! Decision-trace layer: golden pinning, cross-thread byte identity,
//! schema hygiene, and mutation-negative auditor tests.
//!
//! The first half pins the serialized decision trace of the same fixed
//! faulted (workload, scheduler, fault seed) triple as
//! `tests/golden/outcome.json`, and proves the bytes are identical no
//! matter how many worker threads carry the simulation. The second half
//! corrupts traces in targeted ways and asserts the offline auditor
//! rejects each corruption with its specific violation code.

use flowtime::{EdfScheduler, FlowTimeConfig, FlowTimeScheduler};
use flowtime_dag::{JobSpec, ResourceVec, WorkflowBuilder, WorkflowId};
use flowtime_sim::prelude::*;
use flowtime_sim::{sweep::run_cells, TraceEvent, DEFAULT_TRACE_CAPACITY};
use flowtime_workload::trace::{ProductionTraceConfig, Trace};

/// The fixed faulted triple behind `tests/golden/decision_trace.jsonl` —
/// the same scenario as `tests/golden/outcome.json` (see
/// `trace_roundtrip.rs`), with the fault injections recorded into the
/// trace prologue.
fn golden_traced_run() -> (ClusterConfig, SimWorkload, SimOutcome, DecisionTrace) {
    let cluster = ClusterConfig::new(ResourceVec::new([16, 65_536]), 10.0);
    let trace = Trace::synthesize_production(
        cluster,
        &ProductionTraceConfig {
            workflows: 2,
            jobs_per_workflow: 5,
            adhoc_horizon: 40,
            ..Default::default()
        },
        11,
    );
    let mut workload = trace.workload.clone();
    let mut faulted_cluster = trace.cluster.clone();
    let records = FaultPlan::new(FaultConfig::mixed(7)).apply_recorded(
        &mut workload,
        &mut faulted_cluster,
        200,
    );
    let mut scheduler = FlowTimeScheduler::new(faulted_cluster.clone(), FlowTimeConfig::default());
    let (engine, handle) = Engine::new(faulted_cluster.clone(), workload.clone(), 1_000_000)
        .unwrap()
        .with_trace(DEFAULT_TRACE_CAPACITY);
    handle.record_faults(&records);
    let outcome = engine.run(&mut scheduler).unwrap();
    (faulted_cluster, workload, outcome, handle.take())
}

fn trace_bytes(trace: &DecisionTrace) -> String {
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/decision_trace.jsonl")
}

/// Committed golden file for the serialized decision trace of the fixed
/// faulted triple. Any change to the event schema, the recording order, or
/// the simulation itself shows up as a diff. Regenerate intentionally:
///
/// `GOLDEN_REGEN=1 cargo test --test decision_trace golden`
#[test]
fn golden_decision_trace_is_stable() {
    let (cluster, workload, outcome, trace) = golden_traced_run();
    let serialized = trace_bytes(&trace);
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &serialized).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        serialized, golden,
        "decision trace diverged from tests/golden/decision_trace.jsonl; \
         if intentional, regenerate with GOLDEN_REGEN=1"
    );

    // The golden bytes round-trip losslessly and the auditor certifies the
    // run they describe.
    let reloaded = DecisionTrace::read_jsonl(std::io::BufReader::new(golden.as_bytes())).unwrap();
    assert_eq!(reloaded, trace);
    assert_eq!(trace_bytes(&reloaded), golden);
    let report = certify(&cluster, &workload, &outcome, &reloaded);
    assert!(report.is_certified(), "{}", report.summary());
}

/// The serialized trace is a pure function of the scenario: running the
/// identical traced simulation on 1, 2, and 8 worker threads of the
/// work-stealing cell runner yields byte-identical JSONL. Engines (and the
/// trace's `Rc` plumbing) are constructed inside each worker closure, so
/// nothing is shared across threads.
#[test]
fn decision_trace_is_byte_identical_across_thread_counts() {
    let reference = trace_bytes(&golden_traced_run().3);
    for threads in [1usize, 2, 8] {
        let cells = [(); 4];
        let runs = run_cells(&cells, threads, |_, _| trace_bytes(&golden_traced_run().3));
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(
                run, &reference,
                "trace diverged on cell {i} at {threads} threads"
            );
        }
    }
}

/// Schema hygiene on the committed golden: every line parses as JSON, the
/// header leads and the footer trails, and no wall-clock quantity leaks
/// into the serialized form (the byte-identity contract above depends on
/// it).
#[test]
fn golden_decision_trace_schema_is_stable() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert!(
        !golden.contains("wall") && !golden.contains("nanos"),
        "wall-clock values must never appear in a serialized decision trace"
    );
    let lines: Vec<&str> = golden.lines().collect();
    assert!(lines.len() > 2, "header + events + footer expected");
    for (i, line) in lines.iter().enumerate() {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {i} is not JSON: {e}"));
        assert!(
            ["Header", "Fault", "Event", "Footer"]
                .iter()
                .any(|k| v.get(k).is_some()),
            "line {i} lost its record tag"
        );
    }
    assert!(
        lines[0].contains("\"Header\""),
        "first record is the header"
    );
    assert!(
        lines.last().unwrap().contains("\"Footer\""),
        "last record is the footer"
    );
    // The recorded fault injections ride along in the prologue.
    assert!(golden.contains("\"Fault\""), "fault records expected");
}

// ---- Mutation-negative tests: each targeted corruption must be -------
// ---- rejected with its specific violation code. ----------------------

/// Two-job chain (a → c) plus one ad-hoc job, with decomposed milestones
/// `[1, 3]`: small enough to reason about every event by hand.
fn chain_scenario() -> (ClusterConfig, SimWorkload) {
    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "wf");
    let spec = |n: &str| JobSpec::new(n, 4, 2, ResourceVec::new([1, 1024]));
    let a = b.add_job(spec("a"));
    let c = b.add_job(spec("c"));
    b.add_dep(a, c).unwrap();
    let wf = b.window(0, 3).build().unwrap();
    let mut wl = SimWorkload::default();
    wl.workflows
        .push(WorkflowSubmission::new(wf).with_job_deadlines(vec![1, 3]));
    wl.adhoc.push(AdhocSubmission::new(
        JobSpec::new("adhoc-0", 2, 3, ResourceVec::new([1, 512])),
        2,
    ));
    (ClusterConfig::new(ResourceVec::new([8, 65_536]), 10.0), wl)
}

fn traced_chain_run() -> (ClusterConfig, SimWorkload, SimOutcome, DecisionTrace) {
    let (cluster, wl) = chain_scenario();
    let (engine, handle) = Engine::new(cluster.clone(), wl.clone(), 100)
        .unwrap()
        .with_trace(DEFAULT_TRACE_CAPACITY);
    let outcome = engine.run(&mut EdfScheduler::new()).unwrap();
    (cluster, wl, outcome, handle.take())
}

/// Uncorrupted baseline: the chain run certifies (so every rejection below
/// is attributable to its mutation alone).
#[test]
fn uncorrupted_chain_run_certifies() {
    let (cluster, wl, outcome, trace) = traced_chain_run();
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(report.is_certified(), "{}", report.summary());
}

/// Corruption 1 — capacity overflow: inflating one grant beyond the
/// cluster's capacity must trip `capacity-overflow`.
#[test]
fn inflated_grant_is_rejected_as_capacity_overflow() {
    let (cluster, wl, outcome, mut trace) = traced_chain_run();
    let tasks = trace
        .events_mut()
        .iter_mut()
        .find_map(|e| match e {
            TraceEvent::Grant { tasks, .. } => Some(tasks),
            _ => None,
        })
        .expect("the run grants capacity");
    *tasks += 10_000;
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(!report.is_certified());
    assert!(report.has("capacity-overflow"), "{}", report.summary());
}

/// Corruption 2 — precedence inversion: retargeting one of the
/// predecessor's early grants onto its successor makes the successor run
/// before its dependency finished, tripping `precedence-inversion`.
#[test]
fn retargeted_grant_is_rejected_as_precedence_inversion() {
    let (cluster, wl, outcome, mut trace) = traced_chain_run();
    // Job ids follow submission order: workflow node 0 (`a`) is the first
    // id, node 1 (`c`) the second. `a` finishes first in the chain.
    let (pred, succ) = {
        let mut finishes = trace.events().filter_map(|e| match *e {
            TraceEvent::Finish { job, .. } => Some(job),
            _ => None,
        });
        (finishes.next().unwrap(), finishes.next().unwrap())
    };
    let job = trace
        .events_mut()
        .iter_mut()
        .find_map(|e| match e {
            TraceEvent::Grant { job, .. } if *job == pred => Some(job),
            _ => None,
        })
        .expect("the predecessor was granted capacity");
    *job = succ;
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(!report.is_certified());
    assert!(report.has("precedence-inversion"), "{}", report.summary());
}

/// Corruption 3 — deadline-accounting drift: rewriting a milestone in the
/// trace header trips `deadline-drift`; rewriting a job's deadline in the
/// outcome flips its miss status and trips the `deadline-accounting`
/// recount as well.
#[test]
fn deadline_drift_is_rejected() {
    let (cluster, wl, outcome, mut trace) = traced_chain_run();
    let meta = trace
        .header
        .jobs
        .iter_mut()
        .find(|m| m.deadline_slot.is_some())
        .expect("deadline jobs in the header");
    meta.deadline_slot = meta.deadline_slot.map(|d| d + 7);
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(!report.is_certified());
    assert!(report.has("deadline-drift"), "{}", report.summary());

    let (cluster, wl, mut outcome, trace) = traced_chain_run();
    let job = outcome
        .metrics
        .jobs
        .iter_mut()
        .find(|j| j.deadline_slot.is_some())
        .expect("deadline jobs in the outcome");
    // Both chain jobs miss their milestones; pushing one recorded deadline
    // far out makes the metrics claim a meet the scenario recount denies.
    job.deadline_slot = Some(1_000);
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(!report.is_certified());
    assert!(report.has("deadline-drift"), "{}", report.summary());
    assert!(report.has("deadline-accounting"), "{}", report.summary());
}

/// Corruption 4 — dropped completion event: deleting a finish record
/// leaves the outcome claiming a completion the trace never witnessed,
/// tripping `finish-missing`.
#[test]
fn dropped_finish_is_rejected_as_finish_missing() {
    let (cluster, wl, outcome, mut trace) = traced_chain_run();
    let events = trace.events_mut();
    let before = events.len();
    let mut dropped_one = false;
    events.retain(|e| {
        if !dropped_one && matches!(e, TraceEvent::Finish { .. }) {
            dropped_one = true;
            return false;
        }
        true
    });
    assert_eq!(events.len(), before - 1);
    let report = certify(&cluster, &wl, &outcome, &trace);
    assert!(!report.is_certified());
    assert!(report.has("finish-missing"), "{}", report.summary());
}
