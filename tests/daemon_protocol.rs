//! Protocol bad-path tests: malformed JSON, unknown requests, oversized
//! payloads, lifecycle violations, and — over a real TCP socket —
//! mid-request disconnects and mid-stream line-cap enforcement. Every
//! failure is a typed error from the closed code catalogue; the daemon
//! never panics and never tears down the session over one bad client.

mod daemon_util;

use daemon_util::{adhoc_line, err_code, loopback, ok};
use flowtime_daemon::{codes, serve, Session, SessionConfig, MAX_LINE_BYTES};
use flowtime_dag::{JobSpec, ResourceVec};
use flowtime_sim::{AdhocSubmission, ClusterConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

fn cluster() -> ClusterConfig {
    ClusterConfig::new(ResourceVec::new([8, 32_768]), 10.0)
}

fn adhoc(arrival: u64) -> AdhocSubmission {
    AdhocSubmission::new(
        JobSpec::new("a", 2, 1, ResourceVec::new([1, 1024])),
        arrival,
    )
}

#[test]
fn malformed_and_unknown_requests_are_typed_errors() {
    let mut lb = loopback(cluster(), "edf");
    err_code(&mut lb, "{oops", codes::MALFORMED_JSON);
    err_code(&mut lb, "null", codes::BAD_REQUEST);
    err_code(&mut lb, "{\"req\":\"frobnicate\"}", codes::UNKNOWN_REQUEST);
    err_code(&mut lb, "{\"req\":\"tick\"}", codes::BAD_REQUEST);
    err_code(
        &mut lb,
        "{\"req\":\"tick\",\"to\":\"soon\"}",
        codes::BAD_REQUEST,
    );
    err_code(
        &mut lb,
        "{\"req\":\"cancel\",\"sub\":-1}",
        codes::BAD_REQUEST,
    );
    err_code(&mut lb, "{\"req\":\"submit_adhoc\"}", codes::BAD_REQUEST);
    err_code(
        &mut lb,
        "{\"req\":\"submit_adhoc\",\"submission\":{\"bogus\":1}}",
        codes::MALFORMED_SUBMISSION,
    );
    let oversized = format!(
        "{{\"req\":\"status\",\"pad\":\"{}\"}}",
        "x".repeat(MAX_LINE_BYTES)
    );
    err_code(&mut lb, &oversized, codes::OVERSIZED_PAYLOAD);
    // The session survives all of it.
    ok(&mut lb, "{\"req\":\"status\"}");
}

#[test]
fn lifecycle_violations_are_typed_errors() {
    let mut lb = loopback(cluster(), "edf");
    // Unknown scheduler is rejected at session construction.
    assert!(Session::new(SessionConfig {
        cluster: cluster(),
        scheduler: "quantum-annealer".to_string(),
        max_slots: 100,
        trace_capacity: 64,
        snapshot_path: None,
        pods: 0,
        placer: None,
    })
    .is_err());

    err_code(&mut lb, "{\"req\":\"outcome\"}", codes::NOT_DRAINED);
    err_code(&mut lb, "{\"req\":\"explain\"}", codes::NOT_DRAINED);
    err_code(
        &mut lb,
        "{\"req\":\"cancel\",\"sub\":7}",
        codes::UNKNOWN_SUBMISSION,
    );
    err_code(
        &mut lb,
        "{\"req\":\"query\",\"sub\":7}",
        codes::UNKNOWN_SUBMISSION,
    );
    err_code(&mut lb, "{\"req\":\"snapshot\"}", codes::SNAPSHOT_IO);

    ok(&mut lb, &adhoc_line(&adhoc(0)));
    // The job finishes at slot 1 and the session parks there (the batch
    // run would have ended); ticking further is a no-op, not an error.
    let tick = ok(&mut lb, "{\"req\":\"tick\",\"to\":3}");
    assert!(
        tick.contains("\"now\":1"),
        "session should park at 1: {tick}"
    );
    // Submitting into already-simulated virtual time.
    err_code(&mut lb, &adhoc_line(&adhoc(0)), codes::LATE_ARRIVAL);
    // Cancelling a submission that already materialized.
    err_code(
        &mut lb,
        "{\"req\":\"cancel\",\"sub\":0}",
        codes::CANCEL_TOO_LATE,
    );

    // Cancel a pending future submission — then cancelling again is too
    // late (idempotence is not silent success).
    ok(&mut lb, &adhoc_line(&adhoc(50)));
    ok(&mut lb, "{\"req\":\"cancel\",\"sub\":1}");
    err_code(
        &mut lb,
        "{\"req\":\"cancel\",\"sub\":1}",
        codes::CANCEL_TOO_LATE,
    );

    ok(&mut lb, "{\"req\":\"drain\"}");
    // Drained sessions reject all mutation but keep serving reads.
    err_code(&mut lb, &adhoc_line(&adhoc(99)), codes::ALREADY_DRAINED);
    err_code(
        &mut lb,
        "{\"req\":\"tick\",\"to\":99}",
        codes::ALREADY_DRAINED,
    );
    err_code(
        &mut lb,
        "{\"req\":\"cancel\",\"sub\":0}",
        codes::ALREADY_DRAINED,
    );
    ok(&mut lb, "{\"req\":\"status\"}");
    ok(&mut lb, "{\"req\":\"trace\",\"limit\":4}");
    ok(&mut lb, "{\"req\":\"outcome\"}");
    // The drained artifacts re-certify and self-explain: the report body
    // deserializes as the sim crate's typed ExplainReport.
    let response = ok(&mut lb, "{\"req\":\"explain\"}");
    let value = serde_json::parse(&response).expect("explain response is JSON");
    let body = value
        .get("ok")
        .and_then(|o| o.get("explain"))
        .expect("explain body");
    let report: flowtime_sim::ExplainReport =
        serde_json::from_value(body).expect("explain report deserializes");
    assert!(report.events_checked > 0);
    // Drain is idempotent.
    ok(&mut lb, "{\"req\":\"drain\"}");
}

#[test]
fn explain_rejects_sharded_sessions_typed() {
    let mut lb = daemon_util::loopback_sharded(cluster(), "edf", 2);
    ok(&mut lb, &adhoc_line(&adhoc(0)));
    ok(&mut lb, "{\"req\":\"drain\"}");
    // A sharded session has no in-place log-replay certifier; the typed
    // error points at the offline per-pod trace path.
    err_code(&mut lb, "{\"req\":\"explain\"}", codes::BAD_REQUEST);
}

#[test]
fn horizon_exhaustion_is_a_typed_error() {
    let mut lb = daemon_util::loopback_with_snapshot(cluster(), "edf", None);
    // A session with a tiny horizon cannot tick past it.
    let mut tiny = flowtime_daemon::Loopback::new(
        Session::new(SessionConfig {
            cluster: cluster(),
            scheduler: "edf".to_string(),
            max_slots: 5,
            trace_capacity: 64,
            snapshot_path: None,
            pods: 0,
            placer: None,
        })
        .expect("valid config"),
    );
    // A job needing 10 slots cannot finish inside a 5-slot horizon.
    let long_job =
        AdhocSubmission::new(JobSpec::new("long", 1, 10, ResourceVec::new([1, 1024])), 0);
    ok(&mut tiny, &adhoc_line(&long_job));
    // Park-aware: ticking an *empty* session is fine (it parks at 0).
    ok(&mut lb, "{\"req\":\"tick\",\"to\":1000}");
    err_code(
        &mut tiny,
        "{\"req\":\"tick\",\"to\":50}",
        codes::HORIZON_EXHAUSTED,
    );
}

/// The committed protocol transcript: a scripted session covering
/// submission, cancellation, queries, trace tails, drain, and the
/// embedded outcome, pinned request-by-request. Any change to the wire
/// format, the error catalogue, or the engine's serialized outcome shows
/// up as a diff here. Regenerate after an intentional change with
/// `GOLDEN_REGEN=1 cargo test --test daemon_protocol golden` (see
/// EXPERIMENTS.md).
#[test]
fn golden_session_transcript() {
    use flowtime_dag::{WorkflowBuilder, WorkflowId};
    use flowtime_sim::WorkflowSubmission;

    let mut b = WorkflowBuilder::new(WorkflowId::new(1), "golden");
    let a = b.add_job(JobSpec::new("a", 4, 2, ResourceVec::new([1, 1024])));
    let c = b.add_job(JobSpec::new("c", 2, 2, ResourceVec::new([1, 1024])));
    b.add_dep(a, c).expect("two nodes");
    let wf = WorkflowSubmission::new(b.window(0, 24).build().expect("valid window"));

    let script = vec![
        format!(
            "{{\"req\":\"submit_workflow\",\"submission\":{}}}",
            serde_json::to_string(&wf).expect("workflow serializes")
        ),
        adhoc_line(&adhoc(0)),
        adhoc_line(&adhoc(6)),
        adhoc_line(&adhoc(9)),
        "{\"req\":\"cancel\",\"sub\":3}".to_string(),
        "{\"req\":\"cancel\",\"sub\":3}".to_string(),
        "{\"req\":\"query\",\"sub\":0}".to_string(),
        "{\"req\":\"tick\",\"to\":4}".to_string(),
        "{\"req\":\"query\",\"sub\":0}".to_string(),
        "{\"req\":\"status\"}".to_string(),
        "{\"req\":\"trace\",\"limit\":5}".to_string(),
        "{\"req\":\"outcome\"}".to_string(),
        "{\"req\":\"drain\"}".to_string(),
        "{\"req\":\"outcome\"}".to_string(),
        "{\"req\":\"status\"}".to_string(),
    ];

    let mut lb = loopback(cluster(), "flowtime");
    let mut transcript = String::new();
    for line in &script {
        let response = lb.request_line(line);
        transcript.push_str(&format!(
            "{{\"send\":{},\"recv\":{}}}\n",
            serde_json::to_string(line).expect("request escapes"),
            serde_json::to_string(&response).expect("response escapes")
        ));
    }

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/daemon_session.jsonl");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, &transcript).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        transcript, golden,
        "daemon protocol transcript diverged from tests/golden/daemon_session.jsonl; \
         if the change is intentional, regenerate with GOLDEN_REGEN=1"
    );
}

/// Spawns a real TCP daemon; returns the address and its thread handle.
fn spawn_tcp(scheduler: &str) -> (std::net::SocketAddr, std::thread::JoinHandle<(bool, usize)>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let scheduler = scheduler.to_string();
    // Schedulers are not `Send`, so the session is built inside the
    // server thread; the thread reports (drained, log length) facts back.
    let handle = std::thread::spawn(move || {
        let session = Session::new(SessionConfig {
            cluster: cluster(),
            scheduler,
            max_slots: 1_000_000,
            trace_capacity: 1 << 12,
            snapshot_path: None,
            pods: 0,
            placer: None,
        })
        .expect("valid config");
        let session = serve(listener, session, None).expect("server runs");
        (session.drained(), session.log().len())
    });
    (addr, handle)
}

fn request(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response.trim_end().to_string()
}

#[test]
fn tcp_survives_mid_request_disconnects_and_oversized_streams() {
    let (addr, handle) = spawn_tcp("fifo");

    // Client 1 sends half a request and vanishes.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"{\"req\":\"submit_adhoc\",\"submi")
            .expect("partial write");
        // Dropped here: mid-request disconnect.
    }

    // Client 2 streams an unbounded line: the daemon cuts it off with a
    // typed error at the cap instead of buffering forever.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let chunk = [b'x'; 8192];
        let mut sent = 0usize;
        let response = loop {
            match s.write_all(&chunk) {
                Ok(()) => {
                    sent += chunk.len();
                    assert!(sent < 4 * MAX_LINE_BYTES, "daemon never enforced the cap");
                }
                // The daemon closed on us — read whatever it said first.
                Err(_) => break None,
            }
            if sent > MAX_LINE_BYTES + 8192 {
                break Some(());
            }
        };
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && !line.is_empty() {
            assert!(
                line.contains(codes::OVERSIZED_PAYLOAD),
                "expected oversized-payload, got: {line}"
            );
        }
        let _ = response;
    }

    // Client 3 still gets clean service after both abuses.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let r = request(&mut s, &adhoc_line(&adhoc(0)));
        assert!(r.starts_with("{\"ok\":"), "submit over TCP failed: {r}");
        let r = request(&mut s, "{\"req\":\"drain\"}");
        assert!(r.starts_with("{\"ok\":"), "drain over TCP failed: {r}");
        let r = request(&mut s, "{\"req\":\"outcome\"}");
        assert!(
            r.starts_with("{\"ok\":{\"outcome\":"),
            "outcome over TCP failed: {r}"
        );
        let r = request(&mut s, "{\"req\":\"shutdown\"}");
        assert!(r.starts_with("{\"ok\":"), "shutdown failed: {r}");
    }

    // Shutdown returns the session from the server loop, drained.
    let (drained, _) = handle.join().expect("server thread");
    assert!(drained);
}

#[test]
fn tcp_interleaves_multiple_clients_in_arrival_order() {
    let (addr, handle) = spawn_tcp("edf");
    let mut a = TcpStream::connect(addr).expect("connect a");
    let mut b = TcpStream::connect(addr).expect("connect b");
    let ra = request(&mut a, &adhoc_line(&adhoc(0)));
    let rb = request(&mut b, &adhoc_line(&adhoc(2)));
    // Sequence numbers are global across connections.
    assert!(ra.contains("\"sub\":0"), "{ra}");
    assert!(rb.contains("\"sub\":1"), "{rb}");
    let r = request(&mut a, "{\"req\":\"drain\"}");
    assert!(r.starts_with("{\"ok\":"), "{r}");
    let r = request(&mut b, "{\"req\":\"shutdown\"}");
    assert!(r.starts_with("{\"ok\":"), "{r}");
    let (_, log_len) = handle.join().expect("server thread");
    assert_eq!(log_len, 2);
}

/// Like [`spawn_tcp`] but crash-consistent: the session writes a WAL in
/// `dir` with `fsync=always`.
fn spawn_tcp_wal(
    scheduler: &str,
    dir: &std::path::Path,
) -> (std::net::SocketAddr, std::thread::JoinHandle<(bool, usize)>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let scheduler = scheduler.to_string();
    let dir = dir.to_path_buf();
    let handle = std::thread::spawn(move || {
        let (session, _report) = Session::recover(
            daemon_util::session_config(cluster(), &scheduler, 0),
            daemon_util::wal_config(&dir, flowtime_daemon::FsyncPolicy::Always),
            None,
        )
        .expect("fresh wal session");
        let session = serve(listener, session, None).expect("server runs");
        (session.drained(), session.log().len())
    });
    (addr, handle)
}

/// Satellite contract: abusive clients — a mid-request disconnect and an
/// over-cap streamed line — interleaved with accepted WAL appends leave
/// NOTHING partial in the durable log. Only acknowledged requests have
/// records; recovery replays them all with no torn tail.
#[test]
fn rejected_requests_leave_no_partial_wal_records() {
    let dir = daemon_util::wal_dir("tcp-abuse");
    let (addr, handle) = spawn_tcp_wal("fifo", &dir);

    // Accepted submit #1 → durable record.
    let mut a = TcpStream::connect(addr).expect("connect a");
    let r = request(&mut a, &adhoc_line(&adhoc(0)));
    assert!(r.starts_with("{\"ok\":"), "{r}");

    // Abuse 1: half a request, then vanish. Nothing may hit the WAL.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"{\"req\":\"submit_adhoc\",\"submi")
            .expect("partial write");
    }

    // Accepted submit #2, interleaved after the abuse.
    let r = request(&mut a, &adhoc_line(&adhoc(1)));
    assert!(r.starts_with("{\"ok\":"), "{r}");

    // Abuse 2: a line streamed past the 1 MiB cap gets the typed
    // rejection (or a cut connection) — and no WAL record.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let chunk = [b'y'; 8192];
        let mut sent = 0usize;
        while s.write_all(&chunk).is_ok() {
            sent += chunk.len();
            assert!(sent < 4 * MAX_LINE_BYTES, "daemon never enforced the cap");
            if sent > MAX_LINE_BYTES + 8192 {
                break;
            }
        }
        let mut reader = BufReader::new(s.try_clone().expect("clone"));
        let mut line = String::new();
        if reader.read_line(&mut line).is_ok() && !line.is_empty() {
            assert!(
                line.contains(codes::OVERSIZED_PAYLOAD),
                "expected oversized-payload, got: {line}"
            );
        }
    }

    // Accepted submit #3, then clean shutdown.
    let r = request(&mut a, &adhoc_line(&adhoc(2)));
    assert!(r.starts_with("{\"ok\":"), "{r}");
    let r = request(&mut a, "{\"req\":\"shutdown\"}");
    assert!(r.starts_with("{\"ok\":"), "{r}");
    let (_, log_len) = handle.join().expect("server thread");
    assert_eq!(log_len, 3, "exactly the acknowledged submissions logged");

    // The durable log holds exactly the 3 acknowledged records (plus
    // genesis), with no torn tail and no trace of the rejected requests.
    let recovered = flowtime_daemon::wal::recover_dir(
        &daemon_util::wal_config(&dir, flowtime_daemon::FsyncPolicy::Always),
        None,
    )
    .expect("wal recovers");
    assert!(
        recovered.report.tail.is_none(),
        "no partial record may be durable: {:?}",
        recovered.report.tail
    );
    assert_eq!(
        recovered.report.records_replayed,
        4, // genesis + 3 entries
        "only acknowledged requests are durable"
    );
    let (session, _) = Session::recover(
        daemon_util::session_config(cluster(), "fifo", 0),
        daemon_util::wal_config(&dir, flowtime_daemon::FsyncPolicy::Always),
        None,
    )
    .expect("session recovers");
    assert_eq!(session.log().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
