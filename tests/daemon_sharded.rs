//! Sharded daemon differential: a `flowtimed` session with `pods = K`
//! runs one engine per pod behind the same wire protocol, placing each
//! submission at injection time with the batch layer's placer. The
//! contract mirrors the unsharded differential: splitting the session's
//! recorded log with [`flowtime_sim::place_log`] and replaying each
//! per-pod sub-log through a batch [`Engine::from_log`] over that pod's
//! capacity slice must reproduce every pod's `SimOutcome` and decision
//! trace byte-for-byte — including sessions with mid-run ticks,
//! cancellations, and pods that never receive work. A `pods = 1` session
//! must be byte-identical to an unsharded one on every response.

mod daemon_util;

use daemon_util::{
    adhoc_line, loopback, loopback_sharded, loopback_sharded_with_snapshot, loopback_wal, ok,
    session_config, trace_bytes, wal_config, wal_dir, workflow_line, TRACE_CAPACITY,
};
use flowtime_bench::experiments::{testbed_cluster, Algo, WorkflowExperiment};
use flowtime_daemon::{codes, FsyncPolicy, Loopback, Session, SessionConfig};
use flowtime_sim::{
    place_log, pod_cluster, DecisionTrace, Engine, ShardSpec, SimOutcome, SimWorkload,
    SubmissionLog,
};

fn experiment(seed: u64) -> WorkflowExperiment {
    WorkflowExperiment {
        workflows: 3,
        jobs_per_workflow: 6,
        adhoc_horizon: 80,
        seed,
        ..Default::default()
    }
}

/// Drives a workload through a session with mid-run ticks (workflows up
/// front, the ad-hoc stream arriving online), optionally cancelling, and
/// returns the log plus the frozen per-pod results.
fn drive(
    mut lb: Loopback,
    workload: &SimWorkload,
    cancel: &[u64],
) -> (SubmissionLog, String, Vec<SimOutcome>, Vec<DecisionTrace>) {
    for sub in &workload.workflows {
        ok(&mut lb, &workflow_line(sub));
    }
    let mut adhoc: Vec<_> = workload.adhoc.clone();
    adhoc.sort_by_key(|s| s.arrival_slot);
    let mut now = 0u64;
    for sub in &adhoc {
        if sub.arrival_slot > now + 4 {
            now = sub.arrival_slot - 2;
            ok(&mut lb, &format!("{{\"req\":\"tick\",\"to\":{now}}}"));
        }
        ok(&mut lb, &adhoc_line(sub));
    }
    for seq in cancel {
        ok(&mut lb, &format!("{{\"req\":\"cancel\",\"sub\":{seq}}}"));
    }
    let log = lb.session().log().clone();
    ok(&mut lb, "{\"req\":\"drain\"}");
    let session = lb.into_session();
    let bytes = session.outcome_json().expect("drained").to_string();
    let outcomes = session.final_outcomes().expect("drained").to_vec();
    let traces = session.final_traces().expect("drained").to_vec();
    (log, bytes, outcomes, traces)
}

/// Replays each per-pod sub-log of `log` through a batch engine and
/// asserts byte-identity with the session's per-pod outcome and trace.
fn assert_batch_parity(
    cluster: &flowtime_sim::ClusterConfig,
    log: &SubmissionLog,
    algo: Algo,
    pods: usize,
    outcomes: &[SimOutcome],
    traces: &[DecisionTrace],
) {
    let spec = ShardSpec::new(pods);
    let sub_logs = place_log(cluster, log, &spec).expect("log places");
    assert_eq!(sub_logs.len(), pods);
    assert_eq!(outcomes.len(), pods);
    for (pod, sub_log) in sub_logs.iter().enumerate() {
        let pc = pod_cluster(cluster, pods, pod);
        let mut scheduler = algo.make(&pc);
        let (engine, handle) = Engine::from_log(pc, sub_log, 1_000_000)
            .expect("sub-log replays")
            .with_trace(TRACE_CAPACITY as usize);
        let batch = engine.run(scheduler.as_mut()).expect("batch run succeeds");
        assert_eq!(
            serde_json::to_string(&outcomes[pod]).expect("outcome serializes"),
            serde_json::to_string(&batch).expect("outcome serializes"),
            "pod {pod}/{pods} outcome diverges from its batch replay ({})",
            algo.name()
        );
        assert_eq!(
            trace_bytes(&traces[pod]),
            trace_bytes(&handle.take()),
            "pod {pod}/{pods} trace diverges from its batch replay ({})",
            algo.name()
        );
    }
}

/// The core sharded contract: per-pod byte-parity with `place_log` +
/// `Engine::from_log`, for several pod counts, schedulers, and seeds,
/// with submissions arriving mid-run.
#[test]
fn sharded_session_matches_per_pod_batch_replay() {
    for seed in [0u64, 3] {
        let cluster = testbed_cluster();
        let workload = experiment(seed).build(&cluster);
        for algo in [Algo::FlowTime, Algo::Edf] {
            for pods in [2usize, 4] {
                let lb = loopback_sharded(cluster.clone(), algo.name(), pods as u64);
                let (log, bytes, outcomes, traces) = drive(lb, &workload, &[]);
                assert!(
                    bytes.starts_with("{\"pods\":["),
                    "sharded outcome must be the per-pod array form: {bytes}"
                );
                assert_batch_parity(&cluster, &log, algo, pods, &outcomes, &traces);
                let total: usize = outcomes.iter().map(|o| o.metrics.jobs.len()).sum();
                assert_eq!(
                    total,
                    workload
                        .workflows
                        .iter()
                        .map(|w| w.workflow.len())
                        .sum::<usize>()
                        + workload.adhoc.len(),
                    "every submitted job must land in exactly one pod"
                );
            }
        }
    }
}

/// Cancellations in a sharded session never reach any pod: the recorded
/// log (cancels included) still replays per-pod byte-identically, and the
/// cancelled jobs are absent from every pod's outcome.
#[test]
fn sharded_cancellation_is_replayed_exactly() {
    let cluster = testbed_cluster();
    let workload = experiment(1).build(&cluster);
    let n_workflows = workload.workflows.len() as u64;
    let cancel = [n_workflows + 1, n_workflows + 4];
    let pods = 2usize;

    // Queue everything up front so the cancel targets are still pending.
    let mut lb = loopback_sharded(cluster.clone(), "flowtime", pods as u64);
    for sub in &workload.workflows {
        ok(&mut lb, &workflow_line(sub));
    }
    for sub in &workload.adhoc {
        ok(&mut lb, &adhoc_line(sub));
    }
    for seq in &cancel {
        ok(&mut lb, &format!("{{\"req\":\"cancel\",\"sub\":{seq}}}"));
    }
    let log = lb.session().log().clone();
    ok(&mut lb, "{\"req\":\"drain\"}");
    let session = lb.into_session();
    let outcomes = session.final_outcomes().expect("drained").to_vec();
    let traces = session.final_traces().expect("drained").to_vec();

    assert_batch_parity(&cluster, &log, Algo::FlowTime, pods, &outcomes, &traces);
    let total: usize = outcomes.iter().map(|o| o.metrics.jobs.len()).sum();
    assert_eq!(
        total,
        workload
            .workflows
            .iter()
            .map(|w| w.workflow.len())
            .sum::<usize>()
            + workload.adhoc.len()
            - cancel.len(),
        "cancelled jobs must not appear in any pod"
    );
}

/// `pods: 1` is the unsharded engine, bit for bit: the whole response
/// stream — submit acks, tick responses, status, drain summary, and the
/// embedded outcome — matches a `pods: 0` session byte-for-byte.
#[test]
fn single_pod_session_is_byte_identical_to_unsharded() {
    let cluster = testbed_cluster();
    let workload = experiment(2).build(&cluster);
    let mut plain = loopback(cluster.clone(), "flowtime");
    let mut sharded = loopback_sharded(cluster.clone(), "flowtime", 1);

    let mut script = Vec::new();
    for sub in &workload.workflows {
        script.push(workflow_line(sub));
    }
    for sub in &workload.adhoc {
        script.push(adhoc_line(sub));
    }
    script.push("{\"req\":\"tick\",\"to\":40}".to_string());
    script.push("{\"req\":\"status\"}".to_string());
    script.push("{\"req\":\"trace\",\"limit\":8}".to_string());
    script.push("{\"req\":\"drain\"}".to_string());
    script.push("{\"req\":\"status\"}".to_string());
    script.push("{\"req\":\"outcome\"}".to_string());
    for line in &script {
        assert_eq!(
            plain.request_line(line),
            sharded.request_line(line),
            "pods=1 response diverges from unsharded for `{line}`"
        );
    }
}

/// A sharded session snapshots and restores exactly: the restored session
/// drains to the same per-pod bytes as the original.
#[test]
fn sharded_snapshot_restores_byte_identically() {
    let dir = std::env::temp_dir().join("flowtime-daemon-shard-snap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("sharded.snap");
    let _ = std::fs::remove_file(&path);

    let cluster = testbed_cluster();
    let workload = experiment(4).build(&cluster);
    let mut lb = loopback_sharded_with_snapshot(
        cluster.clone(),
        "flowtime",
        2,
        Some("firstfit".to_string()),
        Some(path.to_string_lossy().into_owned()),
    );
    for sub in &workload.workflows {
        ok(&mut lb, &workflow_line(sub));
    }
    for sub in &workload.adhoc {
        ok(&mut lb, &adhoc_line(sub));
    }
    ok(&mut lb, "{\"req\":\"tick\",\"to\":30}");
    ok(&mut lb, "{\"req\":\"snapshot\"}");

    let body = flowtime_daemon::snapshot::load(&path).expect("snapshot loads");
    assert_eq!(body.config.pods, 2, "pod count must survive the snapshot");
    assert_eq!(body.config.placer.as_deref(), Some("firstfit"));
    let mut restored = Loopback::new(Session::restore(body).expect("snapshot restores"));

    ok(&mut lb, "{\"req\":\"drain\"}");
    ok(&mut restored, "{\"req\":\"drain\"}");
    assert_eq!(
        lb.into_session().outcome_json().expect("drained"),
        restored.into_session().outcome_json().expect("drained"),
        "restored sharded session must drain to identical bytes"
    );
    let _ = std::fs::remove_file(&path);
}

/// Sharding config errors are typed `bad-request`s at construction, and
/// unsharded configs keep their pre-sharding serialized form (no `pods` /
/// `placer` keys), so existing snapshots parse unchanged.
#[test]
fn sharding_config_validation_and_serde_compat() {
    let base = SessionConfig {
        cluster: testbed_cluster(),
        scheduler: "edf".to_string(),
        max_slots: 1000,
        trace_capacity: 64,
        snapshot_path: None,
        pods: 0,
        placer: None,
    };

    // A placer without pods > 1 and an unknown placer are both rejected.
    for (pods, placer) in [
        (0u64, Some("demand".to_string())),
        (1, Some("demand".to_string())),
        (2, Some("round-robin".to_string())),
    ] {
        let err = Session::new(SessionConfig {
            pods,
            placer,
            ..base.clone()
        })
        .err()
        .expect("invalid sharding config must be rejected");
        assert_eq!(err.code, codes::BAD_REQUEST);
    }
    // Separator-insensitive placer names are accepted, like the CLI's.
    Session::new(SessionConfig {
        pods: 2,
        placer: Some("First-Fit".to_string()),
        ..base.clone()
    })
    .expect("separator-insensitive placer name");

    // Unsharded configs serialize without the sharding keys.
    let json = serde_json::to_string(&base).expect("config serializes");
    assert!(
        !json.contains("\"pods\"") && !json.contains("\"placer\""),
        "unsharded config must keep its pre-sharding bytes: {json}"
    );
    // And a pre-sharding config document (no such keys) still parses.
    let legacy: SessionConfig =
        serde_json::from_value(&serde_json::parse(&json).expect("parses")).expect("deserializes");
    assert_eq!(legacy, base);
}

/// A sharded (`pods = 2`) WAL-backed session killed two-thirds through —
/// with a snapshot compaction point inside the surviving prefix — and
/// recovered via snapshot + WAL tail replay preserves per-pod
/// `place_log` parity and drains byte-identically to the uncrashed
/// sharded run.
#[test]
fn sharded_session_recovers_from_wal_with_place_log_parity() {
    let cluster = testbed_cluster();
    let workload = experiment(2).build(&cluster);
    let pods = 2usize;

    // Uncrashed reference run (no WAL).
    let lb = loopback_sharded(cluster.clone(), "flowtime", pods as u64);
    let (expect_log, expect_bytes, _expect_outcomes, expect_traces) = drive(lb, &workload, &[]);

    // The same request sequence `drive` issues, rendered up front so it
    // can be cut at the kill point.
    let mut lines = Vec::new();
    for sub in &workload.workflows {
        lines.push(workflow_line(sub));
    }
    let mut adhoc: Vec<_> = workload.adhoc.clone();
    adhoc.sort_by_key(|s| s.arrival_slot);
    let mut now = 0u64;
    for sub in &adhoc {
        if sub.arrival_slot > now + 4 {
            now = sub.arrival_slot - 2;
            lines.push(format!("{{\"req\":\"tick\",\"to\":{now}}}"));
        }
        lines.push(adhoc_line(sub));
    }
    let kill_at = lines.len() * 2 / 3;

    let dir = wal_dir("sharded");
    let mut lb = loopback_wal(
        cluster.clone(),
        "flowtime",
        pods as u64,
        &dir,
        FsyncPolicy::Always,
        None,
    );
    for (i, line) in lines[..kill_at].iter().enumerate() {
        ok(&mut lb, line);
        if i == kill_at / 2 {
            ok(&mut lb, "{\"req\":\"snapshot\"}");
        }
    }
    drop(lb); // kill -9

    let (session, report) = Session::recover(
        session_config(cluster.clone(), "flowtime", pods as u64),
        wal_config(&dir, FsyncPolicy::Always),
        None,
    )
    .expect("sharded recovery succeeds");
    assert!(
        report.snapshot.is_some(),
        "recovery must start from the mid-prefix snapshot"
    );
    let mut resumed = Loopback::new(session);
    for line in &lines[kill_at..] {
        ok(&mut resumed, line);
    }
    let log = resumed.session().log().clone();
    ok(&mut resumed, "{\"req\":\"drain\"}");
    let session = resumed.into_session();
    let bytes = session.outcome_json().expect("drained").to_string();
    let outcomes = session.final_outcomes().expect("drained").to_vec();
    let traces = session.final_traces().expect("drained").to_vec();

    assert_eq!(
        serde_json::to_string(&log).expect("log serializes"),
        serde_json::to_string(&expect_log).expect("log serializes"),
        "recovered sharded log diverges"
    );
    assert_eq!(bytes, expect_bytes, "sharded outcome bytes diverge");
    for pod in 0..pods {
        assert_eq!(
            trace_bytes(&traces[pod]),
            trace_bytes(&expect_traces[pod]),
            "pod {pod} trace diverges after recovery"
        );
    }
    // The recovered session still satisfies the sharded place_log
    // differential contract.
    assert_batch_parity(&cluster, &log, Algo::FlowTime, pods, &outcomes, &traces);
    let _ = std::fs::remove_dir_all(&dir);
}
